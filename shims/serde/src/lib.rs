//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal serialization framework under the `serde` package name. It keeps
//! the trait names and call-site shapes of real serde (`Serialize`,
//! `Deserialize`, `Serializer`, `Deserializer`, derive macros, `#[serde(skip)]`
//! and `#[serde(with = "...")]`) but replaces serde's visitor-based data model
//! with a simple owned [`Content`] tree: serializers consume a `Content`,
//! deserializers produce one.
//!
//! Only the API surface this repository actually uses is provided. If a new
//! call-site needs more, extend this shim rather than depending on crates.io.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree every serialization passes through.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Any integer (i128 covers every integer type used in the workspace).
    Int(i128),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Seq(Vec<Content>),
    /// Map with string keys, in insertion order.
    Map(Vec<(String, Content)>),
}

/// Error trait implemented by serializer/deserializer error types so derived
/// code can surface message strings (mirror of serde's `ser::Error` /
/// `de::Error`).
pub trait Error: Sized {
    /// Builds an error carrying a display message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

/// A type that can be serialized. The derive implements [`Self::to_content`];
/// `serialize` is the serde-compatible entry point.
pub trait Serialize {
    /// Converts the value into a [`Content`] tree.
    fn to_content(&self) -> Content;

    /// Serde-compatible generic entry point.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

/// A serialization backend: consumes a [`Content`] tree.
pub trait Serializer: Sized {
    /// Success value.
    type Ok;
    /// Error value.
    type Error: Error;

    /// Consumes a content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A deserialization backend: produces a [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error value.
    type Error: Error;

    /// Produces the content tree of the input.
    fn deserialize_content(self) -> Result<Content, Self::Error>;
}

/// A type that can be deserialized.
pub trait Deserialize<'de>: Sized {
    /// Serde-compatible generic entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

// ---------------------------------------------------------------------------
// Content-based serializer/deserializer (used by derived `with`-fields and by
// serde_json)
// ---------------------------------------------------------------------------

/// Error string produced while converting content trees.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ContentError(pub String);

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// A [`Serializer`] whose output is the content tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// A [`Deserializer`] reading from an owned content tree.
pub struct ContentDeserializer {
    content: Content,
}

impl ContentDeserializer {
    /// Wraps a content tree.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content }
    }
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn deserialize_content(self) -> Result<Content, ContentError> {
        Ok(self.content)
    }
}

/// Deserializes a value from a content tree.
pub fn from_content<'de, T: Deserialize<'de>>(content: Content) -> Result<T, ContentError> {
    T::deserialize(ContentDeserializer::new(content))
}

/// Removes and returns a named entry of a map's entry list (derive helper).
pub fn take_field(entries: &mut Vec<(String, Content)>, key: &str) -> Option<Content> {
    let pos = entries.iter().position(|(k, _)| k == key)?;
    Some(entries.remove(pos).1)
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize implementations for std types
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn to_content(&self) -> Content {
                Content::Int(*self as i128)
            }
        }
        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Int(v) => <$ty>::try_from(v)
                        .map_err(|_| D::Error::custom(concat!("integer out of range for ", stringify!($ty)))),
                    other => Err(D::Error::custom(format!(
                        concat!("expected integer for ", stringify!($ty), ", found {:?}"),
                        other
                    ))),
                }
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        Content::Int(*self as i128)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(D::Error::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::Float(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Float(v) => Ok(v),
            Content::Int(v) => Ok(v as f64),
            other => Err(D::Error::custom(format!("expected float, found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Str(s) => Ok(s),
            other => Err(D::Error::custom(format!(
                "expected string, found {other:?}"
            ))),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some).map_err(D::Error::custom),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.deserialize_content()? {
            Content::Seq(elems) => elems
                .into_iter()
                .map(|e| from_content(e).map_err(D::Error::custom))
                .collect(),
            other => Err(D::Error::custom(format!(
                "expected sequence, found {other:?}"
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.deserialize_content()? {
                    Content::Seq(elems) => {
                        let mut iter = elems.into_iter();
                        Ok(($(
                            {
                                let _ = stringify!($name);
                                let elem = iter
                                    .next()
                                    .ok_or_else(|| D::Error::custom("tuple too short"))?;
                                from_content(elem).map_err(D::Error::custom)?
                            },
                        )+))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected sequence for tuple, found {other:?}"
                    ))),
                }
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, Z.3)
}

/// Maps serialize as a JSON-style object when every key serializes to a
/// string, and as a sequence of `[key, value]` pairs otherwise (tuple keys,
/// integer keys). Deserialization accepts both encodings.
impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        let pairs: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        if pairs.iter().all(|(k, _)| matches!(k, Content::Str(_))) {
            Content::Map(
                pairs
                    .into_iter()
                    .map(|(k, v)| match k {
                        Content::Str(s) => (s, v),
                        _ => unreachable!("checked above"),
                    })
                    .collect(),
            )
        } else {
            Content::Seq(
                pairs
                    .into_iter()
                    .map(|(k, v)| Content::Seq(vec![k, v]))
                    .collect(),
            )
        }
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let entries: Vec<(Content, Content)> = match deserializer.deserialize_content()? {
            Content::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| (Content::Str(k), v))
                .collect(),
            Content::Seq(pairs) => pairs
                .into_iter()
                .map(|pair| match pair {
                    Content::Seq(mut kv) if kv.len() == 2 => {
                        let v = kv.pop().expect("len 2");
                        let k = kv.pop().expect("len 2");
                        Ok((k, v))
                    }
                    other => Err(D::Error::custom(format!(
                        "expected [key, value] pair, found {other:?}"
                    ))),
                })
                .collect::<Result<_, _>>()?,
            other => {
                return Err(D::Error::custom(format!(
                    "expected map or sequence of pairs, found {other:?}"
                )))
            }
        };
        entries
            .into_iter()
            .map(|(k, v)| {
                let key = from_content(k).map_err(D::Error::custom)?;
                let value = from_content(v).map_err(D::Error::custom)?;
                Ok((key, value))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert_eq!(42u64.to_content(), Content::Int(42));
        assert_eq!(from_content::<u64>(Content::Int(42)), Ok(42));
        assert!(from_content::<u8>(Content::Int(300)).is_err());
        assert_eq!((-5i128).to_content(), Content::Int(-5));
        assert_eq!(
            from_content::<String>(Content::Str("x".into())),
            Ok("x".to_string())
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let c = v.to_content();
        assert_eq!(from_content::<Vec<(u64, String)>>(c), Ok(v));

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 7u64);
        let c = m.to_content();
        assert!(matches!(c, Content::Map(_)));
        assert_eq!(from_content::<BTreeMap<String, u64>>(c), Ok(m));

        // Non-string keys fall back to pair sequences.
        let mut m = BTreeMap::new();
        m.insert((1u64, 2u64), 3u64);
        let c = m.to_content();
        assert!(matches!(c, Content::Seq(_)));
        assert_eq!(from_content::<BTreeMap<(u64, u64), u64>>(c), Ok(m));
    }

    #[test]
    fn options_roundtrip() {
        assert_eq!(Some(1u16).to_content(), Content::Int(1));
        assert_eq!(None::<u16>.to_content(), Content::Null);
        assert_eq!(from_content::<Option<u16>>(Content::Null), Ok(None));
        assert_eq!(from_content::<Option<u16>>(Content::Int(9)), Ok(Some(9)));
    }
}
