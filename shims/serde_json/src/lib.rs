//! Offline stand-in for `serde_json`.
//!
//! Provides the subset this workspace uses: [`Value`], an insertion-ordered
//! [`Map`], the [`json!`] macro, [`to_value`], [`to_string`] /
//! [`to_string_pretty`] (matching serde_json's 2-space pretty format) and
//! [`from_str`] for round-trips in tests. Serialization interoperates with the
//! workspace `serde` shim through its `Content` tree.

use serde::{Content, Serialize};
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

/// A JSON number (integer or float).
#[derive(Clone, Debug, PartialEq)]
pub enum Number {
    /// Any integer.
    Int(i128),
    /// A float.
    Float(f64),
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::Int(v) => write!(f, "{v}"),
            Number::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map (generic so that type annotations
/// like `serde_json::Map<String, Value>` compile).
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V> Map<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Inserts a key/value pair, replacing an existing entry with the same key.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some(std::mem::replace(&mut slot.1, value))
        } else {
            self.entries.push((key, value));
            None
        }
    }

    /// Looks up a key.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: std::borrow::Borrow<Q>,
        Q: PartialEq + ?Sized,
    {
        self.entries
            .iter()
            .find(|(k, _)| k.borrow() == key)
            .map(|(_, v)| v)
    }

    /// True if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl<K: PartialEq, V> FromIterator<(K, V)> for Map<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<K, V> IntoIterator for Map<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// True if the value is a string.
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload, if any.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::Int(v)) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The integer payload, if any.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::Int(v)) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The boolean payload, if any.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup; returns `Null` for missing keys (like serde_json).
    pub fn get_key(&self, key: &str) -> &Value {
        match self {
            Value::Object(map) => map.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }

    /// Index lookup; returns `Null` out of bounds (like serde_json).
    pub fn get_index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get_key(key)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        self.get_index(index)
    }
}

macro_rules! value_eq {
    ($($ty:ty),*) => {$(
        impl PartialEq<$ty> for Value {
            fn eq(&self, other: &$ty) -> bool {
                matches!(self, Value::Number(Number::Int(v)) if *v == *other as i128)
            }
        }
        impl PartialEq<Value> for $ty {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

value_eq!(i32, i64, u32, u64, usize);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

// ---------------------------------------------------------------------------
// serde interop
// ---------------------------------------------------------------------------

fn content_to_value(content: Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::Int(v) => Value::Number(Number::Int(v)),
        Content::Float(v) => Value::Number(Number::Float(v)),
        Content::Str(s) => Value::String(s),
        Content::Seq(elems) => Value::Array(elems.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::Int(v)) => Content::Int(*v),
        Value::Number(Number::Float(v)) => Content::Float(*v),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(a) => Content::Seq(a.iter().map(value_to_content).collect()),
        Value::Object(m) => Content::Map(
            m.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn to_content(&self) -> Content {
        value_to_content(self)
    }
}

impl Serialize for Map {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        )
    }
}

impl<'de> serde::Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(content_to_value(deserializer.deserialize_content()?))
    }
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    content_to_value(value.to_content())
}

/// Error produced by this shim's conversions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl serde::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(out: &mut String, value: &Value) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => escape_into(out, s),
        Value::Array(a) => {
            out.push('[');
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, v);
            }
            out.push(']');
        }
        Value::Object(m) => {
            out.push('{');
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

fn write_pretty(out: &mut String, value: &Value, indent: usize) {
    let pad = "  ".repeat(indent);
    let pad_inner = "  ".repeat(indent + 1);
    match value {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, v) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(m) if !m.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in m.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&pad_inner);
                escape_into(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

/// Renders a serializable value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&mut out, &to_value(value));
    Ok(out)
}

/// Renders a serializable value as pretty JSON (2-space indent, like
/// serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_pretty(&mut out, &to_value(value), 0);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing (used for round-trip tests)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\n' | b'\r' | b'\t')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut elems = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(elems));
                }
                loop {
                    elems.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(elems));
                        }
                        _ => return Err(Error(format!("expected ',' or ']' at {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    map.insert(key, value);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(map));
                        }
                        _ => return Err(Error(format!("expected ',' or '}}' at {}", self.pos))),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.skip_ws();
        if self.bytes.get(self.pos) != Some(&b'"') {
            return Err(Error(format!("expected string at {}", self.pos)));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("invalid \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("invalid \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("invalid \\u escape".into()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error("invalid escape".into())),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(|v| Value::Number(Number::Float(v)))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        } else {
            text.parse::<i128>()
                .map(|v| Value::Number(Number::Int(v)))
                .map_err(|_| Error(format!("invalid number `{text}`")))
        }
    }
}

/// Parses JSON text into a deserializable value.
pub fn from_str<'de, T: serde::Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", parser.pos)));
    }
    serde::from_content(value_to_content(&value)).map_err(|e| Error(e.to_string()))
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Builds a [`Value`] from a JSON-like literal (subset of serde_json's
/// `json!`: object/array literals, `null`, booleans and arbitrary serializable
/// expressions; object keys must be string literals).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {
        $crate::Value::Array($crate::json_array_internal!(@acc [] [] $($tt)+))
    };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut object = $crate::Map::new();
        $crate::json_object_internal!(object () $($tt)+);
        $crate::Value::Object(object)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal muncher for `json!` object bodies. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // End of input.
    ($object:ident ()) => {};
    // Start of an entry: grab the key, then accumulate value tokens.
    ($object:ident () $key:literal : $($rest:tt)*) => {
        $crate::json_object_value!($object $key [] $($rest)*)
    };
}

/// Internal muncher accumulating one object value. Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    // A top-level comma ends the value.
    ($object:ident $key:literal [$($val:tt)+] , $($rest:tt)*) => {
        $object.insert($key.to_string(), $crate::json!($($val)+));
        $crate::json_object_internal!($object () $($rest)*);
    };
    // End of input ends the value.
    ($object:ident $key:literal [$($val:tt)+]) => {
        $object.insert($key.to_string(), $crate::json!($($val)+));
    };
    // Otherwise munch one token.
    ($object:ident $key:literal [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($object $key [$($val)* $next] $($rest)*)
    };
}

/// Internal muncher for `json!` array bodies: accumulates completed elements
/// (each as a bracketed token group) and expands to a single `vec![...]`.
/// Not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // End of input with no element in progress (covers trailing commas).
    (@acc [$([$($done:tt)*])*] []) => {
        ::std::vec![ $( $crate::json!($($done)*) ),* ]
    };
    // End of input: flush the in-progress element.
    (@acc [$([$($done:tt)*])*] [$($cur:tt)+]) => {
        ::std::vec![ $( $crate::json!($($done)*), )* $crate::json!($($cur)+) ]
    };
    // A top-level comma completes the in-progress element.
    (@acc [$($done:tt)*] [$($cur:tt)+] , $($rest:tt)*) => {
        $crate::json_array_internal!(@acc [$($done)* [$($cur)+]] [] $($rest)*)
    };
    // Otherwise munch one token into the in-progress element.
    (@acc [$($done:tt)*] [$($cur:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_array_internal!(@acc [$($done)*] [$($cur)* $next] $($rest)*)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_nested_values() {
        let count = 2usize;
        let v = json!({
            "a": 1,
            "b": { "c": "text", "d": [1, 2, 3] },
            "count": count,
            "flag": true,
            "nothing": null,
        });
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"]["c"], "text");
        assert_eq!(v["b"]["d"].as_array().unwrap().len(), 3);
        assert_eq!(v["count"], 2usize);
        assert_eq!(v["flag"], true);
        assert_eq!(v["nothing"], Value::Null);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn pretty_printing_matches_serde_json_layout() {
        let v = json!({ "a": 1, "b": [true, "x"] });
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(
            text,
            "{\n  \"a\": 1,\n  \"b\": [\n    true,\n    \"x\"\n  ]\n}"
        );
        let compact = to_string(&v).unwrap();
        assert_eq!(compact, "{\"a\":1,\"b\":[true,\"x\"]}");
    }

    #[test]
    fn escaping_and_parsing_roundtrip() {
        let v = json!({ "weird": "a\"b\\c\nd" });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn parser_handles_numbers_and_nesting() {
        let v: Value = from_str("{\"x\": [1, -2, 3.5], \"y\": null}").unwrap();
        assert_eq!(v["x"][0], 1);
        assert_eq!(v["x"][1], -2i64);
        assert!(matches!(v["x"][2], Value::Number(Number::Float(_))));
        assert_eq!(v["y"], Value::Null);
    }
}
