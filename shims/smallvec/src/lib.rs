//! Offline stand-in for `smallvec`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal small-size-optimized vector under the `smallvec` package name:
//! up to `N` elements are stored inline (no heap allocation), and pushing
//! beyond that spills the whole buffer to an ordinary `Vec<T>`.
//!
//! Unlike the real crate this implementation is written entirely in safe
//! Rust: the inline buffer is `[Option<T>; N]`, so contiguous-slice views are
//! not offered — iteration goes through [`SmallVec::iter`] and the
//! `IntoIterator` impls, which is all the workspace uses. Only the API
//! surface this repository actually needs is provided; extend the shim rather
//! than depending on crates.io if a new call-site needs more.

#![forbid(unsafe_code)]

use std::fmt;
use std::hash::{Hash, Hasher};

/// A vector storing up to `N` elements inline before spilling to the heap.
pub struct SmallVec<T, const N: usize> {
    repr: Repr<T, N>,
}

enum Repr<T, const N: usize> {
    /// `len` live elements in `slots[..len]`; every live slot is `Some`.
    Inline { len: usize, slots: [Option<T>; N] },
    /// Spilled storage once the inline capacity is exceeded.
    Heap(Vec<T>),
}

impl<T, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                slots: [(); N].map(|_| None),
            },
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(v) => v.len(),
        }
    }

    /// True when no elements are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends an element, spilling to the heap when the inline buffer is full.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                if *len < N {
                    slots[*len] = Some(value);
                    *len += 1;
                } else {
                    let mut v: Vec<T> = Vec::with_capacity(N * 2);
                    for slot in slots.iter_mut() {
                        v.push(slot.take().expect("inline slot below len is Some"));
                    }
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element, if any.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    slots[*len].take()
                }
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes all elements, keeping the current storage mode.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, slots } => {
                for slot in slots.iter_mut().take(*len) {
                    *slot = None;
                }
                *len = 0;
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// True when the elements still live in the inline buffer.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Iterator over element references in insertion order.
    pub fn iter(&self) -> Iter<'_, T, N> {
        Iter { vec: self, pos: 0 }
    }

    /// Reference to the element at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&T> {
        match &self.repr {
            Repr::Inline { len, slots } => {
                if index < *len {
                    slots[index].as_ref()
                } else {
                    None
                }
            }
            Repr::Heap(v) => v.get(index),
        }
    }
}

impl<T, const N: usize> Default for SmallVec<T, N> {
    fn default() -> Self {
        SmallVec::new()
    }
}

impl<T: Clone, const N: usize> Clone for SmallVec<T, N> {
    fn clone(&self) -> Self {
        self.iter().cloned().collect()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Match `Vec`/slice hashing: length prefix, then each element.
        self.len().hash(state);
        for item in self.iter() {
            item.hash(state);
        }
    }
}

impl<T, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut out = SmallVec::new();
        out.extend(iter);
        out
    }
}

/// Borrowing iterator over a [`SmallVec`].
pub struct Iter<'a, T, const N: usize> {
    vec: &'a SmallVec<T, N>,
    pos: usize,
}

impl<'a, T, const N: usize> Iterator for Iter<'a, T, N> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let item = self.vec.get(self.pos);
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.vec.len().saturating_sub(self.pos);
        (rem, Some(rem))
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T, N>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Owning iterator over a [`SmallVec`].
pub struct IntoIter<T, const N: usize> {
    repr: IntoRepr<T, N>,
}

enum IntoRepr<T, const N: usize> {
    Inline {
        pos: usize,
        len: usize,
        slots: [Option<T>; N],
    },
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match &mut self.repr {
            IntoRepr::Inline { pos, len, slots } => {
                if *pos < *len {
                    let item = slots[*pos].take();
                    *pos += 1;
                    item
                } else {
                    None
                }
            }
            IntoRepr::Heap(it) => it.next(),
        }
    }
}

impl<T, const N: usize> IntoIterator for SmallVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> Self::IntoIter {
        IntoIter {
            repr: match self.repr {
                Repr::Inline { len, slots } => IntoRepr::Inline { pos: 0, len, slots },
                Repr::Heap(v) => IntoRepr::Heap(v.into_iter()),
            },
        }
    }
}

impl<T: serde::Serialize, const N: usize> serde::Serialize for SmallVec<T, N> {
    fn to_content(&self) -> serde::Content {
        serde::Content::Seq(self.iter().map(serde::Serialize::to_content).collect())
    }
}

impl<'de, T: serde::Deserialize<'de>, const N: usize> serde::Deserialize<'de> for SmallVec<T, N> {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(deserializer).map(|v| v.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity_then_spills() {
        let mut v: SmallVec<u32, 2> = SmallVec::new();
        assert!(v.is_empty() && !v.spilled());
        v.push(1);
        v.push(2);
        assert!(!v.spilled());
        v.push(3);
        assert!(v.spilled());
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn equality_and_hash_ignore_storage_mode() {
        use std::collections::hash_map::DefaultHasher;
        let inline: SmallVec<u32, 4> = [1u32, 2, 3].into_iter().collect();
        let mut spilled: SmallVec<u32, 2> = [1u32, 2, 3].into_iter().collect();
        assert!(spilled.spilled());
        let h = |x: &dyn Fn(&mut DefaultHasher)| {
            let mut s = DefaultHasher::new();
            x(&mut s);
            s.finish()
        };
        assert_eq!(
            h(&|s| Hash::hash(&inline, s)),
            h(&|s| {
                // Same length-prefixed element hashing as a Vec of the same contents.
                vec![1u32, 2, 3].hash(s)
            })
        );
        assert_eq!(spilled.pop(), Some(3));
        assert_eq!(spilled.iter().count(), 2);
    }

    #[test]
    fn serde_roundtrips_as_a_plain_sequence() {
        let v: SmallVec<u32, 2> = [7u32, 8, 9].into_iter().collect();
        let content = serde::Serialize::to_content(&v);
        assert_eq!(content, serde::Serialize::to_content(&vec![7u32, 8, 9]));
        let back: SmallVec<u32, 2> = serde::from_content(content).expect("roundtrip");
        assert_eq!(back, v);
    }
}
