//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against the
//! workspace's `serde` shim (a `Content`-tree data model) without `syn` or
//! `quote`: the item is parsed directly from the raw token stream and the
//! generated impl is assembled as a string. Supported shapes are exactly what
//! this repository uses — non-generic structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants), plus the field attributes
//! `#[serde(skip)]` and `#[serde(with = "path")]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Per-field options collected from `#[serde(...)]` attributes.
#[derive(Default, Clone)]
struct FieldOpts {
    skip: bool,
    with: Option<String>,
}

/// One parsed field: its name (None for tuple fields) and options.
struct Field {
    name: Option<String>,
    opts: FieldOpts,
}

/// The shape of a struct or of one enum variant's payload.
enum Shape {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Consumes a run of outer attributes, returning the merged serde options.
    fn take_attrs(&mut self) -> FieldOpts {
        let mut opts = FieldOpts::default();
        while self.at_punct('#') {
            self.next(); // '#'
            let Some(TokenTree::Group(group)) = self.next() else {
                panic!("expected [...] after # in attribute");
            };
            let inner: Vec<TokenTree> = group.stream().into_iter().collect();
            if let Some(TokenTree::Ident(name)) = inner.first() {
                if name.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        parse_serde_args(args.stream(), &mut opts);
                    }
                }
            }
        }
        opts
    }

    /// Consumes an optional visibility (`pub`, `pub(crate)`, ...).
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    /// Consumes tokens until a comma outside of any `<...>` generic-argument
    /// nesting (exclusive); eats the comma. Angle brackets are not delimiter
    /// groups in token streams, so the depth is tracked manually.
    fn skip_until_comma(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle_depth == 0 => {
                        self.next();
                        return;
                    }
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn parse_serde_args(args: TokenStream, opts: &mut FieldOpts) {
    let tokens: Vec<TokenTree> = args.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                opts.skip = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "path"
                if let Some(TokenTree::Literal(lit)) = tokens.get(i + 2) {
                    let text = lit.to_string();
                    opts.with = Some(text.trim_matches('"').to_string());
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Parses the fields of a `{ ... }` group.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while cursor.peek().is_some() {
        let opts = cursor.take_attrs();
        cursor.skip_visibility();
        let Some(TokenTree::Ident(name)) = cursor.next() else {
            panic!("expected field name");
        };
        // ':'
        cursor.next();
        cursor.skip_until_comma();
        fields.push(Field {
            name: Some(name.to_string()),
            opts,
        });
    }
    fields
}

/// Parses the fields of a `( ... )` group (tuple struct / tuple variant).
fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while cursor.peek().is_some() {
        let opts = cursor.take_attrs();
        cursor.skip_visibility();
        cursor.skip_until_comma();
        fields.push(Field { name: None, opts });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while cursor.peek().is_some() {
        let _attrs = cursor.take_attrs();
        let Some(TokenTree::Ident(name)) = cursor.next() else {
            panic!("expected enum variant name");
        };
        let shape = match cursor.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                cursor.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(g.stream());
                cursor.next();
                Shape::Tuple(fields)
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        cursor.skip_until_comma();
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    let _ = cursor.take_attrs();
    cursor.skip_visibility();
    let kind = match cursor.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct or enum, found {other:?}"),
    };
    let Some(TokenTree::Ident(name)) = cursor.next() else {
        panic!("expected type name");
    };
    let name = name.to_string();
    if cursor.at_punct('<') {
        panic!("the serde shim derive does not support generic types ({name})");
    }
    match kind.as_str() {
        "struct" => {
            let shape = match cursor.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(parse_tuple_fields(g.stream()))
                }
                _ => Shape::Unit,
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let Some(TokenTree::Group(g)) = cursor.next() else {
                panic!("expected enum body");
            };
            Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            }
        }
        other => panic!("cannot derive for {other} items"),
    }
}

// ---------------------------------------------------------------------------
// Code generation — Serialize
// ---------------------------------------------------------------------------

/// Expression serialising `expr` (a place expression of the field) to Content.
fn ser_field_expr(place: &str, opts: &FieldOpts) -> String {
    match &opts.with {
        Some(path) => format!(
            "{path}::serialize(&{place}, ::serde::ContentSerializer)\
             .unwrap_or(::serde::Content::Null)"
        ),
        None => format!("::serde::Serialize::to_content(&{place})"),
    }
}

fn ser_named_fields(fields: &[Field], place_prefix: &str) -> String {
    let mut out = String::from(
        "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        if f.opts.skip {
            continue;
        }
        let name = f.name.as_deref().expect("named field");
        let place = format!("{place_prefix}{name}");
        out.push_str(&format!(
            "__fields.push((::std::string::String::from(\"{name}\"), {}));\n",
            ser_field_expr(&place, &f.opts)
        ));
    }
    out.push_str("::serde::Content::Map(__fields)");
    out
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Content::Null".to_string(),
                Shape::Tuple(fields) if fields.len() == 1 => {
                    // Newtype struct: transparent.
                    ser_field_expr("self.0", &fields[0].opts)
                }
                Shape::Tuple(fields) => {
                    let elems: Vec<String> = fields
                        .iter()
                        .enumerate()
                        .map(|(i, f)| ser_field_expr(&format!("self.{i}"), &f.opts))
                        .collect();
                    format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
                }
                Shape::Named(fields) => {
                    format!("{{ {} }}", ser_named_fields(fields, "self."))
                }
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vname} => \
                         ::serde::Content::Str(::std::string::String::from(\"{vname}\")),\n"
                    )),
                    Shape::Tuple(fields) => {
                        let binders: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let payload = if fields.len() == 1 {
                            ser_field_expr("(*__f0)", &fields[0].opts)
                        } else {
                            let elems: Vec<String> = fields
                                .iter()
                                .enumerate()
                                .map(|(i, f)| ser_field_expr(&format!("(*__f{i})"), &f.opts))
                                .collect();
                            format!("::serde::Content::Seq(::std::vec![{}])", elems.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {payload})]),\n",
                            binders.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let mut binders: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.opts.skip)
                            .map(|f| f.name.clone().expect("named"))
                            .collect();
                        binders.push("..".to_string());
                        let inner = {
                            let mut s = String::from(
                                "let mut __fields: ::std::vec::Vec<(::std::string::String, \
                                 ::serde::Content)> = ::std::vec::Vec::new();\n",
                            );
                            for f in fields {
                                if f.opts.skip {
                                    continue;
                                }
                                let fname = f.name.as_deref().expect("named");
                                s.push_str(&format!(
                                    "__fields.push((::std::string::String::from(\"{fname}\"), {}));\n",
                                    ser_field_expr(&format!("(*{fname})"), &f.opts)
                                ));
                            }
                            s.push_str("::serde::Content::Map(__fields)");
                            s
                        };
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(::std::vec![\
                             (::std::string::String::from(\"{vname}\"), {{ {inner} }})]),\n",
                            binders.join(", ")
                        ));
                    }
                }
            }
            (name, format!("match self {{ {arms} }}"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Code generation — Deserialize
// ---------------------------------------------------------------------------

const ERR: &str = "<__D::Error as ::serde::Error>::custom";

/// Expression decoding `content_expr` (a Content expression) into the field.
fn de_field_expr(content_expr: &str, opts: &FieldOpts) -> String {
    match &opts.with {
        Some(path) => format!(
            "{path}::deserialize(::serde::ContentDeserializer::new({content_expr}))\
             .map_err(|e| {ERR}(e))?"
        ),
        None => format!("::serde::from_content({content_expr}).map_err(|e| {ERR}(e))?"),
    }
}

fn de_named_fields(type_label: &str, fields: &[Field], map_expr: &str) -> String {
    let mut out = format!("let mut __map = {map_expr};\n");
    let mut inits = Vec::new();
    for f in fields {
        let fname = f.name.as_deref().expect("named field");
        if f.opts.skip {
            inits.push(format!("{fname}: ::std::default::Default::default()"));
            continue;
        }
        let take = format!(
            "::serde::take_field(&mut __map, \"{fname}\").ok_or_else(|| \
             {ERR}(\"missing field `{fname}` in {type_label}\"))?"
        );
        inits.push(format!("{fname}: {}", de_field_expr(&take, &f.opts)));
    }
    out.push_str(&format!(
        "::std::result::Result::Ok({type_label} {{ {} }})",
        inits.join(", ")
    ));
    out
}

fn de_tuple_fields(type_label: &str, fields: &[Field], seq_expr: &str) -> String {
    let mut out = format!("let mut __seq = {seq_expr}.into_iter();\n");
    let mut inits = Vec::new();
    for (i, f) in fields.iter().enumerate() {
        let next = format!(
            "__seq.next().ok_or_else(|| \
             {ERR}(\"missing element {i} in {type_label}\"))?"
        );
        inits.push(de_field_expr(&next, &f.opts));
    }
    out.push_str(&format!(
        "::std::result::Result::Ok({type_label}({}))",
        inits.join(", ")
    ));
    out
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(fields) if fields.len() == 1 => format!(
                    "::std::result::Result::Ok({name}({}))",
                    de_field_expr("__content", &fields[0].opts)
                ),
                Shape::Tuple(fields) => format!(
                    "match __content {{\n\
                         ::serde::Content::Seq(__elems) => {{ {} }}\n\
                         _ => ::std::result::Result::Err({ERR}(\"expected sequence for {name}\")),\n\
                     }}",
                    de_tuple_fields(name, fields, "__elems")
                ),
                Shape::Named(fields) => format!(
                    "match __content {{\n\
                         ::serde::Content::Map(__entries) => {{ {} }}\n\
                         _ => ::std::result::Result::Err({ERR}(\"expected map for {name}\")),\n\
                     }}",
                    de_named_fields(name, fields, "__entries")
                ),
            };
            (name, body)
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as Content::Str, payload variants as a
            // single-entry Content::Map.
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.shape {
                    Shape::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(fields) if fields.len() == 1 => {
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}({})),\n",
                            de_field_expr("__payload", &fields[0].opts)
                        ));
                    }
                    Shape::Tuple(fields) => {
                        let label = format!("{name}::{vname}");
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                                 ::serde::Content::Seq(__elems) => {{ {} }}\n\
                                 _ => ::std::result::Result::Err({ERR}(\"expected sequence for {label}\")),\n\
                             }},\n",
                            de_tuple_fields(&label, fields, "__elems")
                        ));
                    }
                    Shape::Named(fields) => {
                        let label = format!("{name}::{vname}");
                        payload_arms.push_str(&format!(
                            "\"{vname}\" => match __payload {{\n\
                                 ::serde::Content::Map(__entries) => {{ {} }}\n\
                                 _ => ::std::result::Result::Err({ERR}(\"expected map for {label}\")),\n\
                             }},\n",
                            de_named_fields(&label, fields, "__entries")
                        ));
                    }
                }
            }
            let body = format!(
                "match __content {{\n\
                     ::serde::Content::Str(__tag) => match __tag.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err({ERR}(\
                             ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__entries) => {{\n\
                         let mut __entries = __entries;\n\
                         let (__tag, __payload) = __entries.pop().ok_or_else(|| \
                             {ERR}(\"empty variant map for {name}\"))?;\n\
                         #[allow(unused_variables)]\n\
                         match __tag.as_str() {{\n\
                             {payload_arms}\n\
                             __other => ::std::result::Result::Err({ERR}(\
                                 ::std::format!(\"unknown variant `{{__other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => ::std::result::Result::Err({ERR}(\"expected string or map for enum {name}\")),\n\
                 }}"
            );
            (name, body)
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<__D: ::serde::Deserializer<'de>>(__deserializer: __D) \
                 -> ::std::result::Result<Self, __D::Error> {{\n\
                 #[allow(unused_variables)]\n\
                 let __content = ::serde::Deserializer::deserialize_content(__deserializer)?;\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde shim derive generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde shim derive generated invalid Deserialize impl")
}
