//! Offline stand-in for `criterion`.
//!
//! Mirrors the call-site API the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `criterion_group!`, `criterion_main!`). Each benchmark runs
//! one warm-up iteration plus `sample_size` individually-timed iterations,
//! prints a one-line summary and writes `estimates.json`
//! (`{"mean": {"point_estimate": <ns>}, "median": {"point_estimate": <ns>},
//! "std_dev": {"point_estimate": <ns>},
//! "outliers": {"mild": N, "severe": N}, "sample_size": N}`) under
//! `target/criterion/<group>/<id>/`, so downstream tooling can scrape the
//! numbers — including run-to-run variance and Tukey-IQR outlier counts
//! (mild = beyond 1.5×IQR from the quartiles, severe = beyond 3×IQR) — the
//! way it would scrape real criterion output.

use std::hint;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (mirror of `criterion::black_box`).
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// A benchmark identifier (`<function>/<parameter>`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new<P: std::fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> Self {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

impl From<BenchmarkId> for BenchmarkId2 {
    fn from(id: BenchmarkId) -> Self {
        BenchmarkId2(id.id)
    }
}

/// Internal normalized id (allows `bench_function` to accept both `&str` and
/// [`BenchmarkId`]).
#[doc(hidden)]
#[derive(Clone, Debug)]
pub struct BenchmarkId2(String);

impl From<&str> for BenchmarkId2 {
    fn from(id: &str) -> Self {
        BenchmarkId2(id.to_string())
    }
}

impl From<String> for BenchmarkId2 {
    fn from(id: String) -> Self {
        BenchmarkId2(id)
    }
}

/// Summary statistics of one benchmark's measured iterations.
#[derive(Clone, Copy, Debug)]
struct Estimates {
    mean_ns: f64,
    median_ns: f64,
    std_dev_ns: f64,
    /// Samples outside the mild Tukey fences (1.5×IQR beyond the quartiles)
    /// but inside the severe ones.
    mild_outliers: usize,
    /// Samples outside the severe Tukey fences (3×IQR beyond the quartiles).
    severe_outliers: usize,
}

impl Estimates {
    /// Computes mean, median, (population) standard deviation and Tukey IQR
    /// outlier counts from the per-iteration samples.
    fn from_samples(samples_ns: &[f64]) -> Estimates {
        if samples_ns.is_empty() {
            return Estimates {
                mean_ns: f64::NAN,
                median_ns: f64::NAN,
                std_dev_ns: f64::NAN,
                mild_outliers: 0,
                severe_outliers: 0,
            };
        }
        let n = samples_ns.len() as f64;
        let mean = samples_ns.iter().sum::<f64>() / n;
        let mut sorted = samples_ns.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        let variance = samples_ns
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / n;
        // Tukey fences on the interquartile range: mild = beyond 1.5×IQR
        // from the quartiles, severe = beyond 3×IQR. Same classification as
        // upstream criterion's outlier report.
        let q1 = percentile(&sorted, 0.25);
        let q3 = percentile(&sorted, 0.75);
        let iqr = q3 - q1;
        let (mild_lo, mild_hi) = (q1 - 1.5 * iqr, q3 + 1.5 * iqr);
        let (severe_lo, severe_hi) = (q1 - 3.0 * iqr, q3 + 3.0 * iqr);
        let mut mild_outliers = 0;
        let mut severe_outliers = 0;
        for &s in &sorted {
            if s < severe_lo || s > severe_hi {
                severe_outliers += 1;
            } else if s < mild_lo || s > mild_hi {
                mild_outliers += 1;
            }
        }
        Estimates {
            mean_ns: mean,
            median_ns: median,
            std_dev_ns: variance.sqrt(),
            mild_outliers,
            severe_outliers,
        }
    }
}

/// Linear-interpolation percentile (R type 7, numpy's default) over an
/// already sorted, non-empty sample slice. `p` in `[0, 1]`.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let weight = rank - lo as f64;
    sorted[lo] * (1.0 - weight) + sorted[hi] * weight
}

/// The timing driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Summary of the measured iterations, filled by [`Bencher::iter`].
    estimates: Estimates,
}

impl Bencher {
    /// Times `routine`: one warm-up call plus `sample_size` individually
    /// measured calls (per-iteration timing enables the median and standard
    /// deviation estimates).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let mut samples_ns = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            samples_ns.push(start.elapsed().as_nanos() as f64);
        }
        self.estimates = Estimates::from_samples(&samples_ns);
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId2>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            samples: self.sample_size,
            estimates: Estimates::from_samples(&[]),
        };
        f(&mut bencher);
        self.criterion
            .record(&self.name, &id, bencher.estimates, self.sample_size);
        self
    }

    /// Runs one benchmark parameterized by an input.
    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId2>,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into().0;
        let mut bencher = Bencher {
            samples: self.sample_size,
            estimates: Estimates::from_samples(&[]),
        };
        f(&mut bencher, input);
        self.criterion
            .record(&self.name, &id, bencher.estimates, self.sample_size);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    output_dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo runs bench executables with the *package* directory as cwd;
        // the shared target/ lives at the workspace root. Honour
        // CARGO_TARGET_DIR when set, otherwise walk up from cwd to the
        // nearest existing target/ directory (falling back to ./target).
        let target = std::env::var_os("CARGO_TARGET_DIR")
            .map(PathBuf::from)
            .or_else(|| {
                let mut dir = std::env::current_dir().ok()?;
                loop {
                    let candidate = dir.join("target");
                    if candidate.is_dir() {
                        return Some(candidate);
                    }
                    if !dir.pop() {
                        return None;
                    }
                }
            })
            .unwrap_or_else(|| PathBuf::from("target"));
        Criterion {
            output_dir: target.join("criterion"),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = BenchmarkGroup {
            criterion: self,
            name: String::new(),
            sample_size: 10,
        };
        group.bench_function(id, f);
        self
    }

    fn record(&mut self, group: &str, id: &str, estimates: Estimates, samples: usize) {
        let Estimates {
            mean_ns,
            median_ns,
            std_dev_ns,
            mild_outliers,
            severe_outliers,
        } = estimates;
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        let outliers = if mild_outliers + severe_outliers > 0 {
            format!("  [{mild_outliers} mild / {severe_outliers} severe outliers]")
        } else {
            String::new()
        };
        println!(
            "bench {label:<60} {:>12} ±{:>10}  ({samples} samples){outliers}",
            human(mean_ns),
            human(std_dev_ns)
        );
        let dir = if group.is_empty() {
            self.output_dir.join(id)
        } else {
            self.output_dir.join(group).join(id)
        };
        if std::fs::create_dir_all(&dir).is_ok() {
            // The `outliers` field is additive: existing consumers of the
            // mean/median/std_dev estimates keep parsing unchanged.
            let json = format!(
                "{{\"mean\": {{\"point_estimate\": {mean_ns}}}, \
                 \"median\": {{\"point_estimate\": {median_ns}}}, \
                 \"std_dev\": {{\"point_estimate\": {std_dev_ns}}}, \
                 \"outliers\": {{\"mild\": {mild_outliers}, \
                 \"severe\": {severe_outliers}}}, \
                 \"sample_size\": {samples}}}\n"
            );
            let _ = std::fs::write(dir.join("estimates.json"), json);
        }
    }
}

fn human(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Mirror of criterion's measurement duration helper (accepted and ignored).
pub fn measurement_time(_d: Duration) {}

/// Declares a benchmark group function (mirror of `criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` (mirror of `criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("egress", 440).id, "egress/440");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }

    #[test]
    fn groups_time_and_record() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        std::env::set_var("CARGO_TARGET_DIR", &dir);
        let mut c = Criterion::default();
        std::env::remove_var("CARGO_TARGET_DIR");
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.bench_with_input(BenchmarkId::new("param", 5), &5usize, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.finish();
        // warm-up + 3 samples
        assert_eq!(runs, 4);
        let estimates = dir
            .join("criterion")
            .join("g")
            .join("count")
            .join("estimates.json");
        let text = std::fs::read_to_string(&estimates).expect("estimates written");
        for field in [
            "\"mean\"",
            "\"median\"",
            "\"std_dev\"",
            "\"outliers\"",
            "\"sample_size\": 3",
        ] {
            assert!(text.contains(field), "missing {field} in {text}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn estimates_statistics() {
        let e = Estimates::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((e.mean_ns - 5.0).abs() < 1e-9);
        assert!((e.median_ns - 4.5).abs() < 1e-9);
        assert!((e.std_dev_ns - 2.0).abs() < 1e-9);
        // Odd-length median is the middle sample.
        let o = Estimates::from_samples(&[3.0, 1.0, 2.0]);
        assert!((o.median_ns - 2.0).abs() < 1e-9);
        assert!(Estimates::from_samples(&[]).mean_ns.is_nan());
    }

    #[test]
    fn outlier_classification_uses_tukey_fences() {
        // Ten samples, Q1 = 10, Q3 = 11, IQR = 1: mild fences [8.5, 12.5],
        // severe fences [7, 14].
        let base = [9.0, 10.0, 10.0, 10.0, 10.0, 11.0, 11.0, 11.0, 12.0, 12.0];
        let clean = Estimates::from_samples(&base);
        assert_eq!((clean.mild_outliers, clean.severe_outliers), (0, 0));
        // With the two spikes added the quartiles become Q1 = 10, Q3 = 12
        // (IQR = 2, mild fences [7, 15], severe fences [4, 18]): 16.0 lands
        // between the fences (mild) and 50.0 beyond the severe one.
        let mut spiked = base.to_vec();
        spiked.push(16.0);
        spiked.push(50.0);
        let e = Estimates::from_samples(&spiked);
        assert_eq!(e.mild_outliers, 1, "16.0 should be a mild outlier: {e:?}");
        assert_eq!(e.severe_outliers, 1, "50.0 should be severe: {e:?}");
        // A constant sample has zero IQR: every equal value is inside the
        // (degenerate) fences, nothing is flagged.
        let flat = Estimates::from_samples(&[5.0; 8]);
        assert_eq!((flat.mild_outliers, flat.severe_outliers), (0, 0));
    }
}
