//! Offline stand-in for `rand`.
//!
//! Implements the small deterministic subset this workspace uses:
//! `StdRng::seed_from_u64`, `rng.gen::<T>()` and `rng.gen_range(lo..hi)`.
//! The generator is splitmix64 — high quality for test/workload generation
//! and stable across platforms, which the seeded topology generators rely on.

/// Seedable constructor trait (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (mirror of sampling from the `Standard`
/// distribution).
pub trait Standard: Sized {
    /// Derives a value from one 64-bit random draw.
    fn from_u64(raw: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for u16 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 48) as u16
    }
}

impl Standard for u8 {
    fn from_u64(raw: u64) -> Self {
        (raw >> 56) as u8
    }
}

impl Standard for bool {
    fn from_u64(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`] (mirror of `SampleRange`).
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Samples uniformly from the range using one or more raw draws.
    fn sample(self, raw: u64) -> Self::Output;
}

macro_rules! range_impls {
    ($($ty:ty),*) => {$(
        impl SampleRange for std::ops::Range<$ty> {
            type Output = $ty;

            fn sample(self, raw: u64) -> $ty {
                assert!(self.start < self.end, "gen_range called with an empty range");
                let span = (self.end - self.start) as u128;
                self.start + ((raw as u128 % span) as $ty)
            }
        }
    )*};
}

range_impls!(u8, u16, u32, u64, usize);

/// The random-generation trait (mirror of `rand::Rng`).
pub trait Rng {
    /// Produces the next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Generates a value of a supported type.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Generates a value uniformly distributed over `range`.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let raw = self.next_u64();
        range.sample(raw)
    }
}

/// Ready-made generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard seeded generator (splitmix64 in this shim).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (public domain, Sebastiano Vigna).
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_generators_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
        }
        // Small ranges hit every value.
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }
}
