//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: range strategies
//! (`0i128..1000`), tuple strategies, `prop::collection::vec`,
//! `prop::bool::ANY`, `Strategy::prop_map`, the `proptest!` macro and the
//! `prop_assert!` / `prop_assert_eq!` assertions. Generation is a fixed-seed
//! deterministic sweep (no shrinking): every run tests the same
//! `PROPTEST_CASES` (default 256) pseudo-random cases.

use std::ops::Range;

/// Deterministic generator driving all strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator with the fixed default seed.
    pub fn deterministic() -> Self {
        TestRng {
            state: 0x5eed_cafe_f00d_d00d,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Next raw 128 bits.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// Number of cases each property runs (override with `PROPTEST_CASES`).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// A value generator (mirror of `proptest::strategy::Strategy`, without
/// shrinking).
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategies {
    ($($ty:ty => $wide:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let offset = (rng.next_u128() % span) as $wide;
                ((self.start as $wide) + offset) as $ty
            }
        }
    )*};
}

range_strategies!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, i128 => i128, isize => i128
);

macro_rules! tuple_strategies {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Strategy modules (mirror of `proptest::prelude::prop`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for vectors with element strategy `element` and a length
        /// drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        /// The strategy returned by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.end - self.size.start).max(1) as u64;
                let len = self.size.start + (rng.next_u64() % span) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use super::super::{Strategy, TestRng};

        /// Uniform boolean strategy.
        pub struct Any;

        /// Uniform boolean strategy value (mirror of `prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() >> 63 == 1
            }
        }
    }
}

/// Defines property tests: each function runs its body for [`cases`]
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$attr:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$attr])*
            fn $name() {
                // Each strategy expression is evaluated once and bound to its
                // argument's name; inside the loop the name is shadowed by a
                // value generated from it.
                $(let $arg = $strat;)+
                let mut __rng = $crate::TestRng::deterministic();
                for __case in 0..$crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&$arg, &mut __rng);)+
                    let __run = || -> ::std::result::Result<(), ::std::string::String> {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    };
                    if let ::std::result::Result::Err(msg) = __run() {
                        panic!("proptest case {} failed: {}", __case, msg);
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` != `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        if l == r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{:?}` == `{:?}`",
                l,
                r
            ));
        }
    }};
}

/// One-stop imports (mirror of `proptest::prelude`).
pub mod prelude {
    pub use crate::prop;
    pub use crate::{cases, MapStrategy, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn small(universe: i128) -> impl Strategy<Value = i128> {
        (0..universe).prop_map(|v| v * 2)
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0i128..100, y in -50i64..50) {
            prop_assert!((0..100).contains(&x));
            prop_assert!((-50..50).contains(&y));
        }

        #[test]
        fn vec_and_tuple_strategies_compose(
            ops in prop::collection::vec((0usize..6, 0u64..4, prop::bool::ANY), 1..6),
        ) {
            prop_assert!(!ops.is_empty() && ops.len() < 6);
            for (a, b, _flag) in &ops {
                prop_assert!(*a < 6);
                prop_assert!(*b < 4);
            }
        }

        #[test]
        fn prop_map_applies(v in small(10)) {
            prop_assert_eq!(v % 2, 0);
            prop_assert!(v < 20);
        }
    }
}
