//! A counting [`GlobalAlloc`] wrapping the system allocator.
//!
//! The rest of the workspace forbids `unsafe`; this leaf crate carries the one
//! unavoidable `unsafe impl` (the [`GlobalAlloc`] trait itself is unsafe) so
//! allocation-regression tests and benchmarks can measure allocator traffic
//! without relaxing that rule anywhere else. Install it with:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator::new();
//! ```
//!
//! and read [`snapshot`] before/after the code under measurement. Counters are
//! process-global relaxed atomics: cheap enough to leave enabled, precise
//! enough for "did this change double our allocation count" regression gates
//! (they are *not* a profiler — allocations from other threads are counted
//! too, so measure single-threaded or accept the noise).

#![deny(missing_docs)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static DEALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// A point-in-time reading of the process-global allocation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Calls to `alloc`/`realloc` (each realloc counts as one allocation).
    pub allocations: u64,
    /// Calls to `dealloc`.
    pub deallocations: u64,
    /// Total bytes requested by counted allocations.
    pub bytes_allocated: u64,
}

impl AllocSnapshot {
    /// Counter deltas from `earlier` to `self` (saturating, so a snapshot
    /// pair taken out of order degrades to zero rather than wrapping).
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocations: self.allocations.saturating_sub(earlier.allocations),
            deallocations: self.deallocations.saturating_sub(earlier.deallocations),
            bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
        }
    }
}

/// Reads the current allocation counters. Zeros until a
/// [`CountingAllocator`] is installed as the `#[global_allocator]`.
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        deallocations: DEALLOCATIONS.load(Ordering::Relaxed),
        bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
    }
}

/// The counting allocator. Forwards every call to [`System`] and bumps the
/// global counters on the way through.
pub struct CountingAllocator;

impl CountingAllocator {
    /// Creates the allocator (const, so it can initialise a static).
    pub const fn new() -> Self {
        CountingAllocator
    }
}

impl Default for CountingAllocator {
    fn default() -> Self {
        CountingAllocator::new()
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The allocator is not installed in this crate's own test binary, so only
    // the pure snapshot arithmetic is testable here; end-to-end counting is
    // exercised by symnet-bench's `alloc_regression` test under the
    // `count-allocs` feature.
    #[test]
    fn snapshot_deltas_saturate() {
        let early = AllocSnapshot {
            allocations: 10,
            deallocations: 4,
            bytes_allocated: 1000,
        };
        let late = AllocSnapshot {
            allocations: 25,
            deallocations: 9,
            bytes_allocated: 1600,
        };
        let delta = late.since(&early);
        assert_eq!(delta.allocations, 15);
        assert_eq!(delta.deallocations, 5);
        assert_eq!(delta.bytes_allocated, 600);
        let backwards = early.since(&late);
        assert_eq!(backwards, AllocSnapshot::default());
    }
}
