//! The scenario-generator family of the differential fuzzer.
//!
//! Six seeded generators share one [`GeneratorConfig`]: the two pre-existing
//! topologies (`random_switch_tree`, `ecmp_fanout`) plus four new families —
//! [`fat_tree`] datacenter fabrics, [`isp_backbone`] chains with large LPM
//! route tables, [`tunnel_nat_chain`] stacks of NAT and IP-in-IP hops, and
//! [`acl_gateway`] first-match-wins filter chains around a routed core.
//! Every generator emits a [`FuzzScenario`]: the network under test, an
//! identical *reference* network the concrete replay runs against, the
//! [`RuleTables`] registry the mutation layer perturbs, and the injection
//! point + packet of the scenario's canonical query.

use symnet_core::network::{ElementId, Network};
use symnet_models::acl::{acl_filter, AclAction, AclRule, AclTable};
use symnet_models::delta::{RouterModel, RuleTables, SwitchModel};
use symnet_models::nat::{nat, NatConfig};
use symnet_models::router::{router_egress, router_egress_with_ttl, Fib};
use symnet_models::scenarios::DepartmentConfig;
use symnet_models::tunnel::{ipip_decap, ipip_encap, mtu_filter};
use symnet_sefl::fields::ip_dst;
use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_sefl::{Condition, Instruction};

/// Shared seeding/sizing knobs of every scenario generator. The same config
/// means the same scenario, bit for bit — the reproducibility contract every
/// fuzz failure report relies on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Seed for all randomized choices (topology shape, table contents).
    pub seed: u64,
    /// Primary size knob: switch count, fat-tree arity `k`, backbone length,
    /// tunnel/NAT stage count or ECMP ways, depending on the generator.
    pub size: usize,
    /// Rule-table entries per element (MAC entries, FIB routes).
    pub entries: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            seed: 0xC0FFEE,
            size: 4,
            entries: 12,
        }
    }
}

/// One generated fuzz case: a network, its replay twin and the mutation
/// surface.
///
/// `network` and `reference` start identical; typed deltas are published into
/// *both*, so they stay identical — except for the deliberately-buggy canary
/// scenario, which swaps a defective program into `network` only (the model
/// under test) while `reference` keeps the correct one.
pub struct FuzzScenario {
    /// Generator family + config fingerprint, for reports.
    pub name: String,
    /// The network the symbolic engine explores (the model under test).
    pub network: Network,
    /// The network the concrete replay executes (identical unless a canary
    /// bug was planted).
    pub reference: Network,
    /// Registered rule tables — the typed-delta mutation surface.
    pub tables: RuleTables,
    /// Injection element of the scenario's canonical query.
    pub inject_at: ElementId,
    /// Injection input port.
    pub inject_port: usize,
    /// The symbolic packet-construction block to inject.
    pub packet: Instruction,
    /// Hop budget for both the symbolic exploration and the replay (mutated
    /// topologies may loop; the budget bounds both sides identically).
    pub max_hops: usize,
}

/// The six generator families, in campaign rotation order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeneratorKind {
    /// Seeded random tree of egress switches (shared MAC pool).
    RandomSwitchTree,
    /// k-way ECMP balancer in front of the department network.
    EcmpFanout,
    /// Three-layer fat-tree fabric of TTL-decrementing routers.
    FatTree,
    /// Chain of backbone routers with large seeded LPM tables.
    IspBackbone,
    /// NAT cascade feeding a nested IP-in-IP tunnel stack.
    TunnelNatChain,
    /// Seeded first-match-wins ACL filters wrapping a routed core.
    AclGateway,
}

impl GeneratorKind {
    /// Every generator family, in the order the fuzz campaign rotates
    /// through them.
    pub const ALL: [GeneratorKind; 6] = [
        GeneratorKind::RandomSwitchTree,
        GeneratorKind::EcmpFanout,
        GeneratorKind::FatTree,
        GeneratorKind::IspBackbone,
        GeneratorKind::TunnelNatChain,
        GeneratorKind::AclGateway,
    ];

    /// Stable name used in reports and failure reproduction lines.
    pub fn name(&self) -> &'static str {
        match self {
            GeneratorKind::RandomSwitchTree => "random_switch_tree",
            GeneratorKind::EcmpFanout => "ecmp_fanout",
            GeneratorKind::FatTree => "fat_tree",
            GeneratorKind::IspBackbone => "isp_backbone",
            GeneratorKind::TunnelNatChain => "tunnel_nat_chain",
            GeneratorKind::AclGateway => "acl_gateway",
        }
    }

    /// Builds this family's scenario for `config`.
    pub fn build(&self, config: &GeneratorConfig) -> FuzzScenario {
        match self {
            GeneratorKind::RandomSwitchTree => random_switch_tree_scenario(config),
            GeneratorKind::EcmpFanout => ecmp_fanout_scenario(config),
            GeneratorKind::FatTree => fat_tree(config),
            GeneratorKind::IspBackbone => isp_backbone(config),
            GeneratorKind::TunnelNatChain => tunnel_nat_chain(config),
            GeneratorKind::AclGateway => acl_gateway(config),
        }
    }
}

fn finish(
    name: String,
    network: Network,
    tables: RuleTables,
    inject_at: ElementId,
    packet: Instruction,
    max_hops: usize,
) -> FuzzScenario {
    FuzzScenario {
        name,
        reference: network.clone(),
        network,
        tables,
        inject_at,
        inject_port: 0,
        packet,
        max_hops,
    }
}

/// The seeded random switch tree of `symnet-parsers`, with every switch's MAC
/// table registered for mutation. `size` = switch count, `entries` = MAC
/// entries per switch.
pub fn random_switch_tree_scenario(config: &GeneratorConfig) -> FuzzScenario {
    let switches = config.size.max(2);
    let (topology, mac_tables) =
        symnet_parsers::random_switch_tree_with_tables(config.seed, switches, config.entries);
    let mut tables = RuleTables::new();
    for (id, name, table) in mac_tables {
        tables.register_switch(id, &name, table, SwitchModel::Egress);
    }
    let root = topology.elements["sw0"];
    finish(
        format!("random_switch_tree(seed={}, n={switches})", config.seed),
        topology.network,
        tables,
        root,
        symbolic_tcp_packet(),
        24,
    )
}

/// The k-way ECMP balancer in front of the department network. `size` = ways;
/// `entries` sizes the department's MAC tables. The department scenario
/// compiles its own tables internally, so this family's mutation surface is
/// topological (link rewires) rather than typed deltas.
pub fn ecmp_fanout_scenario(config: &GeneratorConfig) -> FuzzScenario {
    let ways = config.size.clamp(1, 256);
    let fanout = crate::ecmp_fanout(
        ways,
        DepartmentConfig {
            access_switches: 3,
            mac_entries: config.entries.max(4),
            routes: config.entries.max(4),
        },
    );
    finish(
        format!("ecmp_fanout(ways={ways})"),
        fanout.network,
        RuleTables::new(),
        fanout.balancer,
        symbolic_tcp_packet(),
        24,
    )
}

/// Host address of slot `h` behind edge `e` of pod `p`: `10.p.e.h`.
pub fn fat_tree_host_ip(pod: usize, edge: usize, host: usize) -> u32 {
    (10u32 << 24) | ((pod as u32) << 16) | ((edge as u32) << 8) | host as u32
}

/// A `k`-ary fat-tree fabric (`k` even): `(k/2)²` core routers, `k` pods of
/// `k/2` aggregation + `k/2` edge routers each, with `k/2` host ports per
/// edge. All routers run [`router_egress_with_ttl`], so even mutated
/// (mis-cabled or misrouted) fabrics terminate: every hop burns TTL.
///
/// Addressing is the classic scheme — host `h` behind edge `e` of pod `p` is
/// `10.p.e.h/32` on the edge, `10.p.e.0/24` on the pod's aggregation layer,
/// `10.p.0.0/16` on the cores — and the injected packet is constrained to
/// the union of real host prefixes, so the unmutated fabric delivers every
/// path at a host port (no default-route ping-pong).
///
/// `size` is `k`, rounded down to an even number and clamped to `2..=6`.
pub fn fat_tree(config: &GeneratorConfig) -> FuzzScenario {
    let k = (config.size.clamp(2, 6) / 2) * 2;
    let half = k / 2;
    let mut network = Network::new();
    let mut tables = RuleTables::new();
    let register = |network: &mut Network, tables: &mut RuleTables, name: String, fib: Fib| {
        let id = network.add_element(router_egress_with_ttl(&name, &fib));
        tables.register_router(id, &name, fib, RouterModel::EgressTtl);
        id
    };

    // Core routers: port p goes to pod p; core (i, j) attaches to the j-th
    // aggregation router of every pod.
    let cores: Vec<ElementId> = (0..half * half)
        .map(|c| {
            let mut fib = Fib::new(k);
            for p in 0..k {
                fib.add((10u32 << 24) | ((p as u32) << 16), 16, p);
            }
            register(&mut network, &mut tables, format!("core{c}"), fib)
        })
        .collect();

    // Pods: aggregation ports 0..half go down (to edges), half..k go up (to
    // cores); edge ports 0..half are host ports, half..k go up (to aggs).
    let mut edges = Vec::new();
    for p in 0..k {
        let aggs: Vec<ElementId> = (0..half)
            .map(|a| {
                let mut fib = Fib::new(k);
                for e in 0..half {
                    fib.add(fat_tree_host_ip(p, e, 0) & 0xffff_ff00, 24, e);
                }
                // Default upward; which uplink varies per agg so mutated
                // traffic spreads over the core layer.
                fib.add(0, 0, half + (a % half));
                register(&mut network, &mut tables, format!("agg{p}_{a}"), fib)
            })
            .collect();
        for e in 0..half {
            let mut fib = Fib::new(k);
            for h in 0..half {
                fib.add(fat_tree_host_ip(p, e, h), 32, h);
            }
            // The rest of the edge's own /24 lands on host port 0; everything
            // else goes up.
            fib.add(fat_tree_host_ip(p, e, 0) & 0xffff_ff00, 24, 0);
            fib.add(0, 0, half + (e % half));
            let edge = register(&mut network, &mut tables, format!("edge{p}_{e}"), fib);
            edges.push(edge);
            for (a, agg) in aggs.iter().enumerate() {
                // Edge uplink half+a <-> agg downlink e, symmetric inputs.
                network.add_duplex_link(edge, half + a, half + a, *agg, e, e);
            }
        }
        for (a, agg) in aggs.iter().enumerate() {
            for j in 0..half {
                let core = cores[a * half + j];
                // Agg uplink half+j <-> core port p, symmetric inputs.
                network.add_duplex_link(*agg, half + j, half + j, core, p, p);
            }
        }
    }

    // Constrain the symbolic destination to the real host space so every
    // unmutated path terminates at a host port.
    let mut host_prefixes = Vec::new();
    for p in 0..k {
        for e in 0..half {
            for h in 0..half {
                host_prefixes.push(Condition::matches_ipv4_prefix(
                    ip_dst().field(),
                    u64::from(fat_tree_host_ip(p, e, h)),
                    32,
                ));
            }
        }
    }
    let packet = Instruction::block(vec![
        symbolic_tcp_packet(),
        Instruction::constrain(Condition::or(host_prefixes)),
    ]);
    finish(
        format!("fat_tree(k={k})"),
        network,
        tables,
        edges[0],
        packet,
        24,
    )
}

/// A linear ISP backbone: `size` core routers in a chain, each with a large
/// seeded LPM table (`entries` routes over /16 and /24 prefixes). Port 0 is
/// the west neighbour, port 1 the east neighbour, ports 2..4 are customer
/// ports (unlinked, so traffic routed there is delivered). The routers do
/// *not* decrement TTL, so bounced traffic is caught by the engine's loop
/// detection instead — the complementary termination regime to [`fat_tree`].
pub fn isp_backbone(config: &GeneratorConfig) -> FuzzScenario {
    let len = config.size.clamp(2, 16);
    let entries = config.entries.max(4);
    let mut network = Network::new();
    let mut tables = RuleTables::new();
    let mut seed = config.seed;
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let routers: Vec<ElementId> = (0..len)
        .map(|r| {
            let mut fib = Fib::new(5);
            // Default route toward the east end of the chain.
            fib.add(0, 0, 1);
            for _ in 0..entries {
                let h = next();
                if h % 8 == 0 {
                    fib.add((h >> 16) as u32 & 0xffff_0000, 16, (h % 5) as usize);
                } else {
                    fib.add(h as u32 & 0xffff_ff00, 24, ((h >> 32) % 5) as usize);
                }
            }
            let name = format!("bb{r}");
            let id = network.add_element(router_egress(&name, &fib));
            tables.register_router(id, &name, fib, RouterModel::Egress);
            id
        })
        .collect();
    for w in 0..len - 1 {
        // East link of router w <-> west link of router w+1.
        network.add_duplex_link(routers[w], 1, 1, routers[w + 1], 0, 0);
    }
    finish(
        format!("isp_backbone(seed={}, len={len})", config.seed),
        network,
        tables,
        routers[0],
        symbolic_l3_tcp_packet(),
        24,
    )
}

/// A NAT cascade feeding a nested IP-in-IP tunnel stack:
///
/// ```text
/// nat0 → … → natN → encap0 → … → encapD → decapD → … → decap0 → mtu → (out)
/// ```
///
/// `size` NAT stages rewrite the source address/port (each allocating a fresh
/// symbolic port — the scenario that exercises the replay's fresh-variable
/// oracle), then `min(size, 3)` nested encapsulations push and pop outer
/// headers (the scenario that exercises full-stack concretization: inner
/// header values are masked mid-path and re-exposed by the decaps). The
/// injected packet is L3-only, like the paper's tunnel experiments.
pub fn tunnel_nat_chain(config: &GeneratorConfig) -> FuzzScenario {
    let stages = config.size.clamp(1, 6);
    let depth = stages.min(3);
    let mut network = Network::new();
    let mut tables = RuleTables::new();
    let mut chain: Vec<(ElementId, usize)> = Vec::new();

    for s in 0..stages {
        let cfg = NatConfig {
            public_ip: 0xc0a8_0100 + s as u32,
            port_low: 1024 + (s as u16) * 64,
            port_high: 60_000,
        };
        let name = format!("nat{s}");
        let id = network.add_element(nat(&name, cfg));
        tables.register_nat(id, &name, cfg);
        chain.push((id, 0)); // outbound side: input 0 → output 0
    }
    for d in 0..depth {
        let src = 0x0a64_0000 + d as u32;
        let dst = 0x0a65_0000 + d as u32;
        let id = network.add_element(ipip_encap(&format!("encap{d}"), src, dst));
        chain.push((id, 0));
    }
    for d in (0..depth).rev() {
        let dst = 0x0a65_0000 + d as u32;
        let id = network.add_element(ipip_decap(&format!("decap{d}"), dst));
        chain.push((id, 0));
    }
    let mtu = network.add_element(mtu_filter("mtu", 1536));
    chain.push((mtu, 0));
    for w in 0..chain.len() - 1 {
        let (from, out) = chain[w];
        let (to, _) = chain[w + 1];
        network.add_link(from, out, to, 0);
    }
    let first = chain[0].0;
    finish(
        format!("tunnel_nat_chain(stages={stages}, depth={depth})"),
        network,
        tables,
        first,
        symbolic_l3_tcp_packet(),
        (stages + 2 * depth + 2).max(8),
    )
}

/// A pair of seeded first-match-wins ACL filters wrapping a routed core:
///
/// ```text
/// acl_in → core (LPM over customer ports) → [port 1] acl_out → (out)
/// ```
///
/// `entries` seeds both rule lists (random source/destination prefixes, TCP
/// destination ports and protocol pins, mixed permit/deny, terminated by an
/// explicit permit-any) and the core's FIB. Both ACL tables are registered,
/// so the mutation layer exercises [`symnet_models::delta::Delta::AclInsert`]
/// and `AclRemove` — positional edits whose shadowing semantics (a deny
/// inserted above a permit wins) are exactly what the concrete replay must
/// reproduce through the compiled if-chain.
pub fn acl_gateway(config: &GeneratorConfig) -> FuzzScenario {
    let entries = config.entries.clamp(2, 64);
    let mut seed = config.seed;
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let seeded_rule = |h: u64| {
        let mut rule = AclRule {
            src: (h & 1 != 0).then_some(((h >> 8) as u32 & 0xffff_0000, 16)),
            dst: (h & 2 != 0).then_some((0x0a00_0000 | ((h >> 24) as u32 & 0x00ff_ff00), 24)),
            proto: (h & 4 != 0).then_some(6),
            dst_port: (h & 8 != 0).then_some((h >> 40) & 0xffff),
            action: if h & 16 != 0 {
                AclAction::Deny
            } else {
                AclAction::Permit
            },
        };
        // Never generate an unconditional deny: an early catch-all would
        // shadow the whole list and blackhole every case of this seed.
        if rule.src.is_none() && rule.dst.is_none() && rule.dst_port.is_none() {
            rule.proto = Some(6);
        }
        rule
    };
    let mut table_in = AclTable::new();
    let mut table_out = AclTable::new();
    for _ in 0..entries {
        table_in.push(seeded_rule(next()));
        table_out.push(seeded_rule(next()));
    }
    // Default-permit tails so the unmutated gateway always delivers traffic.
    table_in.push(AclRule::permit_any());
    table_out.push(AclRule::permit_any());

    // The routed core: customer /24s on ports 1..=3, default toward port 1
    // (the egress filter). Ports 2 and 3 are unlinked delivery points.
    let mut fib = Fib::new(4);
    fib.add(0, 0, 1);
    for _ in 0..entries {
        let h = next();
        fib.add(
            0x0a00_0000 | (h as u32 & 0x00ff_ff00),
            24,
            1 + (h >> 32) as usize % 3,
        );
    }

    let mut network = Network::new();
    let mut tables = RuleTables::new();
    let acl_in = network.add_element(acl_filter("acl_in", &table_in));
    let core = network.add_element(router_egress("core", &fib));
    let acl_out = network.add_element(acl_filter("acl_out", &table_out));
    tables.register_acl(acl_in, "acl_in", table_in);
    tables.register_router(core, "core", fib, RouterModel::Egress);
    tables.register_acl(acl_out, "acl_out", table_out);
    network.add_link(acl_in, 0, core, 0);
    network.add_link(core, 1, acl_out, 0);

    finish(
        format!("acl_gateway(seed={}, entries={entries})", config.seed),
        network,
        tables,
        acl_in,
        symbolic_l3_tcp_packet(),
        8,
    )
}
