//! # symnet-testgen
//!
//! The automated model-testing framework of §8.3, rebuilt around an in-process
//! reference implementation instead of a hardware testbed:
//!
//! 1. run a reachability query over the SEFL model with a symbolic packet,
//! 2. for every explored path, ask the solver for a concrete packet satisfying
//!    the path condition (the paper's step 2, "use Z3 and the path constraints
//!    to generate concrete values for all the header fields"),
//! 3. feed the concrete packet to a *reference implementation* (a Rust closure
//!    standing in for the Click instance / ASA hardware behind tcpdump), and
//! 4. compare the reference's verdict — output port and rewritten header
//!    fields — against what the symbolic path predicts; divergences become
//!    [`Mismatch`] reports.
//!
//! The §8.3 bug catalogue (IPMirror forgetting ports, HostEtherFilter checking
//! the wrong field, ...) is reproduced in this crate's tests and in
//! `tests/testgen.rs` by pairing the buggy models from `symnet-models` with
//! correct reference implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
pub mod generators;
pub mod replay;

pub use generators::{FuzzScenario, GeneratorConfig, GeneratorKind};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use symnet_core::engine::{ExecutionReport, PathStatus, SymNet};
use symnet_core::network::{ElementId, Network};
use symnet_core::state::ExecState;
use symnet_core::value::Value;
use symnet_core::ExecError;
use symnet_models::scenarios::{department, DepartmentConfig, DepartmentTopology};
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields::{ether_dst, ether_src, ip_dst, ip_src, ip_ttl, tcp_dst, tcp_src};
use symnet_sefl::{Condition, ElementProgram, Instruction};
use symnet_solver::{Model, Solver};

/// A concrete test packet: the header fields the reference implementations
/// care about, extracted from a solver model.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConcretePacket {
    /// Field values by shorthand name (`"IpSrc"`, `"TcpDst"`, ...).
    pub fields: BTreeMap<String, u64>,
}

impl ConcretePacket {
    /// Value of a field (0 if absent).
    pub fn get(&self, name: &str) -> u64 {
        self.fields.get(name).copied().unwrap_or(0)
    }

    /// Sets a field value.
    pub fn set(&mut self, name: &str, value: u64) {
        self.fields.insert(name.to_string(), value);
    }
}

/// What the reference implementation did with a concrete packet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ReferenceVerdict {
    /// The packet was forwarded out of this port with these (possibly
    /// rewritten) field values.
    Forwarded {
        /// Output port of the device under test.
        port: usize,
        /// The packet as observed at the output.
        packet: ConcretePacket,
    },
    /// The packet was dropped.
    Dropped,
}

/// A reference implementation: concrete-packet-in, verdict-out. This plays the
/// role of the real Click configuration / ASA appliance of §8.3.
pub type Reference<'a> = dyn Fn(&ConcretePacket) -> ReferenceVerdict + 'a;

/// A divergence between the SEFL model and the reference implementation.
#[derive(Clone, Debug)]
pub struct Mismatch {
    /// The concrete packet that exposed the divergence.
    pub packet: ConcretePacket,
    /// What the symbolic model predicted.
    pub model_says: String,
    /// What the reference implementation did.
    pub reference_says: String,
}

/// Summary of one testing campaign.
#[derive(Clone, Debug, Default)]
pub struct TestgenReport {
    /// Number of symbolic paths for which a concrete packet was generated.
    pub cases_from_paths: usize,
    /// Number of extra random packets replayed (step 6 of the §8.3 loop).
    pub random_cases: usize,
    /// Divergences found.
    pub mismatches: Vec<Mismatch>,
}

impl TestgenReport {
    /// True if the model agreed with the reference on every generated packet.
    pub fn is_clean(&self) -> bool {
        self.mismatches.is_empty()
    }
}

/// The header fields extracted into [`ConcretePacket`]s.
pub fn tracked_fields() -> Vec<(&'static str, FieldRef)> {
    vec![
        ("EtherDst", ether_dst().field()),
        ("EtherSrc", ether_src().field()),
        ("IpSrc", ip_src().field()),
        ("IpDst", ip_dst().field()),
        ("IpTtl", ip_ttl().field()),
        ("TcpSrc", tcp_src().field()),
        ("TcpDst", tcp_dst().field()),
    ]
}

/// Evaluates a state's tracked fields under a solver model, producing a
/// concrete packet. Symbolic variables the model leaves unconstrained get a
/// deterministic per-variable default, so the same variable concretises to the
/// same value on the input and the output side of a comparison.
pub fn concretize_state(state: &ExecState, model: &Model) -> Result<ConcretePacket, ExecError> {
    let mut packet = ConcretePacket::default();
    for (name, field) in tracked_fields() {
        match state.read_field(&field, "") {
            Err(_) => continue, // field not present on this packet layout
            Ok(slot) => {
                let value = match slot.value {
                    Value::Concrete(v) => v,
                    Value::Sym { var, offset } => {
                        let base = model.value(var.id).unwrap_or_else(|| default_value(var));
                        (base as i128 + offset as i128).max(0) as u64
                    }
                };
                packet.set(name, value);
            }
        }
    }
    Ok(packet)
}

/// Deterministic default value for a symbolic variable the solver left
/// unconstrained: distinct per variable, clipped to the variable's width.
/// Shared with the replay interpreter so both sides of a differential
/// comparison concretize an unconstrained variable identically.
pub(crate) fn default_value(var: symnet_solver::SymVar) -> u64 {
    (0x1009 + var.id.0.wrapping_mul(7919)) & var.max_value()
}

/// Options of a testing campaign.
#[derive(Clone, Copy, Debug)]
pub struct TestgenConfig {
    /// Number of additional random packets to replay after the per-path
    /// packets (step 6 of the §8.3 procedure).
    pub random_cases: usize,
    /// Seed for the random packets.
    pub seed: u64,
}

impl Default for TestgenConfig {
    fn default() -> Self {
        TestgenConfig {
            random_cases: 32,
            seed: 0xC0FFEE,
        }
    }
}

/// Runs the §8.3 testing loop against a single-element model.
///
/// * `engine` / `element` / `packet` describe the symbolic run (the model
///   under test is the element's program),
/// * `reference` is the trusted implementation the concrete packets are
///   replayed through.
pub fn test_element(
    engine: &SymNet,
    element: ElementId,
    packet: &symnet_sefl::Instruction,
    reference: &Reference<'_>,
    config: TestgenConfig,
) -> TestgenReport {
    let report = engine.inject(element, 0, packet);
    let mut out = TestgenReport::default();
    let mut solver = Solver::default();

    // Step 2-4: one concrete packet per explored symbolic path.
    for path in &report.paths {
        let Some(model) = solver.model(&path.state.path_condition()) else {
            continue;
        };
        let Ok(input) = concretize_state(&report.injected, &model) else {
            continue;
        };
        out.cases_from_paths += 1;
        let expected = predict(&report, path, &model);
        let observed = reference(&input);
        if let Some(mismatch) = compare(&input, &expected, &observed) {
            out.mismatches.push(mismatch);
        }
    }

    // Step 6: random concrete packets, checked against whichever symbolic path
    // admits them.
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.random_cases {
        let mut input = ConcretePacket::default();
        for (name, _) in tracked_fields() {
            input.set(name, rng.gen::<u32>() as u64);
        }
        out.random_cases += 1;
        let observed = reference(&input);
        // Without a matching symbolic path we cannot predict an outcome; the
        // random cases only check that "reference forwards ⇒ some model path
        // forwards the same packet" at the port level.
        if let ReferenceVerdict::Forwarded { .. } = observed {
            // This check is necessarily approximate: we only flag it when the
            // model has no delivered paths at all.
            if report.delivered().count() == 0 {
                out.mismatches.push(Mismatch {
                    packet: input.clone(),
                    model_says: "model never delivers any packet".into(),
                    reference_says: "reference forwarded the packet".into(),
                });
            }
        }
    }
    out
}

/// What the symbolic path predicts for the concrete packet chosen by `model`.
fn predict(
    report: &ExecutionReport,
    path: &symnet_core::engine::PathReport,
    model: &Model,
) -> ReferenceVerdict {
    let _ = report;
    match &path.status {
        PathStatus::Delivered { port, .. } => {
            let packet = concretize_state(&path.state, model).unwrap_or_default();
            ReferenceVerdict::Forwarded {
                port: *port,
                packet,
            }
        }
        PathStatus::Dropped { .. } => ReferenceVerdict::Dropped,
    }
}

/// Compares prediction and observation on a concrete input.
fn compare(
    input: &ConcretePacket,
    expected: &ReferenceVerdict,
    observed: &ReferenceVerdict,
) -> Option<Mismatch> {
    match (expected, observed) {
        (ReferenceVerdict::Dropped, ReferenceVerdict::Dropped) => None,
        (
            ReferenceVerdict::Forwarded {
                port: ep,
                packet: epk,
            },
            ReferenceVerdict::Forwarded {
                port: op,
                packet: opk,
            },
        ) => {
            if ep != op {
                return Some(Mismatch {
                    packet: input.clone(),
                    model_says: format!("forward on port {ep}"),
                    reference_says: format!("forward on port {op}"),
                });
            }
            for (name, expected_value) in &epk.fields {
                if let Some(observed_value) = opk.fields.get(name) {
                    if observed_value != expected_value {
                        return Some(Mismatch {
                            packet: input.clone(),
                            model_says: format!("{name} = {expected_value}"),
                            reference_says: format!("{name} = {observed_value}"),
                        });
                    }
                }
            }
            None
        }
        (ReferenceVerdict::Dropped, ReferenceVerdict::Forwarded { port, .. }) => Some(Mismatch {
            packet: input.clone(),
            model_says: "drop".into(),
            reference_says: format!("forward on port {port}"),
        }),
        (ReferenceVerdict::Forwarded { port, .. }, ReferenceVerdict::Dropped) => Some(Mismatch {
            packet: input.clone(),
            model_says: format!("forward on port {port}"),
            reference_says: "drop".into(),
        }),
    }
}

/// The trusted reference behaviour of `IPMirror` (swaps addresses and ports).
pub fn reference_ip_mirror(packet: &ConcretePacket) -> ReferenceVerdict {
    let mut out = packet.clone();
    out.set("IpSrc", packet.get("IpDst"));
    out.set("IpDst", packet.get("IpSrc"));
    out.set("TcpSrc", packet.get("TcpDst"));
    out.set("TcpDst", packet.get("TcpSrc"));
    ReferenceVerdict::Forwarded {
        port: 0,
        packet: out,
    }
}

/// The trusted reference behaviour of `HostEtherFilter(mac)`.
pub fn reference_host_ether_filter(mac: u64) -> impl Fn(&ConcretePacket) -> ReferenceVerdict {
    move |packet: &ConcretePacket| {
        if packet.get("EtherDst") == mac {
            ReferenceVerdict::Forwarded {
                port: 0,
                packet: packet.clone(),
            }
        } else {
            ReferenceVerdict::Dropped
        }
    }
}

/// The trusted reference behaviour of `DecIPTTL` (with the real unsigned
/// wrap-around of the C implementation).
pub fn reference_dec_ip_ttl(packet: &ConcretePacket) -> ReferenceVerdict {
    let ttl = packet.get("IpTtl");
    if ttl == 0 {
        return ReferenceVerdict::Dropped;
    }
    let mut out = packet.clone();
    out.set("IpTtl", ttl - 1);
    ReferenceVerdict::Forwarded {
        port: 0,
        packet: out,
    }
}

// ---------------------------------------------------------------------------
// Scenario generator: k-way ECMP fan-out in front of the department network
// ---------------------------------------------------------------------------

/// The `ecmp_fanout` scenario: element ids of interest plus the network.
#[derive(Clone, Debug)]
pub struct EcmpFanout {
    /// The complete network (balancer + department).
    pub network: Network,
    /// The ECMP balancer; inject at its input port 0.
    pub balancer: ElementId,
    /// Ids of the department network behind the balancer.
    pub topology: DepartmentTopology,
    /// The fan-out width `k`.
    pub ways: usize,
}

/// Builds a `k`-way ECMP load-balancer in front of the [`department`] network.
///
/// The balancer splits traffic over `ways` equal `TcpSrc` buckets (the
/// classic source-port hash, modelled as an if-chain over disjoint ranges) and
/// wires every output to the office access switch, so one symbolic injection
/// at the balancer forks into `ways` disjoint flows that each traverse the
/// full department topology. Path counts — and therefore engine work — scale
/// linearly in `ways`, which makes the scenario a natural stress load and a
/// multi-query workload generator for the concurrent serving layer (inject
/// one query per bucket).
///
/// `ways` must be in `1..=256` so every bucket is non-empty.
pub fn ecmp_fanout(ways: usize, config: DepartmentConfig) -> EcmpFanout {
    assert!((1..=256).contains(&ways), "ways must be in 1..=256");
    let (mut network, topology) = department(config);
    let balancer = network.add_element(
        ElementProgram::new("ecmp-lb", 1, ways).with_any_input_code(ecmp_balancer_code(ways)),
    );
    for port in 0..ways {
        network.add_link(balancer, port, topology.office_switch, 0);
    }
    EcmpFanout {
        network,
        balancer,
        topology,
        ways,
    }
}

/// The disjoint-`TcpSrc`-bucket if-chain shared by [`ecmp_fanout`] and the
/// [`generators`] family: built back to front, so the last bucket is the
/// unconditional else branch and absorbs the division remainder.
pub(crate) fn ecmp_balancer_code(ways: usize) -> Instruction {
    let bucket = 65_536u64 / ways as u64;
    let mut code = Instruction::forward(ways - 1);
    for i in (0..ways - 1).rev() {
        code = Instruction::if_else(
            Condition::lt(
                symnet_sefl::fields::tcp_src().field(),
                (i as u64 + 1) * bucket,
            ),
            Instruction::forward(i),
            code,
        );
    }
    code
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_sefl::packet::symbolic_tcp_packet;

    #[test]
    fn ecmp_fanout_splits_traffic_over_disjoint_buckets() {
        let fanout = ecmp_fanout(
            4,
            DepartmentConfig {
                access_switches: 3,
                mac_entries: 30,
                routes: 10,
            },
        );
        let engine = SymNet::new(fanout.network.clone());
        let report = engine.inject(fanout.balancer, 0, &symbolic_tcp_packet());
        // Every bucket reaches the department and explores it independently,
        // so the exploration forks at least `ways` delivered paths.
        assert!(
            report.delivered().count() >= fanout.ways,
            "expected >= {} delivered paths, got {}",
            fanout.ways,
            report.delivered().count()
        );
        // A solo department run from the office switch; the ECMP run must
        // explore a multiple of its paths.
        let (solo_net, solo_topo) = department(DepartmentConfig {
            access_switches: 3,
            mac_entries: 30,
            routes: 10,
        });
        let solo = SymNet::new(solo_net).inject(solo_topo.office_switch, 0, &symbolic_tcp_packet());
        assert!(
            report.path_count() >= fanout.ways * solo.path_count(),
            "ECMP path count {} must scale the solo count {} by ways={}",
            report.path_count(),
            solo.path_count(),
            fanout.ways
        );
    }

    use symnet_models::click::{
        dec_ip_ttl, host_ether_filter, host_ether_filter_buggy, ip_mirror, ip_mirror_buggy,
    };

    fn engine_for(program: symnet_sefl::ElementProgram) -> (SymNet, ElementId) {
        let mut net = Network::new();
        let id = net.add_element(program);
        (SymNet::new(net), id)
    }

    #[test]
    fn correct_ip_mirror_passes_testing() {
        let (engine, id) = engine_for(ip_mirror("m"));
        let report = test_element(
            &engine,
            id,
            &symbolic_tcp_packet(),
            &reference_ip_mirror,
            TestgenConfig::default(),
        );
        assert!(report.cases_from_paths >= 1);
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
    }

    #[test]
    fn buggy_ip_mirror_is_caught() {
        // §8.3: "Our model was incomplete: it only mirrored the IP addresses
        // and not ports."
        let (engine, id) = engine_for(ip_mirror_buggy("m"));
        let report = test_element(
            &engine,
            id,
            &symbolic_tcp_packet(),
            &reference_ip_mirror,
            TestgenConfig::default(),
        );
        assert!(!report.is_clean(), "the port-swap bug must be detected");
        assert!(report.mismatches[0].model_says.contains("Tcp"));
    }

    #[test]
    fn buggy_host_ether_filter_is_caught() {
        // A small MAC value keeps the buggy model (which compares the 16-bit
        // EtherType against the MAC) satisfiable, and a packet with a symbolic
        // EtherType lets the buggy model produce a concrete witness packet —
        // which the reference then refuses to forward.
        let mac = 0xaa;
        let packet = symnet_sefl::packet::PacketBuilder::new()
            .ethernet(None)
            .ipv4(Some(symnet_sefl::fields::ipproto::TCP))
            .tcp()
            .build();
        let (engine, id) = engine_for(host_ether_filter("f", mac));
        let clean = test_element(
            &engine,
            id,
            &packet,
            &reference_host_ether_filter(mac),
            TestgenConfig::default(),
        );
        assert!(clean.is_clean());
        let (engine, id) = engine_for(host_ether_filter_buggy("f", mac));
        let buggy = test_element(
            &engine,
            id,
            &packet,
            &reference_host_ether_filter(mac),
            TestgenConfig::default(),
        );
        assert!(
            !buggy.is_clean(),
            "checking the wrong field must be detected"
        );
    }

    #[test]
    fn dec_ip_ttl_model_matches_reference() {
        let (engine, id) = engine_for(dec_ip_ttl("ttl"));
        let report = test_element(
            &engine,
            id,
            &symbolic_tcp_packet(),
            &reference_dec_ip_ttl,
            TestgenConfig::default(),
        );
        assert!(report.is_clean(), "mismatches: {:?}", report.mismatches);
    }

    #[test]
    fn concretize_state_extracts_model_values() {
        let (engine, id) = engine_for(ip_mirror("m"));
        let report = engine.inject(id, 0, &symbolic_tcp_packet());
        let path = report.delivered().next().unwrap();
        let mut solver = Solver::default();
        let model = solver.model(&path.state.path_condition()).unwrap();
        let packet = concretize_state(&report.injected, &model).unwrap();
        assert!(packet.fields.contains_key("IpSrc"));
        assert!(packet.fields.contains_key("TcpDst"));
    }
}
