//! Concrete reference execution: replaying one concrete packet through the
//! element programs of a network.
//!
//! The differential oracle's reference side. Where the symbolic engine
//! explores *every* feasible branch of an element program, this interpreter
//! executes the same SEFL instructions over a fully **concrete**
//! [`ExecState`]: conditions evaluate to a boolean (an `If` takes exactly one
//! branch, a `Constrain` either passes or drops the packet), `Fork` duplicates
//! the concrete packet per port, and `Expr::Symbolic` draws the value the
//! solver model assigns to the variable the symbolic engine would have
//! allocated at the same program point (unconstrained variables fall back to
//! the same deterministic default both sides share).
//!
//! Variable alignment: the engine allocates fresh ids sequentially per path,
//! starting from a clone of the post-packet-construction allocator. The
//! replay resumes the same sequence via [`VarAllocator::starting_at`] with
//! `injected.max_symbol_id() + 1`, so along any replayed branch the `n`-th
//! `Expr::Symbolic` evaluation maps to the same variable id on both sides.

use crate::{default_value, tracked_fields, ConcretePacket};
use symnet_core::engine::{local_prefix, substitute_meta};
use symnet_core::error::ExecError;
use symnet_core::network::{ElementId, Network};
use symnet_core::state::{ExecState, DEFAULT_META_WIDTH};
use symnet_core::symbols::VarAllocator;
use symnet_core::value::Value;
use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::Instruction;
use symnet_solver::{Model, SymVar};

/// Where one concrete packet left the network.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The element whose unlinked output port emitted the packet.
    pub element: ElementId,
    /// The output port.
    pub port: usize,
    /// The packet's tracked header fields at the output.
    pub packet: ConcretePacket,
}

/// The result of replaying one concrete packet.
#[derive(Clone, Debug, Default)]
pub struct Replay {
    /// Every delivery of (a copy of) the packet, in exploration order.
    pub outcomes: Vec<ReplayOutcome>,
    /// Copies dropped (failed constraint, memory error, hop budget).
    pub dropped: usize,
}

impl Replay {
    /// True if some copy of the packet was delivered at `(element, port)`.
    pub fn delivered_at(&self, element: ElementId, port: usize) -> bool {
        self.outcomes
            .iter()
            .any(|o| o.element == element && o.port == port)
    }
}

/// Replaces every symbolic value in `state` (all stack levels) with the
/// concrete value `model` assigns it — unconstrained variables get the shared
/// deterministic default — producing the concrete state the replay executes.
pub fn concretize_exec_state(state: &ExecState, model: &Model) -> ExecState {
    let mut concrete = state.clone();
    concrete.map_values(|value| match value {
        Value::Concrete(v) => Value::Concrete(*v),
        Value::Sym { .. } => Value::Concrete(
            value
                .eval(|var| Some(model.value(var.id).unwrap_or_else(|| default_value(var))))
                .expect("total lookup always evaluates"),
        ),
    });
    concrete
}

/// One concretely-executing copy of the packet.
struct CFlow {
    state: ExecState,
    status: CStatus,
}

enum CStatus {
    Running,
    SentTo(usize),
    Dropped,
}

impl CFlow {
    fn running(state: ExecState) -> CFlow {
        CFlow {
            state,
            status: CStatus::Running,
        }
    }

    fn dropped(state: ExecState) -> CFlow {
        CFlow {
            state,
            status: CStatus::Dropped,
        }
    }
}

/// The per-replay oracle: the solver model plus the resumed fresh-variable
/// sequence.
struct ReplayCtx<'a> {
    model: &'a Model,
}

impl ReplayCtx<'_> {
    fn lookup(&self, var: SymVar) -> u64 {
        self.model
            .value(var.id)
            .unwrap_or_else(|| default_value(var))
    }

    /// Evaluates an expression to a concrete value, mirroring the engine's
    /// [`ExecState::eval_expr`] width semantics. A fresh symbolic draws the
    /// next aligned variable id and resolves it through the model.
    fn eval_expr(
        &self,
        state: &ExecState,
        expr: &Expr,
        symbols: &mut VarAllocator,
        width_hint: u16,
        prefix: &str,
    ) -> Result<u64, ExecError> {
        let value = state.eval_expr(expr, symbols, width_hint, prefix)?;
        Ok(value
            .eval(|var| Some(self.lookup(var)))
            .expect("total lookup always evaluates"))
    }

    /// Concretely decides a condition. Every operand is evaluated (no
    /// short-circuiting) so any fresh-variable allocations inside a condition
    /// stay aligned with the engine's lowering, which also visits every
    /// operand.
    fn eval_cond(
        &self,
        state: &ExecState,
        cond: &Condition,
        symbols: &mut VarAllocator,
        prefix: &str,
    ) -> Result<bool, ExecError> {
        use symnet_sefl::cond::RelOp;
        match cond {
            Condition::True => Ok(true),
            Condition::False => Ok(false),
            Condition::Cmp { op, lhs, rhs } => {
                let l = self.eval_expr(state, lhs, symbols, 64, prefix)?;
                let r = self.eval_expr(state, rhs, symbols, 64, prefix)?;
                Ok(match op {
                    RelOp::Eq => l == r,
                    RelOp::Ne => l != r,
                    RelOp::Lt => l < r,
                    RelOp::Le => l <= r,
                    RelOp::Gt => l > r,
                    RelOp::Ge => l >= r,
                })
            }
            Condition::Match {
                field,
                value,
                prefix_len,
                width,
            } => {
                let slot = state.read_field(field, prefix)?;
                let v = slot
                    .value
                    .eval(|var| Some(self.lookup(var)))
                    .expect("total lookup always evaluates");
                let shift = width.saturating_sub(*prefix_len);
                let masked = value & symnet_core::value::width_mask(*width as u16);
                Ok((v >> shift) == (masked >> shift))
            }
            Condition::And(parts) => {
                let mut all = true;
                for p in parts {
                    all &= self.eval_cond(state, p, symbols, prefix)?;
                }
                Ok(all)
            }
            Condition::Or(parts) => {
                let mut any = false;
                for p in parts {
                    any |= self.eval_cond(state, p, symbols, prefix)?;
                }
                Ok(any)
            }
            Condition::Not(inner) => Ok(!self.eval_cond(state, inner, symbols, prefix)?),
        }
    }
}

/// Executes one instruction concretely, producing the surviving flows. A
/// structural mirror of the engine's interpreter with branching resolved:
/// memory errors, failed constraints and `Abort` all drop the flow (the
/// replay never panics — a defective model is the thing under test).
fn exec_concrete(
    ctx: &ReplayCtx<'_>,
    prefix: &str,
    instr: &Instruction,
    mut state: ExecState,
    symbols: &mut VarAllocator,
) -> Vec<CFlow> {
    let simple =
        |mut state: ExecState, op: &dyn Fn(&mut ExecState) -> Result<(), ExecError>| match op(
            &mut state,
        ) {
            Ok(()) => vec![CFlow::running(state)],
            Err(_) => vec![CFlow::dropped(state)],
        };
    match instr {
        Instruction::NoOp => vec![CFlow::running(state)],
        Instruction::Block(instrs) => {
            let mut flows = vec![CFlow::running(state)];
            for i in instrs {
                let mut next = Vec::with_capacity(flows.len());
                for flow in flows {
                    match flow.status {
                        CStatus::Running => {
                            next.extend(exec_concrete(ctx, prefix, i, flow.state, symbols))
                        }
                        _ => next.push(flow),
                    }
                }
                flows = next;
            }
            flows
        }
        Instruction::Allocate {
            field,
            width,
            visibility,
        } => simple(state, &|s| {
            s.allocate_field(field, *width, *visibility, prefix)
        }),
        Instruction::Deallocate { field, width } => {
            simple(state, &|s| s.deallocate_field(field, *width, prefix))
        }
        Instruction::Assign { field, expr } => {
            let width_hint = state
                .read_field(field, prefix)
                .map(|s| s.width)
                .unwrap_or(DEFAULT_META_WIDTH);
            let value = match ctx.eval_expr(&state, expr, symbols, width_hint, prefix) {
                Ok(v) => v,
                Err(_) => return vec![CFlow::dropped(state)],
            };
            simple(state, &|s| {
                s.write_field(field, Value::Concrete(value), prefix)
            })
        }
        Instruction::CreateTag { name, value } => {
            let addr = match state.resolve_addr(value) {
                Ok(a) => a,
                Err(_) => return vec![CFlow::dropped(state)],
            };
            state.create_tag(name.clone(), addr);
            vec![CFlow::running(state)]
        }
        Instruction::DestroyTag { name } => simple(state, &|s| s.destroy_tag(name)),
        Instruction::Constrain(cond) => match ctx.eval_cond(&state, cond, symbols, prefix) {
            Ok(true) => vec![CFlow::running(state)],
            Ok(false) | Err(_) => vec![CFlow::dropped(state)],
        },
        Instruction::Fail(_) | Instruction::Abort(_) => vec![CFlow::dropped(state)],
        Instruction::If { .. } => {
            // Walk if-chains iteratively like the engine, but follow exactly
            // the branch the concrete state satisfies.
            let mut current = instr;
            loop {
                let Instruction::If {
                    cond,
                    then_branch,
                    else_branch,
                } = current
                else {
                    return exec_concrete(ctx, prefix, current, state, symbols);
                };
                match ctx.eval_cond(&state, cond, symbols, prefix) {
                    Err(_) => return vec![CFlow::dropped(state)],
                    Ok(true) => return exec_concrete(ctx, prefix, then_branch, state, symbols),
                    Ok(false) => current = else_branch,
                }
            }
        }
        Instruction::For { var, pattern, body } => {
            // Same key-snapshot semantics as the engine: visible (unprefixed)
            // keys matching the pattern, sorted and deduplicated, bound via
            // the engine's own substitution helper.
            let mut keys: Vec<String> = state
                .metadata()
                .map(|(k, _)| k.to_string())
                .filter_map(|k| {
                    let visible = k.strip_prefix(prefix).unwrap_or(&k);
                    if visible.starts_with("local:") {
                        None
                    } else if symnet_core::state::glob_match(pattern, visible) {
                        Some(visible.to_string())
                    } else {
                        None
                    }
                })
                .collect();
            keys.sort();
            keys.dedup();
            let mut flows = vec![CFlow::running(state)];
            for key in keys {
                let bound = substitute_meta(body, var, &key);
                let mut next = Vec::with_capacity(flows.len());
                for flow in flows {
                    match flow.status {
                        CStatus::Running => {
                            next.extend(exec_concrete(ctx, prefix, &bound, flow.state, symbols))
                        }
                        _ => next.push(flow),
                    }
                }
                flows = next;
            }
            flows
        }
        Instruction::Forward(port) => vec![CFlow {
            state,
            status: CStatus::SentTo(*port),
        }],
        Instruction::Fork(ports) => {
            if ports.is_empty() {
                return vec![CFlow::dropped(state)];
            }
            ports
                .iter()
                .map(|p| CFlow {
                    state: state.clone(),
                    status: CStatus::SentTo(*p),
                })
                .collect()
        }
    }
}

/// Extracts the tracked header fields of a concrete state.
fn extract_packet(ctx: &ReplayCtx<'_>, state: &ExecState) -> ConcretePacket {
    let mut packet = ConcretePacket::default();
    for (name, field) in tracked_fields() {
        if let Ok(slot) = state.read_field(&field, "") {
            let value = slot
                .value
                .eval(|var| Some(ctx.lookup(var)))
                .expect("total lookup always evaluates");
            packet.set(name, value);
        }
    }
    packet
}

/// Replays a concrete state through `network` starting at
/// `(start, input_port)`, following links until every copy of the packet is
/// delivered at an unlinked output port, dropped, or out of hop budget.
///
/// * `state` is the (already concretized) injected state — see
///   [`concretize_exec_state`];
/// * `next_var` is the first fresh variable id (the injected state's
///   `max_symbol_id() + 1`);
/// * `model` resolves symbolic draws, exactly as the symbolic side's
///   concretization does.
pub fn replay_network(
    network: &Network,
    start: ElementId,
    input_port: usize,
    state: ExecState,
    model: &Model,
    next_var: u64,
    max_hops: usize,
) -> Replay {
    let ctx = ReplayCtx { model };
    let mut replay = Replay::default();
    // (element, input port, state, allocator, hops)
    let mut queue = vec![(
        start,
        input_port,
        state,
        VarAllocator::starting_at(next_var),
        0usize,
    )];
    while let Some((element, in_port, state, mut symbols, hops)) = queue.pop() {
        let program = network.element(element);
        let prefix = local_prefix(network, element);
        let input_code = program.code_for_input(in_port);
        let flows = exec_concrete(&ctx, &prefix, &input_code, state, &mut symbols);
        for flow in flows {
            match flow.status {
                CStatus::Running | CStatus::Dropped => replay.dropped += 1,
                CStatus::SentTo(out_port) => {
                    if out_port >= program.output_count {
                        replay.dropped += 1;
                        continue;
                    }
                    let output_code = program.code_for_output(out_port);
                    // Each forked copy continues with its own allocator clone,
                    // mirroring how the engine snapshots its allocator per
                    // spawned child.
                    let mut out_symbols = symbols.clone();
                    let out_flows =
                        exec_concrete(&ctx, &prefix, &output_code, flow.state, &mut out_symbols);
                    for out_flow in out_flows {
                        match out_flow.status {
                            CStatus::Dropped | CStatus::SentTo(_) => replay.dropped += 1,
                            CStatus::Running => match network.link_from(element, out_port) {
                                None => replay.outcomes.push(ReplayOutcome {
                                    element,
                                    port: out_port,
                                    packet: extract_packet(&ctx, &out_flow.state),
                                }),
                                Some((next_element, next_port)) => {
                                    if hops + 1 > max_hops {
                                        replay.dropped += 1;
                                    } else {
                                        queue.push((
                                            next_element,
                                            next_port,
                                            out_flow.state,
                                            out_symbols.clone(),
                                            hops + 1,
                                        ));
                                    }
                                }
                            },
                        }
                    }
                }
            }
        }
    }
    replay
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::{ExecConfig, SymNet};
    use symnet_models::acl::{acl_filter, AclAction, AclRule, AclTable};
    use symnet_sefl::packet::symbolic_l3_tcp_packet;
    use symnet_solver::{Model, Solver};

    /// The replay interpreter covers `acl_filter`: the compiled
    /// first-match-wins if-chain takes exactly the branch the concrete
    /// packet satisfies. A permit is delivered at the filter's output and a
    /// shadowing deny (port 22 above the permit-any tail) drops the packet —
    /// in agreement with the symbolic side path-for-path.
    #[test]
    fn replay_covers_acl_filter() {
        let mut table = AclTable::new();
        table.push(AclRule {
            src: None,
            dst: None,
            proto: None,
            dst_port: Some(22),
            action: AclAction::Deny,
        });
        table.push(AclRule::permit_any());

        let mut network = Network::new();
        let filter = network.add_element(acl_filter("gate", &table));
        let engine = SymNet::with_config(network.clone(), ExecConfig::default().with_threads(1));
        let report = engine.inject(filter, 0, &symbolic_l3_tcp_packet());
        let next_var = report.injected.max_symbol_id().map_or(0, |id| id + 1);

        let mut solver = Solver::default();
        let mut delivered = 0usize;
        for path in report.delivered() {
            let model = solver
                .model(&path.state.path_condition())
                .expect("delivered ACL paths are satisfiable");
            let injected = concretize_exec_state(&report.injected, &model);
            let replay = replay_network(&network, filter, 0, injected, &model, next_var, 8);
            assert!(
                replay.delivered_at(filter, 0),
                "a permitted concrete packet must clear the compiled if-chain"
            );
            let observed = &replay.outcomes[0].packet;
            assert_ne!(
                observed.fields.get("TcpDst"),
                Some(&22),
                "a packet to the denied port must never be delivered"
            );
            delivered += 1;
        }
        assert!(delivered > 0, "the permit-any tail must deliver traffic");

        // The denied branch: pin TcpDst to 22 and replay — every copy drops.
        let denied_model: Model = report
            .delivered()
            .next()
            .map(|_| Model::new())
            .expect("at least one delivered path");
        let mut pinned = concretize_exec_state(&report.injected, &denied_model);
        pinned
            .write_field(
                &symnet_sefl::fields::tcp_dst().field(),
                Value::Concrete(22),
                "",
            )
            .expect("tcp_dst present on the L3+TCP layout");
        let replay = replay_network(&network, filter, 0, pinned, &denied_model, next_var, 8);
        assert!(
            replay.outcomes.is_empty() && replay.dropped > 0,
            "a dst-port-22 packet must be dropped by the shadowing deny"
        );
    }
}
