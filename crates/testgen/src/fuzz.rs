//! Seeded differential fuzzing: mutated scenarios, a symbolic-vs-concrete
//! oracle, and minimized failure reports.
//!
//! One fuzz *case* is a pure function of `(generator, case_seed)`:
//!
//! 1. a [`GeneratorKind`] builds a [`FuzzScenario`] — a network, an identical
//!    reference twin and the registered rule tables;
//! 2. a seeded mutation layer perturbs the scenario through the typed
//!    [`Delta`] vocabulary (MAC learn/age, route add/withdraw, NAT rebinds,
//!    positional ACL inserts/removes), semantics-preserving table shuffles
//!    and link rewires — every mutation is published into **both** networks,
//!    so they stay behaviorally identical;
//! 3. the differential oracle symbolically explores the mutated network,
//!    concretizes every delivered path with the solver model, replays the
//!    concrete packet through the reference network's element programs
//!    ([`crate::replay`]) and demands that some replayed copy arrives at the
//!    same element/port with the same tracked header fields.
//!
//! Any divergence produces a [`FuzzFailure`] carrying the case seed (rerunning
//! [`run_case`] with it reproduces the failure exactly) and a greedily
//! minimized mutation list. The [`canary_scenario`] plants a real off-by-one in
//! a TTL-decrement model to prove the oracle catches genuine model bugs.

use std::collections::BTreeMap;
use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use symnet_core::engine::{ExecConfig, PathStatus, SymNet};
use symnet_core::network::{ElementId, Network};
use symnet_models::acl::{AclAction, AclRule};
use symnet_models::delta::{Delta, RuleTables, TableView};
use symnet_models::nat::NatConfig;
use symnet_models::router::{router_egress_with_ttl, Fib};
use symnet_sefl::fields::ip_ttl;
use symnet_sefl::packet::symbolic_l3_tcp_packet;
use symnet_sefl::{Condition, ElementProgram, Expr, Instruction};
use symnet_solver::Solver;

use crate::generators::{FuzzScenario, GeneratorConfig, GeneratorKind};
use crate::replay::{concretize_exec_state, replay_network};
use crate::{concretize_state, ConcretePacket};

/// One perturbation of a scenario. Applied to the network under test *and*
/// its reference twin, so a mutation never explains a differential failure by
/// itself — only a model/engine bug can.
#[derive(Clone, Debug)]
pub enum Mutation {
    /// A typed control-plane event routed through [`RuleTables::apply_with`].
    Delta(Delta),
    /// A semantics-preserving seeded permutation of an element's table
    /// entries (recompiles the program with a different syntactic shape).
    ShuffleTable {
        /// The element whose table is permuted.
        element: ElementId,
        /// Shuffle seed.
        seed: u64,
    },
    /// Swaps the destinations of two links (a seeded mis-cabling).
    RewireSwap {
        /// First link, as `(element, output port)`.
        a: (ElementId, usize),
        /// Second link, as `(element, output port)`.
        b: (ElementId, usize),
    },
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mutation::Delta(delta) => write!(f, "{delta:?}"),
            Mutation::ShuffleTable { element, seed } => {
                write!(f, "ShuffleTable {{ element: {element}, seed: {seed:#x} }}")
            }
            Mutation::RewireSwap { a, b } => {
                write!(f, "RewireSwap {{ {}#{} <-> {}#{} }}", a.0, a.1, b.0, b.1)
            }
        }
    }
}

/// Campaign configuration.
#[derive(Clone, Copy, Debug)]
pub struct FuzzConfig {
    /// Campaign seed; every case seed derives from it.
    pub seed: u64,
    /// Number of mutated scenarios to run (rotating over
    /// [`GeneratorKind::ALL`]).
    pub iters: usize,
    /// Sizing knobs passed to every generator (its `seed` field is replaced
    /// by the per-case seed).
    pub generator: GeneratorConfig,
    /// Maximum mutations drawn per case (the actual count is seeded in
    /// `0..=max_mutations`).
    pub max_mutations: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x5EF1_D1FF,
            iters: 50,
            generator: GeneratorConfig::default(),
            max_mutations: 3,
        }
    }
}

/// A reproducible differential failure.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Generator family name.
    pub generator: &'static str,
    /// The case seed: `run_case(kind, case_seed, &config)` reproduces the
    /// failure deterministically.
    pub case_seed: u64,
    /// Every mutation the failing case applied, rendered for the report.
    pub mutations: Vec<String>,
    /// The greedily minimized subset of mutations that still fails (empty if
    /// the unmutated scenario already diverges — a pure model/engine bug).
    pub minimized: Vec<String>,
    /// What diverged.
    pub detail: String,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "differential failure in {} (case seed {:#x}):",
            self.generator, self.case_seed
        )?;
        writeln!(f, "  {}", self.detail)?;
        writeln!(f, "  mutations applied: {}", self.mutations.len())?;
        for m in &self.mutations {
            writeln!(f, "    {m}")?;
        }
        writeln!(f, "  minimized to: {}", self.minimized.len())?;
        for m in &self.minimized {
            writeln!(f, "    {m}")?;
        }
        write!(
            f,
            "  reproduce with: paper -- fuzz --seed {:#x} --iters 1 (or run_case with the case seed)",
            self.case_seed
        )
    }
}

/// Summary of one fuzz campaign.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Scenarios executed.
    pub cases: usize,
    /// Delivered symbolic paths that were concretized and replayed.
    pub paths_checked: usize,
    /// Mutations that actually changed a scenario (no-op deltas excluded).
    pub mutations_applied: usize,
    /// Cases per generator family.
    pub per_generator: BTreeMap<&'static str, usize>,
    /// Every differential failure, already minimized.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzReport {
    /// True if every case agreed symbolically and concretely.
    pub fn is_clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The outcome of one fuzz case.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Delivered paths checked against the replay.
    pub paths_checked: usize,
    /// Mutations that changed the scenario.
    pub mutations_applied: usize,
    /// The divergence, if the case failed.
    pub failure: Option<FuzzFailure>,
}

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Draws a seeded mutation batch against a pristine scenario. Purely a
/// function of the RNG state and the scenario, so minimization can rebuild
/// the scenario and re-apply any subset.
fn generate_mutations(scenario: &FuzzScenario, rng: &mut StdRng, max: usize) -> Vec<Mutation> {
    let registered: Vec<ElementId> = scenario.tables.registered().map(|(id, _, _)| id).collect();
    let links: Vec<(ElementId, usize)> = scenario.network.links().map(|(from, _)| from).collect();
    let count = rng.gen_range(0..max + 1);
    let mut mutations = Vec::with_capacity(count);
    for _ in 0..count {
        // Rewires are rarer than typed deltas (they reshape the topology
        // wholesale); table-less scenarios fall back to rewires entirely.
        let want_rewire =
            links.len() >= 2 && (registered.is_empty() || rng.gen_range(0..4u32) == 0);
        if want_rewire {
            let i = rng.gen_range(0..links.len());
            let j = rng.gen_range(0..links.len());
            if i != j {
                mutations.push(Mutation::RewireSwap {
                    a: links[i],
                    b: links[j],
                });
            }
            continue;
        }
        if registered.is_empty() {
            continue;
        }
        let element = registered[rng.gen_range(0..registered.len())];
        if rng.gen_range(0..5u32) == 0 {
            mutations.push(Mutation::ShuffleTable {
                element,
                seed: rng.gen(),
            });
            continue;
        }
        let Some(view) = scenario.tables.view(element) else {
            continue;
        };
        let delta = match view {
            TableView::Switch(table) => {
                if !table.entries.is_empty() && rng.gen::<bool>() {
                    let entry = &table.entries[rng.gen_range(0..table.entries.len())];
                    Delta::MacAge {
                        element,
                        mac: entry.mac,
                        vlan: entry.vlan,
                    }
                } else {
                    Delta::MacLearn {
                        element,
                        mac: rng.gen::<u64>() & 0xffff_ffff_ffff,
                        vlan: None,
                        port: rng.gen_range(0..table.port_count.max(1)),
                    }
                }
            }
            TableView::Router(fib) => {
                if !fib.entries.is_empty() && rng.gen::<bool>() {
                    let entry = &fib.entries[rng.gen_range(0..fib.entries.len())];
                    Delta::RouteWithdraw {
                        element,
                        prefix: entry.prefix,
                        prefix_len: entry.prefix_len,
                    }
                } else {
                    let wide = rng.gen::<bool>();
                    Delta::RouteAdd {
                        element,
                        prefix: rng.gen::<u32>() & if wide { 0xffff_0000 } else { 0xffff_ff00 },
                        prefix_len: if wide { 16 } else { 24 },
                        port: rng.gen_range(0..fib.port_count.max(1)),
                    }
                }
            }
            TableView::Nat(config) => Delta::NatRebind {
                element,
                config: NatConfig {
                    public_ip: config.public_ip ^ (1 + rng.gen::<u32>() % 255),
                    port_low: 1024 + rng.gen::<u16>() % 4096,
                    port_high: 50_000 + rng.gen::<u16>() % 15_000,
                },
            },
            TableView::Acl(table) => {
                if !table.rules.is_empty() && rng.gen::<bool>() {
                    Delta::AclRemove {
                        element,
                        index: rng.gen_range(0..table.rules.len()),
                    }
                } else {
                    // A positional insert anywhere in the list (including one
                    // past the end) — a deny landing above a permit shadows
                    // it, which is the shadowing semantics the replay oracle
                    // must reproduce.
                    let h = rng.gen::<u64>();
                    Delta::AclInsert {
                        element,
                        index: rng.gen_range(0..table.rules.len() + 1),
                        rule: AclRule {
                            src: (h & 1 != 0).then_some(((h >> 8) as u32 & 0xffff_0000, 16)),
                            dst: (h & 2 != 0)
                                .then_some((0x0a00_0000 | ((h >> 24) as u32 & 0x00ff_ff00), 24)),
                            proto: (h & 4 != 0).then_some(6),
                            dst_port: (h & 8 != 0).then_some((h >> 40) & 0xffff),
                            action: if h & 16 != 0 {
                                AclAction::Deny
                            } else {
                                AclAction::Permit
                            },
                        },
                    }
                }
            }
        };
        mutations.push(Mutation::Delta(delta));
    }
    mutations
}

/// Applies one mutation to both networks of a scenario. Returns `true` if the
/// scenario actually changed (no-op deltas and unluckily-identical shuffles
/// return `false`).
pub fn apply_mutation(scenario: &mut FuzzScenario, mutation: &Mutation) -> bool {
    let FuzzScenario {
        network,
        reference,
        tables,
        ..
    } = scenario;
    match mutation {
        Mutation::Delta(delta) => tables
            .apply_with(delta, |element, program| {
                network.replace_element(element, program.clone());
                reference.replace_element(element, program);
            })
            .map(|published| published.is_some())
            .unwrap_or(false),
        Mutation::ShuffleTable { element, seed } => tables
            .shuffle_with(*element, *seed, |element, program| {
                network.replace_element(element, program.clone());
                reference.replace_element(element, program);
            })
            .map(|published| published.is_some())
            .unwrap_or(false),
        Mutation::RewireSwap { a, b } => {
            if a == b {
                return false;
            }
            let (Some(dest_a), Some(dest_b)) =
                (network.link_from(a.0, a.1), network.link_from(b.0, b.1))
            else {
                return false;
            };
            if dest_a == dest_b {
                return false;
            }
            for net in [&mut *network, &mut *reference] {
                net.rewire_link(a.0, a.1, dest_b.0, dest_b.1);
                net.rewire_link(b.0, b.1, dest_a.0, dest_a.1);
            }
            true
        }
    }
}

/// True if every field present in *both* packets has the same value (the
/// replay may track fields a symbolic path left unallocated, and vice versa).
fn packets_agree(expected: &ConcretePacket, observed: &ConcretePacket) -> Option<String> {
    for (name, expected_value) in &expected.fields {
        if let Some(observed_value) = observed.fields.get(name) {
            if observed_value != expected_value {
                return Some(format!(
                    "{name}: symbolic path says {expected_value:#x}, replay says {observed_value:#x}"
                ));
            }
        }
    }
    None
}

/// The differential oracle: explores `scenario.network` symbolically, then
/// concretizes and replays every delivered path through
/// `scenario.reference`. `Ok(paths_checked)` or the first divergence.
pub fn check_scenario(scenario: &FuzzScenario) -> Result<usize, String> {
    let engine = SymNet::with_config(
        scenario.network.clone(),
        ExecConfig {
            max_hops: scenario.max_hops,
            threads: 1,
            ..ExecConfig::default()
        },
    );
    let report = engine
        .try_inject(scenario.inject_at, scenario.inject_port, &scenario.packet)
        .map_err(|e| format!("symbolic engine failed on {}: {e}", scenario.name))?;
    let next_var = report.injected.max_symbol_id().map_or(0, |id| id + 1);
    let mut solver = Solver::default();
    let mut checked = 0usize;
    for path in report.delivered() {
        let PathStatus::Delivered { element, port } = path.status else {
            continue;
        };
        // Cex-aware witness lookup: with a persistent cache active, a cached
        // (re-verified) model for this conjunct set — or a superset of it —
        // skips the solve entirely; without one this is a plain `check_path`.
        let Some(model) = solver.model_path_cached(path.state.path_cond()) else {
            return Err(format!(
                "path {} of {} was delivered at {element}#{port} but its path condition is unsatisfiable",
                path.id, scenario.name
            ));
        };
        let expected = concretize_state(&path.state, &model).map_err(|e| {
            format!(
                "path {} of {}: concretizing the final state failed: {e:?}",
                path.id, scenario.name
            )
        })?;
        let injected = concretize_exec_state(&report.injected, &model);
        let replay = replay_network(
            &scenario.reference,
            scenario.inject_at,
            scenario.inject_port,
            injected,
            &model,
            next_var,
            scenario.max_hops,
        );
        let candidates: Vec<_> = replay
            .outcomes
            .iter()
            .filter(|o| o.element == element && o.port == port)
            .collect();
        if candidates.is_empty() {
            let arrived: Vec<String> = replay
                .outcomes
                .iter()
                .map(|o| format!("{}#{}", o.element, o.port))
                .collect();
            return Err(format!(
                "path {} of {}: symbolic path delivered at {element}#{port}, but the concrete \
                 replay delivered no copy there (replay outcomes: [{}], {} dropped)",
                path.id,
                scenario.name,
                arrived.join(", "),
                replay.dropped
            ));
        }
        let agreed = candidates
            .iter()
            .any(|o| packets_agree(&expected, &o.packet).is_none());
        if !agreed {
            // Report the first field divergence of the first candidate.
            let detail = packets_agree(&expected, &candidates[0].packet)
                .unwrap_or_else(|| "unknown field divergence".to_string());
            return Err(format!(
                "path {} of {} at {element}#{port}: header mismatch — {detail}",
                path.id, scenario.name
            ));
        }
        checked += 1;
    }
    Ok(checked)
}

/// Greedy delta-debugging: tries to remove each element while the predicate
/// keeps failing, yielding a (locally) minimal failing subset.
pub fn minimize<T: Clone>(items: &[T], mut still_fails: impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut kept: Vec<T> = items.to_vec();
    let mut i = 0;
    while i < kept.len() {
        let mut candidate = kept.clone();
        candidate.remove(i);
        if still_fails(&candidate) {
            kept = candidate;
        } else {
            i += 1;
        }
    }
    kept
}

/// Runs one fuzz case: builds `kind`'s scenario from `case_seed`, draws and
/// applies a seeded mutation batch, and checks the differential oracle.
/// Deterministic: the same `(kind, case_seed, config)` reproduces the same
/// scenario, mutations and verdict.
pub fn run_case(kind: GeneratorKind, case_seed: u64, config: &FuzzConfig) -> CaseResult {
    let generator_config = GeneratorConfig {
        seed: case_seed,
        ..config.generator
    };
    let build = || kind.build(&generator_config);
    let mut scenario = build();
    let mut rng = StdRng::seed_from_u64(splitmix64(case_seed ^ 0x4D55_5441_5445)); // "MUTATE"
    let mutations = generate_mutations(&scenario, &mut rng, config.max_mutations);
    let mut applied = 0usize;
    for mutation in &mutations {
        if apply_mutation(&mut scenario, mutation) {
            applied += 1;
        }
    }
    match check_scenario(&scenario) {
        Ok(paths) => CaseResult {
            paths_checked: paths,
            mutations_applied: applied,
            failure: None,
        },
        Err(detail) => {
            let minimized = minimize(&mutations, |subset| {
                let mut candidate = build();
                for mutation in subset {
                    apply_mutation(&mut candidate, mutation);
                }
                check_scenario(&candidate).is_err()
            });
            CaseResult {
                paths_checked: 0,
                mutations_applied: applied,
                failure: Some(FuzzFailure {
                    generator: kind.name(),
                    case_seed,
                    mutations: mutations.iter().map(|m| m.to_string()).collect(),
                    minimized: minimized.iter().map(|m| m.to_string()).collect(),
                    detail,
                }),
            }
        }
    }
}

/// Runs a fuzz campaign: `config.iters` cases rotating over every generator
/// family, each seeded from the campaign seed.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport::default();
    for i in 0..config.iters {
        let kind = GeneratorKind::ALL[i % GeneratorKind::ALL.len()];
        let case_seed = splitmix64(config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = run_case(kind, case_seed, config);
        report.cases += 1;
        report.paths_checked += result.paths_checked;
        report.mutations_applied += result.mutations_applied;
        *report.per_generator.entry(kind.name()).or_insert(0) += 1;
        if let Some(failure) = result.failure {
            report.failures.push(failure);
        }
    }
    report
}

/// A TTL-decrement router with a deliberate off-by-one: it burns **two** TTL
/// units per hop instead of one, while advertising the exact same routes as
/// [`router_egress_with_ttl`]. The forwarding behavior is identical; only the
/// emitted TTL diverges — precisely the class of header bug the differential
/// oracle exists to catch.
fn buggy_ttl_router(name: &str, fib: &Fib) -> ElementProgram {
    let ports = fib.ports_in_use();
    let mut program = ElementProgram::new(name, fib.port_count, fib.port_count)
        .with_any_input_code(Instruction::block(vec![
            Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
            // The planted bug: decrement by 2 instead of 1.
            Instruction::assign(ip_ttl().field(), Expr::reference(ip_ttl().field()).minus(2)),
            Instruction::fork(ports),
        ]));
    for (port, cond) in fib.port_conditions() {
        program.set_output_code(port, Instruction::constrain(cond));
    }
    program
}

/// The canary scenario: a two-router chain whose *model under test* uses a
/// buggy TTL router (decrements by 2) for the first hop while the reference
/// twin keeps the correct `router_egress_with_ttl`. Everything else —
/// topology, routes, packet — is identical, so any reported failure is the
/// planted bug.
pub fn canary_scenario() -> FuzzScenario {
    let mut fib0 = Fib::new(2);
    fib0.add(0x0a00_0000, 8, 0).add(0, 0, 1);
    let mut fib1 = Fib::new(2);
    fib1.add(0, 0, 1);

    let mut network = Network::new();
    let first = network.add_element(buggy_ttl_router("hop0", &fib0));
    let second = network.add_element(router_egress_with_ttl("hop1", &fib1));
    network.add_link(first, 1, second, 0);

    let mut reference = Network::new();
    let ref_first = reference.add_element(router_egress_with_ttl("hop0", &fib0));
    let ref_second = reference.add_element(router_egress_with_ttl("hop1", &fib1));
    assert_eq!((first, second), (ref_first, ref_second));
    reference.add_link(ref_first, 1, ref_second, 0);

    FuzzScenario {
        name: "canary(ttl double-decrement)".to_string(),
        network,
        reference,
        tables: RuleTables::new(),
        inject_at: first,
        inject_port: 0,
        packet: symbolic_l3_tcp_packet(),
        max_hops: 8,
    }
}

/// Runs the canary: the oracle **must** report the planted TTL bug.
/// `Ok(failure)` carries the (seed-reproducible, trivially minimized) report;
/// `Err` means the oracle is blind and the fuzzer cannot be trusted.
pub fn run_canary() -> Result<FuzzFailure, String> {
    let scenario = canary_scenario();
    match check_scenario(&scenario) {
        Err(detail) => Ok(FuzzFailure {
            generator: "canary",
            case_seed: 0,
            mutations: Vec::new(),
            minimized: Vec::new(),
            detail,
        }),
        Ok(paths) => Err(format!(
            "canary not detected: the oracle accepted {paths} delivered paths from a model \
             that double-decrements TTL"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimize_finds_minimal_failing_subset() {
        // Fails iff the subset contains both 2 and 5.
        let items = vec![1, 2, 3, 4, 5, 6];
        let minimal = minimize(&items, |subset| subset.contains(&2) && subset.contains(&5));
        assert_eq!(minimal, vec![2, 5]);
    }

    #[test]
    fn minimize_keeps_empty_when_failure_is_unconditional() {
        let items = vec![1, 2, 3];
        let minimal = minimize(&items, |_| true);
        assert!(minimal.is_empty());
    }
}
