//! Tunnels, MTU filters and encryption (§2 and §7 of the paper).
//!
//! IP-in-IP encapsulation prepends a new IPv4 header in front of the current
//! one by moving the `L3` tag 160 bits to the left and allocating the outer
//! header there (Figure 6, bottom packet); the inner header stays allocated
//! but becomes unreachable through the layer tags, and the `L4` tag is
//! destroyed so that any premature access to transport fields fails the path.
//! Decapsulation deallocates the outer header and restores the tags.
//!
//! Encryption replaces the TCP payload with a fresh symbolic value (no box can
//! recover the plaintext), and decryption with the matching key deallocates
//! the ciphertext, which uncovers the original payload on the value stack.

use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::field::{FieldRef, HeaderAddr};
use symnet_sefl::fields::{
    ip_dst, ip_length, ip_proto, ip_src, ipproto, ipv4_fields, tcp_payload, IPV4_HEADER_BITS,
    TAG_L3, TAG_L4,
};
use symnet_sefl::{ElementProgram, Instruction};

/// Bit address the `L4` tag is parked at while the packet is encapsulated —
/// far away from any real allocation, so transport-field accesses fail.
const L4_POISON: i64 = -(1 << 40);

/// IP-in-IP encapsulation endpoint: wraps the packet in an outer IPv4 header
/// with the given tunnel source and destination addresses.
pub fn ipip_encap(name: &str, tunnel_src: u32, tunnel_dst: u32) -> ElementProgram {
    let mut code = vec![
        // Remember the inner total length before the tags move.
        Instruction::allocate_local_meta("inner-length", 16),
        Instruction::assign(
            FieldRef::meta("inner-length"),
            Expr::reference(ip_length().field()),
        ),
        Instruction::allocate_local_meta("inner-proto", 8),
        Instruction::assign(
            FieldRef::meta("inner-proto"),
            Expr::reference(ip_proto().field()),
        ),
        // Move the L3 tag one IPv4 header to the left; the inner header stays
        // allocated underneath.
        Instruction::create_tag(TAG_L3, HeaderAddr::tag_offset(TAG_L3, -IPV4_HEADER_BITS)),
        // The transport header of the inner packet is no longer addressable:
        // the L4 tag is re-pointed at an address where nothing is allocated,
        // so any premature access fails the path (same effect as destroying
        // the tag, but it also composes with nested tunnels where the tag may
        // already have been hidden by an outer encapsulation).
        Instruction::create_tag(TAG_L4, HeaderAddr::absolute(L4_POISON)),
    ];
    // Allocate and fill the outer IPv4 header.
    for f in ipv4_fields() {
        code.push(Instruction::allocate_header(f.addr.clone(), f.width));
    }
    code.extend([
        Instruction::assign(ip_src().field(), Expr::constant(tunnel_src as u64)),
        Instruction::assign(ip_dst().field(), Expr::constant(tunnel_dst as u64)),
        Instruction::assign(ip_proto().field(), Expr::constant(ipproto::IPIP)),
        // Outer length = inner length + 20 bytes.
        Instruction::assign(
            ip_length().field(),
            Expr::reference(FieldRef::meta("inner-length")).plus(20),
        ),
        Instruction::forward(0),
    ]);
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(code))
}

/// IP-in-IP decapsulation endpoint: checks the outer header is addressed to
/// this endpoint, strips it and restores the layer tags.
pub fn ipip_decap(name: &str, tunnel_dst: u32) -> ElementProgram {
    let mut code = vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::IPIP)),
        Instruction::constrain(Condition::eq(ip_dst().field(), tunnel_dst as u64)),
    ];
    // Deallocate the outer IPv4 header fields (checked widths).
    for f in ipv4_fields() {
        code.push(Instruction::deallocate_checked(
            FieldRef::Header(f.addr.clone()),
            f.width,
        ));
    }
    code.extend([
        // Move the L3 tag back over the inner header and restore L4.
        Instruction::create_tag(TAG_L3, HeaderAddr::tag_offset(TAG_L3, IPV4_HEADER_BITS)),
        Instruction::create_tag(TAG_L4, HeaderAddr::tag_offset(TAG_L3, IPV4_HEADER_BITS)),
        Instruction::forward(0),
    ]);
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(code))
}

/// A link/router MTU filter: drops packets whose IP total length exceeds
/// `mtu_bytes` (the §8.4 MTU-blackhole scenario uses 1536).
pub fn mtu_filter(name: &str, mtu_bytes: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::constrain(Condition::lt(ip_length().field(), mtu_bytes)),
        Instruction::forward(0),
    ]))
}

/// Encryption endpoint (§7 "Modeling Encryption"): records the key in
/// metadata and replaces the TCP payload with a fresh, unconstrained symbolic
/// value, so no downstream box can read the original contents.
pub fn encrypt(name: &str, key: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::allocate_meta("Key", 64),
        Instruction::assign(FieldRef::meta("Key"), Expr::constant(key)),
        Instruction::allocate_header(tcp_payload().addr.clone(), tcp_payload().width),
        Instruction::assign(tcp_payload().field(), Expr::symbolic()),
        Instruction::forward(0),
    ]))
}

/// Decryption endpoint: proceeds only if the key matches, then deallocates the
/// ciphertext, which uncovers the original payload value.
pub fn decrypt(name: &str, key: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::constrain(Condition::eq(FieldRef::meta("Key"), key)),
        Instruction::deallocate(tcp_payload().field()),
        Instruction::forward(0),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::verify::{field_invariant, Tristate};
    use symnet_core::DropReason;
    use symnet_sefl::fields::tcp_dst;
    use symnet_sefl::packet::symbolic_l3_tcp_packet;

    #[test]
    fn encap_then_decap_restores_transport_access() {
        let mut net = Network::new();
        let e = net.add_element(ipip_encap("E1", 0x0a000001, 0x0a000002));
        let d = net.add_element(ipip_decap("D1", 0x0a000002));
        let probe = net.add_element(ElementProgram::new("probe", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::ge(tcp_dst().field(), 0u64)),
                Instruction::forward(0),
            ]),
        ));
        net.add_link(e, 0, d, 0);
        net.add_link(d, 0, probe, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(e, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        // Every original header field is invariant across the tunnel (§2).
        for field in [ip_src().field(), ip_dst().field(), tcp_dst().field()] {
            assert_eq!(
                field_invariant(&report.injected, path, &field),
                Ok(Tristate::Always),
                "{field} must be invariant across the tunnel"
            );
        }
    }

    #[test]
    fn transport_fields_are_unreachable_inside_the_tunnel() {
        // A middle box that reads TCP fields between encap and decap fails.
        let mut net = Network::new();
        let e = net.add_element(ipip_encap("E1", 1, 2));
        let snoop = net.add_element(ElementProgram::new("snoop", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
                Instruction::forward(0),
            ]),
        ));
        net.add_link(e, 0, snoop, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(e, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
        assert!(report.paths.iter().any(|p| matches!(
            &p.status,
            symnet_core::engine::PathStatus::Dropped {
                reason: DropReason::Memory(_),
                ..
            }
        )));
    }

    #[test]
    fn decap_rejects_foreign_tunnel_destinations() {
        let mut net = Network::new();
        let e = net.add_element(ipip_encap("E1", 1, 2));
        let d = net.add_element(ipip_decap("D-other", 99));
        net.add_link(e, 0, d, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(e, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn outer_length_constraint_propagates_through_mtu_filter() {
        // §8.4: with IP-in-IP encapsulation in front of a 1536-byte MTU link,
        // the inner packet must be < 1516 bytes.
        let mut net = Network::new();
        let e = net.add_element(ipip_encap("E1", 1, 2));
        let m = net.add_element(mtu_filter("link", 1536));
        let d = net.add_element(ipip_decap("D1", 2));
        net.add_link(e, 0, m, 0);
        net.add_link(m, 0, d, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(e, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path, &ip_length().field()).unwrap();
        assert_eq!(allowed.max(), Some(1515));
    }

    #[test]
    fn mtu_filter_without_tunnel_allows_up_to_1535() {
        let mut net = Network::new();
        let m = net.add_element(mtu_filter("link", 1536));
        let engine = SymNet::new(net);
        let report = engine.inject(m, 0, &symbolic_l3_tcp_packet());
        let path = report.delivered().next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path, &ip_length().field()).unwrap();
        assert_eq!(allowed.max(), Some(1535));
    }

    #[test]
    fn encryption_hides_payload_until_matching_decryption() {
        let mut net = Network::new();
        let enc = net.add_element(encrypt("enc", 0xdeadbeef));
        let dec = net.add_element(decrypt("dec", 0xdeadbeef));
        net.add_link(enc, 0, dec, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(enc, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        // After decryption the original payload is visible again.
        assert_eq!(
            field_invariant(&report.injected, path, &tcp_payload().field()),
            Ok(Tristate::Always)
        );

        // A single encryption endpoint alone leaves the payload opaque: the
        // delivered value is a fresh symbol unrelated to the original.
        let mut net = Network::new();
        let enc = net.add_element(encrypt("enc", 0xdeadbeef));
        let engine = SymNet::new(net);
        let report = engine.inject(enc, 0, &symbolic_l3_tcp_packet());
        let path = report.delivered().next().unwrap();
        assert_eq!(
            field_invariant(&report.injected, path, &tcp_payload().field()),
            Ok(Tristate::Sometimes)
        );
    }

    #[test]
    fn decryption_with_wrong_key_fails() {
        let mut net = Network::new();
        let enc = net.add_element(encrypt("enc", 1));
        let dec = net.add_element(decrypt("dec", 2));
        net.add_link(enc, 0, dec, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(enc, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
    }
}
