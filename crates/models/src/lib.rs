//! # symnet-models
//!
//! Ready-made SEFL models of network elements (§7 of the SymNet paper) plus
//! the evaluation scenarios of §2, §8.4 and §8.5.
//!
//! * [`switch`] — learning-switch models generated from MAC tables in the
//!   three variants evaluated in Figure 8: *basic* (one branch per entry),
//!   *ingress* (grouped per output port, filtering on input) and *egress*
//!   (fork to every port, per-port constraints) — the egress model has both
//!   optimal branching and a minimal constraint count.
//! * [`router`] — longest-prefix-match IP routers generated from forwarding
//!   tables, again in basic/ingress/egress variants, using the `!a & b`
//!   exclusion trick of §7 to keep the branching factor at the number of
//!   links.
//! * [`nat`] — the stateful NAT of §7, which stores the per-flow mapping in
//!   packet metadata so that verification does not explode with middlebox
//!   state, and the stateful firewall built with the same technique.
//! * [`tunnel`] — IP-in-IP encapsulation/decapsulation, MTU filters and the
//!   encryption/decryption models of §7.
//! * [`tcp_options`] — the CISCO ASA TCP-options parsing model of Figure 7,
//!   operating on pre-parsed `OPTx`/`SIZEx`/`VALx` metadata.
//! * [`click`] — a library of Click modular-router elements (IPMirror,
//!   DecIPTTL, HostEtherFilter, IPClassifier, EtherEncap, VLAN handling, ...),
//!   including the deliberately buggy variants that §8.3's automated testing
//!   catches.
//! * [`asa`] — the Cisco ASA 5510 pipeline of §7.2 assembled from the pieces
//!   above.
//! * [`scenarios`] — topology builders for the §2 tunnel chain, the §8.4
//!   Split-TCP deployment, the §8.5 CS department network and the synthetic
//!   Stanford-like backbone used for the Table 3 comparison.
//! * [`acl`] — first-match-wins access-control lists compiled into filter
//!   elements, editable line by line.
//! * [`delta`] — the typed control-plane [`delta::Delta`] vocabulary (MAC
//!   learn/age, route add/withdraw, NAT rebind, ACL edits) and the
//!   [`delta::RuleTables`] driver that recompiles element programs and feeds
//!   them to the resident [`symnet_core::VerifyService`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod asa;
pub mod click;
pub mod delta;
pub mod nat;
pub mod router;
pub mod scenarios;
pub mod switch;
pub mod tcp_options;
pub mod tunnel;

pub use acl::{AclAction, AclRule, AclTable};
pub use delta::{Delta, DeltaError, RouterModel, RuleTables, SwitchModel};
pub use router::{Fib, FibEntry};
pub use switch::{MacTable, MacTableEntry};
