//! A library of Click modular-router elements modeled in SEFL (§7.1).
//!
//! The paper models "a large subset of the elements of the Click modular
//! router" both to validate that SEFL is expressive enough and to compose
//! larger boxes (firewalls, NATs, the ASA). The elements here are the ones the
//! evaluation exercises, plus the deliberately buggy variants that the
//! automated-testing framework of §8.3 catches (`*_buggy`).

use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields::{
    ether_dst, ether_src, ether_type, ethernet_fields, ethertype, ip_dst, ip_src, ip_ttl, tcp_dst,
    tcp_src, vlan_id, ETHERNET_HEADER_BITS, TAG_L2, TAG_L3,
};
use symnet_sefl::{ElementProgram, HeaderAddr, Instruction};

/// `IPMirror`: swaps the IP source/destination addresses and the transport
/// ports — used to model return traffic in unidirectional test setups (§8.3).
pub fn ip_mirror(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::allocate_local_meta("tmp-ip", 32),
        Instruction::assign(FieldRef::meta("tmp-ip"), Expr::reference(ip_src().field())),
        Instruction::assign(ip_src().field(), Expr::reference(ip_dst().field())),
        Instruction::assign(ip_dst().field(), Expr::reference(FieldRef::meta("tmp-ip"))),
        Instruction::allocate_local_meta("tmp-port", 16),
        Instruction::assign(
            FieldRef::meta("tmp-port"),
            Expr::reference(tcp_src().field()),
        ),
        Instruction::assign(tcp_src().field(), Expr::reference(tcp_dst().field())),
        Instruction::assign(
            tcp_dst().field(),
            Expr::reference(FieldRef::meta("tmp-port")),
        ),
        Instruction::forward(0),
    ]))
}

/// The buggy `IPMirror` model found by automated testing: it mirrors the IP
/// addresses but forgets the transport ports.
pub fn ip_mirror_buggy(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::allocate_local_meta("tmp-ip", 32),
        Instruction::assign(FieldRef::meta("tmp-ip"), Expr::reference(ip_src().field())),
        Instruction::assign(ip_src().field(), Expr::reference(ip_dst().field())),
        Instruction::assign(ip_dst().field(), Expr::reference(FieldRef::meta("tmp-ip"))),
        Instruction::forward(0),
    ]))
}

/// `DecIPTTL` (fixed model): drop packets whose TTL is already 0, then
/// decrement. This is the corrected ordering from §8.3: constrain first, then
/// decrement, so the unsigned wrap-around can never happen.
pub fn dec_ip_ttl(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
        Instruction::assign(ip_ttl().field(), Expr::reference(ip_ttl().field()).minus(1)),
        Instruction::forward(0),
    ]))
}

/// The original, buggy `DecIPTTL` model: decrement first, then require the
/// result to be positive. Because the decrement of a symbolic TTL is modeled
/// without wrap-around, the `TTL-1 >= 1` constraint silently excludes TTL 1
/// packets and never models the TTL 0 wrap-around of the real code — SymNet
/// reported a single path instead of the expected two (§8.3).
pub fn dec_ip_ttl_buggy(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::assign(ip_ttl().field(), Expr::reference(ip_ttl().field()).minus(1)),
        Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
        Instruction::forward(0),
    ]))
}

/// `HostEtherFilter`: only admits frames destined to the host's MAC address.
pub fn host_ether_filter(name: &str, mac: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::constrain(Condition::eq(ether_dst().field(), mac)),
        Instruction::forward(0),
    ]))
}

/// The buggy `HostEtherFilter` of §8.3: it checks the EtherType field instead
/// of the destination address.
pub fn host_ether_filter_buggy(name: &str, mac: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::constrain(Condition::eq(ether_type().field(), mac)),
        Instruction::forward(0),
    ]))
}

/// `IPClassifier`: forwards the packet on the first output port whose filter
/// condition matches (Click's first-match semantics). Packets matching no
/// filter are dropped.
pub fn ip_classifier(name: &str, filters: Vec<Condition>) -> ElementProgram {
    let outputs = filters.len().max(1);
    let mut code = Instruction::fail("no filter matched");
    for (port, cond) in filters.into_iter().enumerate().rev() {
        code = Instruction::if_else(cond, Instruction::forward(port), code);
    }
    ElementProgram::new(name, 1, outputs).with_any_input_code(code)
}

/// `EtherEncap`: prepends an Ethernet header with the given addresses and
/// EtherType (creating the `L2` tag in front of `L3`).
pub fn ether_encap(name: &str, src: u64, dst: u64, etype: u64) -> ElementProgram {
    let mut code = vec![Instruction::create_tag(
        TAG_L2,
        HeaderAddr::tag_offset(TAG_L3, -ETHERNET_HEADER_BITS),
    )];
    for f in ethernet_fields() {
        code.push(Instruction::allocate_header(f.addr.clone(), f.width));
    }
    code.extend([
        Instruction::assign(ether_src().field(), Expr::constant(src)),
        Instruction::assign(ether_dst().field(), Expr::constant(dst)),
        Instruction::assign(ether_type().field(), Expr::constant(etype)),
        Instruction::forward(0),
    ]);
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(code))
}

/// `Strip(14)` as used for Ethernet: removes the Ethernet header and the `L2`
/// tag, leaving an L3 packet.
pub fn ether_strip(name: &str) -> ElementProgram {
    let mut code = Vec::new();
    for f in ethernet_fields() {
        code.push(Instruction::deallocate_checked(
            FieldRef::Header(f.addr.clone()),
            f.width,
        ));
    }
    code.push(Instruction::destroy_tag(TAG_L2));
    code.push(Instruction::forward(0));
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(code))
}

/// Rewrites the destination MAC address — how the §8.4 redirection router
/// steers traffic to the Split-TCP proxy.
pub fn set_ether_dst(name: &str, mac: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::assign(ether_dst().field(), Expr::constant(mac)),
        Instruction::forward(0),
    ]))
}

/// Rewrites the source MAC address (the behaviour of the Split-TCP proxy that
/// broke the §8.4 DHCP security appliance).
pub fn set_ether_src(name: &str, mac: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::assign(ether_src().field(), Expr::constant(mac)),
        Instruction::forward(0),
    ]))
}

/// `VLANEncap`: tags the frame with a VLAN id. The original EtherType is saved
/// in metadata, the EtherType becomes 0x8100 and the VLAN id is stored in a
/// dedicated field allocated behind the Ethernet header.
pub fn vlan_encap(name: &str, vlan: u64) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::allocate_meta("orig-ethertype", 16),
        Instruction::assign(
            FieldRef::meta("orig-ethertype"),
            Expr::reference(ether_type().field()),
        ),
        Instruction::assign(ether_type().field(), Expr::constant(ethertype::VLAN)),
        Instruction::allocate_header(vlan_id().addr.clone(), vlan_id().width),
        Instruction::assign(vlan_id().field(), Expr::constant(vlan)),
        Instruction::forward(0),
    ]))
}

/// `VLANDecap`: removes the VLAN tag. The frame must actually be tagged
/// (EtherType 0x8100); otherwise the path fails — exactly the check that
/// exposed the §8.4 "missing VLAN tagging" problem.
pub fn vlan_decap(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        Instruction::constrain(Condition::eq(ether_type().field(), ethertype::VLAN)),
        Instruction::assign(
            ether_type().field(),
            Expr::reference(FieldRef::meta("orig-ethertype")),
        ),
        Instruction::deallocate(vlan_id().field()),
        Instruction::deallocate(FieldRef::meta("orig-ethertype")),
        Instruction::forward(0),
    ]))
}

/// A plain wire/host endpoint that forwards everything — used as sources and
/// sinks in the scenario topologies.
pub fn wire(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::forward(0))
}

/// A sink that accepts every packet (an unlinked output port ends the path).
pub fn sink(name: &str) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::forward(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::verify::{field_invariant, values_equal, Tristate};
    use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
    use symnet_solver::Solver;

    fn run_one(
        program: ElementProgram,
        packet: &Instruction,
    ) -> (symnet_core::engine::ExecutionReport, symnet_core::ElementId) {
        let mut net = Network::new();
        let id = net.add_element(program);
        let engine = SymNet::new(net);
        (engine.inject(id, 0, packet), id)
    }

    #[test]
    fn ip_mirror_swaps_addresses_and_ports() {
        let (report, _) = run_one(ip_mirror("m"), &symbolic_tcp_packet());
        let path = report.delivered().next().unwrap();
        let mut solver = Solver::default();
        let orig_src = report
            .injected
            .read_field(&ip_src().field(), "")
            .unwrap()
            .value;
        let new_dst = path.state.read_field(&ip_dst().field(), "").unwrap().value;
        assert_eq!(
            values_equal(
                &mut solver,
                &path.state.path_condition(),
                &orig_src,
                &new_dst
            ),
            Tristate::Always
        );
        let orig_sport = report
            .injected
            .read_field(&tcp_src().field(), "")
            .unwrap()
            .value;
        let new_dport = path.state.read_field(&tcp_dst().field(), "").unwrap().value;
        assert_eq!(
            values_equal(
                &mut solver,
                &path.state.path_condition(),
                &orig_sport,
                &new_dport
            ),
            Tristate::Always
        );
    }

    #[test]
    fn buggy_ip_mirror_leaves_ports_unswapped() {
        let (report, _) = run_one(ip_mirror_buggy("m"), &symbolic_tcp_packet());
        let path = report.delivered().next().unwrap();
        // Ports are untouched: TcpSrc is still the original TcpSrc.
        assert_eq!(
            field_invariant(&report.injected, path, &tcp_src().field()),
            Ok(Tristate::Always)
        );
        // Addresses were swapped, so IpSrc is NOT invariant in general.
        assert_eq!(
            field_invariant(&report.injected, path, &ip_src().field()),
            Ok(Tristate::Sometimes)
        );
    }

    #[test]
    fn dec_ip_ttl_produces_two_outcomes() {
        // Fixed model: one delivered path (TTL >= 1) and, with a TTL-0 packet,
        // a dropped path.
        let (report, _) = run_one(dec_ip_ttl("ttl"), &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let ttl0 = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::assign(ip_ttl().field(), Expr::constant(0)),
        ]);
        let (report, _) = run_one(dec_ip_ttl("ttl"), &ttl0);
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn buggy_dec_ip_ttl_admits_every_ttl_value() {
        // The bug: with the constraint applied after the decrement, the
        // delivered path requires original TTL >= 2, and a TTL-1 packet is
        // silently dropped rather than being forwarded with a wrapped TTL.
        let ttl1 = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::assign(ip_ttl().field(), Expr::constant(1)),
        ]);
        let (buggy, _) = run_one(dec_ip_ttl_buggy("ttl"), &ttl1);
        assert_eq!(buggy.delivered().count(), 0);
        // The fixed model forwards the TTL-1 packet (decremented to 0).
        let (fixed, _) = run_one(dec_ip_ttl("ttl"), &ttl1);
        assert_eq!(fixed.delivered().count(), 1);
    }

    #[test]
    fn host_ether_filter_checks_the_right_field() {
        let mac = 0x00aa00aa00aa;
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::assign(ether_dst().field(), Expr::constant(mac)),
        ]);
        let (ok_report, _) = run_one(host_ether_filter("f", mac), &pkt);
        assert_eq!(ok_report.delivered().count(), 1);
        // The buggy variant compares the EtherType to the MAC and drops it.
        let (bad_report, _) = run_one(host_ether_filter_buggy("f", mac), &pkt);
        assert_eq!(bad_report.delivered().count(), 0);
    }

    #[test]
    fn ip_classifier_uses_first_match_semantics() {
        let classifier = ip_classifier(
            "c",
            vec![
                Condition::eq(tcp_dst().field(), 80u64),
                Condition::ge(tcp_dst().field(), 0u64), // catch-all
            ],
        );
        let (report, id) = run_one(classifier, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 2);
        // Port 1 (catch-all) excludes what port 0 matched.
        let path1 = report.delivered_at(id, 1).next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path1, &tcp_dst().field()).unwrap();
        assert!(!allowed.contains(80));
        let path0 = report.delivered_at(id, 0).next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path0, &tcp_dst().field()).unwrap();
        assert_eq!(allowed.cardinality(), 1);
    }

    #[test]
    fn ether_encap_and_strip_round_trip() {
        let mut net = Network::new();
        let strip = net.add_element(ether_strip("strip"));
        let encap = net.add_element(ether_encap("encap", 0x1, 0x2, ethertype::IPV4));
        net.add_link(strip, 0, encap, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(strip, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        let dst = path.state.read_field(&ether_dst().field(), "").unwrap();
        assert_eq!(dst.value, symnet_core::Value::Concrete(0x2));
        // The IP payload is untouched by the L2 rewrite.
        assert_eq!(
            field_invariant(&report.injected, path, &ip_dst().field()),
            Ok(Tristate::Always)
        );
    }

    #[test]
    fn vlan_encap_decap_round_trip_and_missing_tag_detection() {
        // Tag then untag: EtherType is restored.
        let mut net = Network::new();
        let tag = net.add_element(vlan_encap("tag", 302));
        let untag = net.add_element(vlan_decap("untag"));
        net.add_link(tag, 0, untag, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(tag, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        assert_eq!(
            path.state
                .read_field(&ether_type().field(), "")
                .unwrap()
                .value,
            symnet_core::Value::Concrete(ethertype::IPV4)
        );
        // Untagging an untagged frame fails (§8.4 missing VLAN tagging).
        let (report, _) = run_one(vlan_decap("untag"), &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn l3_packets_work_with_ether_encap() {
        let (report, _) = run_one(
            ether_encap("encap", 0x1, 0x2, ethertype::IPV4),
            &symbolic_l3_tcp_packet(),
        );
        assert_eq!(report.delivered().count(), 1);
    }

    #[test]
    fn wire_and_sink_forward_everything() {
        let (report, _) = run_one(wire("w"), &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let (report, _) = run_one(sink("s"), &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
    }
}
