//! Evaluation scenario topologies.
//!
//! * [`tunnel_chain`] — the §2 motivating example `A → E1 → E2 → D2 → D1 → B`
//!   (two nested IP-in-IP tunnels) used to check payload invariance.
//! * [`split_tcp`] — the §8.4 Split-TCP side-band deployment of Figure 10,
//!   with switches to reproduce each of the four documented incidents
//!   (asymmetric routing, MTU blackhole, missing VLAN tagging, DHCP security
//!   appliance).
//! * [`department`] — the §8.5 CS department network of Figure 11 (access
//!   switches, aggregation, master switch, ASA, router, cluster and the
//!   management-VLAN leak).
//! * [`stanford_backbone`] — a synthetic Stanford-like backbone used for the
//!   Table 3 comparison against Header Space Analysis.

use crate::asa::{asa, AsaConfig};
use crate::click::{ip_mirror, sink, vlan_encap, wire};
use crate::router::{router_egress, Fib};
use crate::switch::{switch_egress, MacTable};
use crate::tunnel::{ipip_decap, ipip_encap, mtu_filter};
use symnet_core::network::{ElementId, Network};
use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields::{ether_src, ip_dst, ip_src};
use symnet_sefl::{ElementProgram, Instruction};

// ---------------------------------------------------------------------------
// §2 tunnel chain
// ---------------------------------------------------------------------------

/// The §2 tunnel example: two nested IP-in-IP tunnels. Returns the network and
/// the ids of the injection element (`A`) and the final element (`B`).
pub fn tunnel_chain() -> (Network, ElementId, ElementId) {
    let mut net = Network::new();
    let a = net.add_element(wire("A"));
    let e1 = net.add_element(ipip_encap("E1", 0x0a000001, 0x0a000004)); // outer-outer
    let e2 = net.add_element(ipip_encap("E2", 0x0a000002, 0x0a000003)); // outer
    let d2 = net.add_element(ipip_decap("D2", 0x0a000003));
    let d1 = net.add_element(ipip_decap("D1", 0x0a000004));
    let b = net.add_element(sink("B"));
    net.add_link(a, 0, e1, 0);
    net.add_link(e1, 0, e2, 0);
    net.add_link(e2, 0, d2, 0);
    net.add_link(d2, 0, d1, 0);
    net.add_link(d1, 0, b, 0);
    (net, a, b)
}

// ---------------------------------------------------------------------------
// §8.4 Split-TCP deployment (Figure 10)
// ---------------------------------------------------------------------------

/// Which optional behaviours of the Figure 10 deployment are enabled.
#[derive(Clone, Copy, Debug, Default)]
pub struct SplitTcpConfig {
    /// Use an IP-in-IP tunnel between the redirection router R1 and the proxy
    /// P (the MTU-blackhole incident).
    pub tunnel_to_proxy: bool,
    /// The proxy strips VLAN tags and forgets to re-add them (the missing
    /// VLAN tagging incident).
    pub vlan_stripping_bug: bool,
    /// R2 runs the DHCP-lease security check on (EtherSrc, IpSrc) pairs.
    pub dhcp_security_check: bool,
    /// Bounce traffic back at R2 through an IPMirror (used to check that
    /// return traffic also crosses the proxy).
    pub mirror_at_r2: bool,
}

/// Element ids of interest in the Split-TCP topology.
#[derive(Clone, Copy, Debug)]
pub struct SplitTcpTopology {
    /// The client C (injection point).
    pub client: ElementId,
    /// The redirection router R1.
    pub r1: ElementId,
    /// The Split-TCP proxy P.
    pub proxy: ElementId,
    /// The exit router R2.
    pub r2: ElementId,
    /// The Internet sink.
    pub internet: ElementId,
}

/// MAC address of the Split-TCP proxy used by R1's redirection rule.
pub const PROXY_MAC: u64 = 0x00aa00aa0001;
/// MAC address the client's DHCP lease is bound to (§8.4 security appliance).
pub const CLIENT_MAC: u64 = 0x00cc00cc0001;
/// IP address of the client.
pub const CLIENT_IP: u32 = 0x0a00010a;

/// Builds the Figure 10 topology. Traffic flows
/// `C → (AP) → R1 → P → R1 → R2 → Internet`; R1 redirects client traffic to
/// the proxy by rewriting the destination MAC, and R1 enforces a 1536-byte
/// MTU.
pub fn split_tcp(config: SplitTcpConfig) -> (Network, SplitTcpTopology) {
    let mut net = Network::new();
    // The client tags its traffic with its own MAC/IP and, when the DHCP
    // security check is modeled, with the lease metadata origEther/origIP.
    let mut client_code = vec![
        Instruction::assign(ether_src().field(), Expr::constant(CLIENT_MAC)),
        Instruction::assign(ip_src().field(), Expr::constant(CLIENT_IP as u64)),
    ];
    if config.dhcp_security_check {
        client_code.extend([
            Instruction::allocate_meta("origEther", 48),
            Instruction::assign(
                FieldRef::meta("origEther"),
                Expr::reference(ether_src().field()),
            ),
            Instruction::allocate_meta("origIP", 32),
            Instruction::assign(FieldRef::meta("origIP"), Expr::reference(ip_src().field())),
        ]);
    }
    client_code.push(Instruction::forward(0));
    let client = net.add_element(
        ElementProgram::new("C", 1, 1).with_any_input_code(Instruction::block(client_code)),
    );
    // Access point: VLAN-tags the client traffic.
    let ap = net.add_element(vlan_encap("AP", 100));

    // R1: MTU filter + redirection of client traffic to the proxy (input 0);
    // traffic coming back from the proxy (input 1) is VLAN-checked and sent on
    // towards R2.
    let r1_ingress = Instruction::block(vec![
        Instruction::constrain(Condition::lt(
            symnet_sefl::fields::ip_length().field(),
            1536u64,
        )),
        Instruction::assign(
            symnet_sefl::fields::ether_dst().field(),
            Expr::constant(PROXY_MAC),
        ),
        Instruction::forward(0),
    ]);
    let r1_from_proxy = Instruction::block(vec![
        // R1 expects VLAN-tagged frames back from the proxy: removing the tag
        // fails if the proxy forgot to re-add it.
        Instruction::constrain(Condition::eq(
            symnet_sefl::fields::ether_type().field(),
            symnet_sefl::fields::ethertype::VLAN,
        )),
        Instruction::forward(1),
    ]);
    let r1 = net.add_element(
        ElementProgram::new("R1", 2, 2)
            .with_input_code(0, r1_ingress)
            .with_input_code(1, r1_from_proxy),
    );

    // The proxy: terminates and re-originates connections. For reachability
    // purposes it forwards traffic onward, optionally stripping VLAN tags
    // (bug) and always rewriting the Ethernet source to its own MAC.
    let mut proxy_code = Vec::new();
    if config.vlan_stripping_bug {
        proxy_code.push(Instruction::constrain(Condition::eq(
            symnet_sefl::fields::ether_type().field(),
            symnet_sefl::fields::ethertype::VLAN,
        )));
        proxy_code.push(Instruction::assign(
            symnet_sefl::fields::ether_type().field(),
            Expr::reference(FieldRef::meta("orig-ethertype")),
        ));
        proxy_code.push(Instruction::deallocate(
            symnet_sefl::fields::vlan_id().field(),
        ));
        proxy_code.push(Instruction::deallocate(FieldRef::meta("orig-ethertype")));
    }
    proxy_code.push(Instruction::assign(
        ether_src().field(),
        Expr::constant(PROXY_MAC),
    ));
    proxy_code.push(Instruction::forward(0));
    let proxy = net.add_element(
        ElementProgram::new("P", 1, 1).with_any_input_code(Instruction::block(proxy_code)),
    );

    // R2: the exit router, optionally running the DHCP-lease security check.
    let mut r2_code = Vec::new();
    if config.dhcp_security_check {
        r2_code.push(Instruction::constrain(Condition::eq(
            ip_src().field(),
            Expr::reference(FieldRef::meta("origIP")),
        )));
        r2_code.push(Instruction::constrain(Condition::eq(
            ether_src().field(),
            Expr::reference(FieldRef::meta("origEther")),
        )));
    }
    r2_code.push(Instruction::forward(0));
    let r2 = net.add_element(
        ElementProgram::new("R2", 1, 1).with_any_input_code(Instruction::block(r2_code)),
    );
    let internet = net.add_element(sink("Internet"));

    // Wiring: C → AP → R1(in0); R1(out0) → [tunnel?] → P; P → R1(in1);
    // R1(out1) → R2; R2 → Internet (or mirror back).
    net.add_link(client, 0, ap, 0);
    net.add_link(ap, 0, r1, 0);
    if config.tunnel_to_proxy {
        let strip = net.add_element(crate::click::ether_strip("strip-l2"));
        let encap = net.add_element(ipip_encap("tun-in", 0x0a000001, 0x0a000002));
        let mtu = net.add_element(mtu_filter("r1-p-link", 1536));
        let decap = net.add_element(ipip_decap("tun-out", 0x0a000002));
        let reencap = net.add_element(crate::click::ether_encap(
            "re-l2",
            PROXY_MAC,
            PROXY_MAC,
            symnet_sefl::fields::ethertype::VLAN,
        ));
        net.add_link(r1, 0, strip, 0);
        net.add_link(strip, 0, encap, 0);
        net.add_link(encap, 0, mtu, 0);
        net.add_link(mtu, 0, decap, 0);
        net.add_link(decap, 0, reencap, 0);
        net.add_link(reencap, 0, proxy, 0);
    } else {
        net.add_link(r1, 0, proxy, 0);
    }
    net.add_link(proxy, 0, r1, 1);
    net.add_link(r1, 1, r2, 0);
    if config.mirror_at_r2 {
        let mirror = net.add_element(ip_mirror("R2-mirror"));
        net.add_link(r2, 0, mirror, 0);
    } else {
        net.add_link(r2, 0, internet, 0);
    }

    (
        net,
        SplitTcpTopology {
            client,
            r1,
            proxy,
            r2,
            internet,
        },
    )
}

// ---------------------------------------------------------------------------
// §8.5 CS department network (Figure 11)
// ---------------------------------------------------------------------------

/// Sizing knobs of the department-network model. The defaults reproduce the
/// published numbers: 21 devices, ~235 ports, 6000 MAC-table entries and 400
/// routes.
#[derive(Clone, Copy, Debug)]
pub struct DepartmentConfig {
    /// Number of access switches (office + lab).
    pub access_switches: usize,
    /// Total MAC-table entries across the switches.
    pub mac_entries: usize,
    /// Routing-table entries on the M1 router.
    pub routes: usize,
}

impl Default for DepartmentConfig {
    fn default() -> Self {
        DepartmentConfig {
            access_switches: 15,
            mac_entries: 6000,
            routes: 400,
        }
    }
}

/// Element ids of interest in the department network.
#[derive(Clone, Debug)]
pub struct DepartmentTopology {
    /// Office-side access switch used as the injection point for §8.5's
    /// office-to-Internet checks.
    pub office_switch: ElementId,
    /// The aggregation switch.
    pub aggregation: ElementId,
    /// The M2 master switch.
    pub m2: ElementId,
    /// The Cisco ASA.
    pub asa: ElementId,
    /// The M1 department router.
    pub m1: ElementId,
    /// The exit router towards the Internet (inbound injection point).
    pub exit_router: ElementId,
    /// The Internet sink.
    pub internet: ElementId,
    /// The cluster switch carrying the management VLAN.
    pub cluster: ElementId,
    /// Sink standing for the switches' management interfaces (the "hole").
    pub management: ElementId,
    /// Every access switch.
    pub access: Vec<ElementId>,
}

/// MAC address of the ASA inside interface (the first IP hop for hosts).
pub const ASA_MAC: u64 = 0x00a5a5a50001;
/// The management prefix 192.168.137.0/24 of §8.5.
pub const MANAGEMENT_PREFIX: u32 = 0xc0a88900;
/// The department's public prefix (what the Internet routes back to M1).
pub const DEPARTMENT_PREFIX: u32 = 0xc1000000;

/// Builds the Figure 11 department network.
pub fn department(config: DepartmentConfig) -> (Network, DepartmentTopology) {
    let mut net = Network::new();

    // Access switches: port 0 faces the hosts, port 1 faces the aggregation
    // switch. Host-destined MACs are spread over them; traffic towards the ASA
    // goes up.
    let per_switch = (config.mac_entries / config.access_switches.max(1)).max(1);
    let mut access = Vec::new();
    for i in 0..config.access_switches {
        let mut table = MacTable::new(2);
        table.add(ASA_MAC, None, 1);
        for j in 0..per_switch.saturating_sub(1) {
            let mac = 0x0200_0000_0000 | ((i as u64) << 16) | j as u64;
            table.add(mac, None, 0);
        }
        let name = if i < config.access_switches / 2 {
            format!("office-sw{i}")
        } else {
            format!("lab-sw{i}")
        };
        access.push(net.add_element(switch_egress(&name, &table)));
    }

    // Aggregation switch: one port per access switch plus an uplink to M2.
    let uplink = config.access_switches;
    let mut agg_table = MacTable::new(config.access_switches + 1);
    agg_table.add(ASA_MAC, None, uplink);
    for (i, _) in access.iter().enumerate() {
        agg_table.add(0x0200_0000_0000 | ((i as u64) << 16), None, i);
    }
    let aggregation = net.add_element(switch_egress("aggregation", &agg_table));

    // M2 master switch: port 0 → aggregation (down), port 1 → ASA, port 2 →
    // cluster switch.
    let mut m2_table = MacTable::new(3);
    m2_table.add(ASA_MAC, None, 1);
    m2_table.add(0x0200_0000_0000, None, 0);
    m2_table.add(0x0300_0000_0000, None, 2); // cluster-side MACs
    let m2 = net.add_element(switch_egress("M2", &m2_table));

    // The ASA separates the inside VLANs from the M1 router.
    let asa_id = net.add_element(asa("ASA", &AsaConfig::default()));

    // M1: the department router. Its forwarding table has the department
    // public prefix towards the ASA side, the management prefix towards the
    // cluster (the §8.5 leak) and a default route to the exit router.
    let mut m1_fib = Fib::new(3);
    m1_fib.add(DEPARTMENT_PREFIX, 16, 0); // back towards the ASA / inside
    m1_fib.add(MANAGEMENT_PREFIX, 24, 1); // the management VLAN leak
    m1_fib.add(0, 0, 2); // default: Internet
    for i in 0..config.routes.saturating_sub(3) {
        let h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        m1_fib.add((h as u32) & 0xffff_ff00, 24, 2);
    }
    let m1 = net.add_element(router_egress("M1", &m1_fib));

    // Exit router and Internet.
    let exit_fib = {
        let mut f = Fib::new(2);
        f.add(DEPARTMENT_PREFIX, 16, 0); // towards M1
        f.add(MANAGEMENT_PREFIX, 24, 0); // ...including the leaked prefix
        f.add(0, 0, 1); // Internet
        f
    };
    let exit_router = net.add_element(router_egress("exit", &exit_fib));
    let internet = net.add_element(sink("Internet"));

    // Cluster switch and the management sink ("hole" / switch management
    // interfaces).
    let cluster = net.add_element(ElementProgram::new("cluster", 1, 1).with_any_input_code(
        Instruction::block(vec![
            Instruction::constrain(Condition::matches_ipv4_prefix(
                ip_dst().field(),
                MANAGEMENT_PREFIX as u64,
                24,
            )),
            Instruction::forward(0),
        ]),
    ));
    let management = net.add_element(sink("management"));

    // Wiring. Hosts inject at an access switch input port 0.
    for (i, &sw) in access.iter().enumerate() {
        net.add_link(sw, 1, aggregation, i);
    }
    net.add_link(aggregation, uplink, m2, 0);
    net.add_link(m2, 1, asa_id, 0); // inside → ASA
    net.add_link(asa_id, 0, m1, 0); // ASA outside → M1
    net.add_link(m1, 2, exit_router, 0); // default route → exit
    net.add_link(exit_router, 1, internet, 0);
    net.add_link(exit_router, 0, m1, 1); // inbound: exit → M1
    net.add_link(m1, 1, cluster, 0); // the management leak path
    net.add_link(cluster, 0, management, 0);
    // Return direction towards the inside: M1 → ASA (outside input).
    net.add_link(m1, 0, asa_id, 1);
    net.add_link(asa_id, 1, m2, 1);
    net.add_link(m2, 0, aggregation, uplink);

    (
        net,
        DepartmentTopology {
            office_switch: access[0],
            aggregation,
            m2,
            asa: asa_id,
            m1,
            exit_router,
            internet,
            cluster,
            management,
            access,
        },
    )
}

// ---------------------------------------------------------------------------
// Stanford-like backbone (Table 3)
// ---------------------------------------------------------------------------

/// A synthetic Stanford-like backbone: `zone_routers` zone routers, each with
/// a FIB of `prefixes_per_router` entries, dual-homed to two core routers.
/// Reachability is run from an access port of the first zone router to the
/// cores, as in the Table 3 experiment.
#[derive(Clone, Debug)]
pub struct Backbone {
    /// The network.
    pub network: Network,
    /// The injection (access) element.
    pub access: ElementId,
    /// The core routers.
    pub cores: Vec<ElementId>,
    /// Per-router FIBs (name, table), used by the HSA baseline to build its
    /// own transfer functions from the same data.
    pub fibs: Vec<(String, Fib)>,
}

/// Builds the synthetic backbone.
pub fn stanford_backbone(zone_routers: usize, prefixes_per_router: usize) -> Backbone {
    let mut net = Network::new();
    let mut fibs = Vec::new();

    // Two cores with a default route each (they terminate the paths).
    let mut cores = Vec::new();
    for c in 0..2usize {
        let mut fib = Fib::new(2);
        fib.add(0, 0, 1);
        let name = format!("core{c}");
        cores.push(net.add_element(router_egress(&name, &fib)));
        fibs.push((name, fib));
    }

    // Zone routers: port 0 → core0, port 1 → core1, port 2 → local (unused
    // uplink for delivered local traffic).
    let mut zones = Vec::new();
    for z in 0..zone_routers {
        let mut fib = Fib::new(3);
        for i in 0..prefixes_per_router {
            let h = ((z * 131071 + i) as u64).wrapping_mul(0x9E3779B97F4A7C15);
            let port = (h % 2) as usize;
            fib.add((h as u32) & 0xffff_ff00, 24, port);
        }
        // Local subnet delivered locally.
        fib.add(0x0a000000 + ((z as u32) << 16), 16, 2);
        let name = format!("zone{z}");
        zones.push(net.add_element(router_egress(&name, &fib)));
        fibs.push((name, fib));
    }

    // The access element injects into zone 0.
    let access = net.add_element(wire("access"));
    net.add_link(access, 0, zones[0], 0);
    for &z in &zones {
        net.add_link(z, 0, cores[0], 0);
        net.add_link(z, 1, cores[1], 0);
    }

    Backbone {
        network: net,
        access,
        cores,
        fibs,
    }
}

// ---------------------------------------------------------------------------
// Delta fan-out (resident-service benchmark topology)
// ---------------------------------------------------------------------------

/// The delta fan-out topology of the `service_deltas` benchmark: an injection
/// wire feeding a root egress switch whose `leaves` output ports each lead to
/// a leaf egress switch. Leaf `i` owns `macs_per_leaf` MAC addresses, one per
/// (unlinked, hence delivering) output port, so the full exploration yields
/// `leaves × macs_per_leaf` delivered paths and a single-MAC delta at one
/// leaf invalidates exactly the `1/leaves` fraction of paths that enter it.
pub struct DeltaFanout {
    /// The network.
    pub network: Network,
    /// The injection element (a wire in front of the root switch).
    pub access: ElementId,
    /// The root switch.
    pub root: ElementId,
    /// The leaf switches, in port order.
    pub leaves: Vec<ElementId>,
    /// Rule tables for every switch, registered for [`crate::delta::Delta`]
    /// application.
    pub tables: crate::delta::RuleTables,
}

/// The MAC address leaf `leaf` serves on its port `slot` (deterministic, so
/// benchmark deltas can address existing and fresh MACs without randomness).
pub fn fanout_mac(leaf: usize, slot: usize) -> u64 {
    0x10_0000 + ((leaf as u64) << 12) + slot as u64
}

/// Builds the delta fan-out topology.
pub fn delta_fanout(leaves: usize, macs_per_leaf: usize) -> DeltaFanout {
    use crate::delta::{RuleTables, SwitchModel};

    let mut net = Network::new();
    let mut tables = RuleTables::new();

    let mut root_table = MacTable::new(leaves);
    let mut leaf_tables = Vec::new();
    for leaf in 0..leaves {
        let mut table = MacTable::new(macs_per_leaf);
        for slot in 0..macs_per_leaf {
            let mac = fanout_mac(leaf, slot);
            root_table.add(mac, None, leaf);
            table.add(mac, None, slot);
        }
        leaf_tables.push(table);
    }

    let root = net.add_element(switch_egress("root", &root_table));
    tables.register_switch(root, "root", root_table, SwitchModel::Egress);

    let mut leaf_ids = Vec::new();
    for (leaf, table) in leaf_tables.into_iter().enumerate() {
        let name = format!("leaf{leaf}");
        let id = net.add_element(switch_egress(&name, &table));
        net.add_link(root, leaf, id, 0);
        tables.register_switch(id, &name, table, SwitchModel::Egress);
        leaf_ids.push(id);
    }

    let access = net.add_element(wire("access"));
    net.add_link(access, 0, root, 0);

    DeltaFanout {
        network: net,
        access,
        root,
        leaves: leaf_ids,
        tables,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::{ExecConfig, SymNet};
    use symnet_core::verify::field_invariant;
    use symnet_core::verify::Tristate;
    use symnet_sefl::fields::{ip_length, tcp_payload};
    use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};

    #[test]
    fn delta_fanout_paths_partition_by_leaf() {
        let fanout = delta_fanout(3, 2);
        let engine = SymNet::new(fanout.network);
        let report = engine.inject(fanout.access, 0, &symbolic_tcp_packet());
        // One delivered path per (leaf, mac) pair.
        assert_eq!(report.delivered().count(), 6);
        for &leaf in &fanout.leaves {
            let at_leaf: usize = (0..2).map(|p| report.delivered_at(leaf, p).count()).sum();
            assert_eq!(at_leaf, 2);
        }
    }

    #[test]
    fn tunnel_chain_preserves_packet_contents() {
        let (net, a, b) = tunnel_chain();
        let engine = SymNet::new(net);
        let report = engine.inject(a, 0, &symbolic_l3_tcp_packet());
        assert_eq!(report.delivered_at(b, 0).count(), 1);
        let path = report.delivered_at(b, 0).next().unwrap();
        // §2: packet contents are invariant across the tunnel chain.
        for field in [
            ip_src().field(),
            ip_dst().field(),
            symnet_sefl::fields::tcp_dst().field(),
            tcp_payload().field(),
        ] {
            assert_eq!(
                field_invariant(&report.injected, path, &field),
                Ok(Tristate::Always)
            );
        }
    }

    fn split_tcp_packet() -> Instruction {
        Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::constrain(Condition::eq(
                symnet_sefl::fields::ip_proto().field(),
                symnet_sefl::fields::ipproto::TCP,
            )),
        ])
    }

    #[test]
    fn split_tcp_all_paths_cross_the_proxy() {
        let (net, topo) = split_tcp(SplitTcpConfig::default());
        let engine = SymNet::new(net);
        let report = engine.inject(topo.client, 0, &split_tcp_packet());
        assert!(report.delivered_at(topo.internet, 0).count() >= 1);
        for path in report.delivered_at(topo.internet, 0) {
            assert!(
                path.ports_visited().iter().any(|p| p.starts_with("P:")),
                "every delivered path must traverse the proxy"
            );
        }
    }

    #[test]
    fn split_tcp_mtu_constraint_tightens_with_the_tunnel() {
        // Without the tunnel the client may send up to 1535 bytes ...
        let (net, topo) = split_tcp(SplitTcpConfig::default());
        let engine = SymNet::new(net);
        let report = engine.inject(topo.client, 0, &split_tcp_packet());
        let path = report.delivered_at(topo.internet, 0).next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path, &ip_length().field()).unwrap();
        assert_eq!(allowed.max(), Some(1535));
        // ... with the IP-in-IP tunnel towards the proxy the limit drops by 20.
        let (net, topo) = split_tcp(SplitTcpConfig {
            tunnel_to_proxy: true,
            ..Default::default()
        });
        let engine = SymNet::new(net);
        let report = engine.inject(topo.client, 0, &split_tcp_packet());
        assert!(report.delivered_at(topo.internet, 0).count() >= 1);
        let path = report.delivered_at(topo.internet, 0).next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path, &ip_length().field()).unwrap();
        assert_eq!(allowed.max(), Some(1515));
    }

    #[test]
    fn split_tcp_missing_vlan_tag_blackholes_traffic() {
        let (net, topo) = split_tcp(SplitTcpConfig {
            vlan_stripping_bug: true,
            ..Default::default()
        });
        let engine = SymNet::new(net);
        let report = engine.inject(topo.client, 0, &split_tcp_packet());
        assert_eq!(
            report.delivered_at(topo.internet, 0).count(),
            0,
            "R1 drops untagged frames returning from the proxy"
        );
    }

    #[test]
    fn split_tcp_dhcp_check_drops_proxied_traffic() {
        let (net, topo) = split_tcp(SplitTcpConfig {
            dhcp_security_check: true,
            ..Default::default()
        });
        let engine = SymNet::new(net);
        let report = engine.inject(topo.client, 0, &split_tcp_packet());
        assert_eq!(
            report.delivered_at(topo.internet, 0).count(),
            0,
            "R2 drops packets whose source MAC was rewritten by the proxy"
        );
    }

    #[test]
    fn department_office_reaches_internet_through_the_asa() {
        let (net, topo) = department(DepartmentConfig {
            access_switches: 4,
            mac_entries: 200,
            routes: 20,
        });
        let engine = SymNet::with_config(
            net,
            ExecConfig {
                max_hops: 32,
                ..Default::default()
            },
        );
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            crate::tcp_options::symbolic_options_metadata(),
            Instruction::constrain(Condition::ne(
                ip_src().field(),
                Expr::reference(ip_dst().field()),
            )),
        ]);
        let report = engine.inject(topo.office_switch, 0, &pkt);
        let internet_paths: Vec<_> = report.delivered_at(topo.internet, 0).collect();
        assert!(!internet_paths.is_empty(), "office must reach the Internet");
        for path in &internet_paths {
            assert!(
                path.ports_visited().iter().any(|p| p.starts_with("ASA:")),
                "Internet-bound traffic must cross the ASA"
            );
            // The default ASA configuration tampers with TCP options: MPTCP is
            // removed (§8.5's surprise finding).
            assert_eq!(
                path.state
                    .read_meta(&crate::tcp_options::opt_key(
                        crate::tcp_options::option_kind::MPTCP
                    ))
                    .map(|s| s.value),
                Ok(symnet_core::Value::Concrete(0))
            );
        }
    }

    #[test]
    fn department_inbound_reaches_management_vlan_without_the_asa() {
        let (net, topo) = department(DepartmentConfig {
            access_switches: 4,
            mac_entries: 200,
            routes: 20,
        });
        let engine = SymNet::new(net);
        let report = engine.inject(topo.exit_router, 0, &symbolic_l3_tcp_packet());
        let leaked: Vec<_> = report.delivered_at(topo.management, 0).collect();
        assert!(
            !leaked.is_empty(),
            "the management VLAN must be reachable from the outside via M1"
        );
        for path in &leaked {
            assert!(
                !path.ports_visited().iter().any(|p| p.starts_with("ASA:")),
                "the leak bypasses the ASA entirely"
            );
            let allowed = symnet_core::verify::allowed_values(path, &ip_dst().field()).unwrap();
            assert!(allowed.contains(0xc0a88901), "192.168.137.0/24 is exposed");
        }
    }

    #[test]
    fn department_has_published_scale_with_default_config() {
        let (net, _) = department(DepartmentConfig::default());
        assert_eq!(net.element_count(), 23);
        assert!(net.port_count() >= 50);
    }

    #[test]
    fn backbone_reaches_both_cores() {
        let backbone = stanford_backbone(4, 50);
        let engine = SymNet::new(backbone.network.clone());
        let report = engine.inject(backbone.access, 0, &symbolic_l3_tcp_packet());
        for core in &backbone.cores {
            assert!(
                report.delivered_at(*core, 1).count() >= 1,
                "core must be reachable from the access router"
            );
        }
        assert_eq!(backbone.fibs.len(), 6);
    }
}
