//! Stateful NAT and stateful-firewall models.
//!
//! §7 "Modeling a Network Address Translator": the exact port a NAT picks for
//! a new flow is quasi-random, so the model assigns a fresh *symbolic* port in
//! the NAT's range and "remembers" the mapping by storing it in packet
//! metadata. Because the metadata is local to the element instance, cascaded
//! NATs each keep their own mapping, and — crucially — the model creates no
//! branches, so verifying networks with stateful middleboxes does not explode.
//! The same store-flow-state-in-the-packet technique models stateful firewalls
//! and sequence-number–randomising firewalls.

use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields::{ip_dst, ip_proto, ip_src, ipproto, tcp_dst, tcp_seq, tcp_src};
use symnet_sefl::{ElementProgram, Instruction};

/// Configuration of a [`nat`] element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NatConfig {
    /// The public address the NAT rewrites the source to.
    pub public_ip: u32,
    /// Lowest source port the NAT assigns.
    pub port_low: u16,
    /// Highest source port the NAT assigns.
    pub port_high: u16,
}

impl Default for NatConfig {
    fn default() -> Self {
        NatConfig {
            public_ip: 0xc0a80101, // 192.168.1.1
            port_low: 1024,
            port_high: 65535,
        }
    }
}

/// The NAT model of §7.
///
/// * input 0 → output 0: outbound traffic; the source address and port are
///   rewritten (the new port is symbolic within the configured range) and the
///   original and assigned values are stored in local metadata.
/// * input 1 → output 1: return traffic; admitted only if it matches the
///   assigned mapping, in which case the original addressing is restored.
pub fn nat(name: &str, config: NatConfig) -> ElementProgram {
    let outbound = Instruction::block(vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::TCP)), // only do TCP
        Instruction::allocate_local_meta("orig-ip", 32),
        Instruction::allocate_local_meta("orig-port", 16),
        Instruction::allocate_local_meta("new-ip", 32),
        Instruction::allocate_local_meta("new-port", 16),
        // Save the initial addressing.
        Instruction::assign(FieldRef::meta("orig-ip"), Expr::reference(ip_src().field())),
        Instruction::assign(
            FieldRef::meta("orig-port"),
            Expr::reference(tcp_src().field()),
        ),
        // Perform the mapping: concrete public address, symbolic port in range.
        Instruction::assign(ip_src().field(), Expr::constant(config.public_ip as u64)),
        Instruction::assign(tcp_src().field(), Expr::symbolic()),
        Instruction::constrain(Condition::ge(tcp_src().field(), config.port_low as u64)),
        Instruction::constrain(Condition::le(tcp_src().field(), config.port_high as u64)),
        // Save the assigned addressing.
        Instruction::assign(FieldRef::meta("new-ip"), Expr::reference(ip_src().field())),
        Instruction::assign(
            FieldRef::meta("new-port"),
            Expr::reference(tcp_src().field()),
        ),
        Instruction::forward(0),
    ]);
    let inbound = Instruction::block(vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::TCP)),
        // The return packet is allowed only if it targets the assigned mapping.
        Instruction::constrain(Condition::eq(
            ip_dst().field(),
            Expr::reference(FieldRef::meta("new-ip")),
        )),
        Instruction::constrain(Condition::eq(
            tcp_dst().field(),
            Expr::reference(FieldRef::meta("new-port")),
        )),
        // Restore the original addressing.
        Instruction::assign(ip_dst().field(), Expr::reference(FieldRef::meta("orig-ip"))),
        Instruction::assign(
            tcp_dst().field(),
            Expr::reference(FieldRef::meta("orig-port")),
        ),
        Instruction::forward(1),
    ]);
    ElementProgram::new(name, 2, 2)
        .with_input_code(0, outbound)
        .with_input_code(1, inbound)
}

/// A stateful firewall built with the same flow-state-in-the-packet technique:
/// outbound traffic (input 0) records the 4-tuple; return traffic (input 1) is
/// admitted only if it is the exact reverse of a recorded flow. This is also
/// the model used for the Click `IPRewriter` element in its stateful-firewall
/// role (§8.3).
pub fn stateful_firewall(name: &str) -> ElementProgram {
    let outbound = Instruction::block(vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::TCP)),
        Instruction::allocate_local_meta("fw-src", 32),
        Instruction::allocate_local_meta("fw-dst", 32),
        Instruction::allocate_local_meta("fw-sport", 16),
        Instruction::allocate_local_meta("fw-dport", 16),
        Instruction::assign(FieldRef::meta("fw-src"), Expr::reference(ip_src().field())),
        Instruction::assign(FieldRef::meta("fw-dst"), Expr::reference(ip_dst().field())),
        Instruction::assign(
            FieldRef::meta("fw-sport"),
            Expr::reference(tcp_src().field()),
        ),
        Instruction::assign(
            FieldRef::meta("fw-dport"),
            Expr::reference(tcp_dst().field()),
        ),
        Instruction::forward(0),
    ]);
    let inbound = Instruction::block(vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::TCP)),
        // Reverse direction of the recorded flow.
        Instruction::constrain(Condition::eq(
            ip_src().field(),
            Expr::reference(FieldRef::meta("fw-dst")),
        )),
        Instruction::constrain(Condition::eq(
            ip_dst().field(),
            Expr::reference(FieldRef::meta("fw-src")),
        )),
        Instruction::constrain(Condition::eq(
            tcp_src().field(),
            Expr::reference(FieldRef::meta("fw-dport")),
        )),
        Instruction::constrain(Condition::eq(
            tcp_dst().field(),
            Expr::reference(FieldRef::meta("fw-sport")),
        )),
        Instruction::forward(1),
    ]);
    ElementProgram::new(name, 2, 2)
        .with_input_code(0, outbound)
        .with_input_code(1, inbound)
}

/// A firewall that randomises the TCP initial sequence number on outbound
/// traffic and restores it on return traffic — the third §7 example of the
/// per-flow-state technique.
pub fn seq_randomizing_firewall(name: &str) -> ElementProgram {
    let outbound = Instruction::block(vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::TCP)),
        Instruction::allocate_local_meta("orig-seq", 32),
        Instruction::allocate_local_meta("new-seq", 32),
        Instruction::assign(
            FieldRef::meta("orig-seq"),
            Expr::reference(tcp_seq().field()),
        ),
        Instruction::assign(tcp_seq().field(), Expr::symbolic()),
        Instruction::assign(
            FieldRef::meta("new-seq"),
            Expr::reference(tcp_seq().field()),
        ),
        Instruction::forward(0),
    ]);
    let inbound = Instruction::block(vec![
        Instruction::constrain(Condition::eq(ip_proto().field(), ipproto::TCP)),
        // The peer acknowledges the randomised sequence number; restore the
        // original before handing the packet back to the inside host.
        Instruction::assign(
            tcp_seq().field(),
            Expr::reference(FieldRef::meta("orig-seq")),
        ),
        Instruction::forward(1),
    ]);
    ElementProgram::new(name, 2, 2)
        .with_input_code(0, outbound)
        .with_input_code(1, inbound)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::click::ip_mirror;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::value::Value;
    use symnet_core::verify::{field_invariant, Tristate};
    use symnet_sefl::packet::symbolic_tcp_packet;

    /// Outbound through the NAT, reflected by an IPMirror, back through the
    /// NAT — the end-to-end test of §7/§8.3 (without the address-equality bug).
    fn nat_with_mirror() -> (Network, symnet_core::ElementId, symnet_core::ElementId) {
        let mut net = Network::new();
        let n = net.add_element(nat("nat", NatConfig::default()));
        let m = net.add_element(ip_mirror("mirror"));
        net.add_link(n, 0, m, 0); // NAT outbound → mirror
        net.add_link(m, 0, n, 1); // mirror → NAT return input
        (net, n, m)
    }

    #[test]
    fn nat_model_does_not_branch() {
        let program = nat("nat", NatConfig::default());
        assert_eq!(program.max_branching(), 1);
        assert_eq!(stateful_firewall("fw").max_branching(), 1);
    }

    #[test]
    fn outbound_packet_is_rewritten_within_port_range() {
        let mut net = Network::new();
        let n = net.add_element(nat("nat", NatConfig::default()));
        let engine = SymNet::new(net);
        let report = engine.inject(n, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        // Source address is now the public address.
        let src = path.state.read_field(&ip_src().field(), "").unwrap();
        assert_eq!(src.value, Value::Concrete(0xc0a80101));
        // Source port is symbolic but constrained to the NAT range.
        let ports = symnet_core::verify::allowed_values(path, &tcp_src().field()).unwrap();
        assert_eq!(ports.min(), Some(1024));
        assert_eq!(ports.max(), Some(65535));
        // The destination is untouched.
        assert_eq!(
            field_invariant(&report.injected, path, &ip_dst().field()),
            Ok(Tristate::Always)
        );
    }

    #[test]
    fn return_traffic_is_translated_back() {
        let (net, nat_id, _) = nat_with_mirror();
        let engine = SymNet::new(net);
        // Constrain source and destination to differ so the mirrored packet
        // cannot re-match the forward mapping (the §8.3 IPRewriter loop fix).
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::constrain(Condition::ne(
                ip_src().field(),
                Expr::reference(ip_dst().field()),
            )),
            Instruction::constrain(Condition::lt(tcp_src().field(), 1024u64)),
        ]);
        let report = engine.inject(nat_id, 0, &pkt);
        // The mirrored packet re-enters the NAT on input 1 and exits output 1
        // with the original addressing restored.
        assert_eq!(report.delivered_at(nat_id, 1).count(), 1);
        let path = report.delivered_at(nat_id, 1).next().unwrap();
        // After the round trip the destination address/port equal the original
        // source address/port of the injected packet.
        let orig_src = report.injected.read_field(&ip_src().field(), "").unwrap();
        let final_dst = path.state.read_field(&ip_dst().field(), "").unwrap();
        assert_eq!(orig_src.value, final_dst.value);
        let orig_sport = report.injected.read_field(&tcp_src().field(), "").unwrap();
        let final_dport = path.state.read_field(&tcp_dst().field(), "").unwrap();
        assert_eq!(orig_sport.value, final_dport.value);
    }

    #[test]
    fn unrelated_inbound_traffic_is_dropped() {
        let mut net = Network::new();
        let n = net.add_element(nat("nat", NatConfig::default()));
        let engine = SymNet::new(net);
        // Traffic arriving on the return interface without any recorded
        // mapping metadata must be dropped (memory error on the metadata read).
        let report = engine.inject(n, 1, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn cascaded_nats_keep_separate_mappings() {
        // inside → NAT1 → NAT2 → mirror → NAT2 → NAT1 → inside.
        let mut net = Network::new();
        let n1 = net.add_element(nat("nat1", NatConfig::default()));
        let n2 = net.add_element(nat(
            "nat2",
            NatConfig {
                public_ip: 0x08080808,
                ..NatConfig::default()
            },
        ));
        let m = net.add_element(ip_mirror("mirror"));
        net.add_link(n1, 0, n2, 0);
        net.add_link(n2, 0, m, 0);
        net.add_link(m, 0, n2, 1);
        net.add_link(n2, 1, n1, 1);
        let engine = SymNet::new(net);
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::constrain(Condition::ne(
                ip_src().field(),
                Expr::reference(ip_dst().field()),
            )),
            Instruction::constrain(Condition::lt(tcp_src().field(), 1024u64)),
            Instruction::constrain(Condition::ne(ip_src().field(), 0x08080808u64)),
            Instruction::constrain(Condition::ne(ip_src().field(), 0xc0a80101u64)),
        ]);
        let report = engine.inject(n1, 0, &pkt);
        // The packet makes the full round trip and is restored by NAT1.
        assert_eq!(report.delivered_at(n1, 1).count(), 1);
        let path = report.delivered_at(n1, 1).next().unwrap();
        let orig_src = report.injected.read_field(&ip_src().field(), "").unwrap();
        let final_dst = path.state.read_field(&ip_dst().field(), "").unwrap();
        assert_eq!(orig_src.value, final_dst.value);
    }

    #[test]
    fn stateful_firewall_blocks_unsolicited_and_admits_replies() {
        let mut net = Network::new();
        let fw = net.add_element(stateful_firewall("fw"));
        let m = net.add_element(ip_mirror("mirror"));
        net.add_link(fw, 0, m, 0);
        net.add_link(m, 0, fw, 1);
        let engine = SymNet::new(net);
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::constrain(Condition::ne(
                ip_src().field(),
                Expr::reference(ip_dst().field()),
            )),
        ]);
        let report = engine.inject(fw, 0, &pkt);
        // The mirrored reply matches the recorded flow and is admitted.
        assert_eq!(report.delivered_at(fw, 1).count(), 1);
        // Unsolicited traffic entering from the outside has no flow state and
        // is dropped.
        let report = engine.inject(fw, 1, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn seq_randomizer_hides_and_restores_sequence_numbers() {
        let mut net = Network::new();
        let fw = net.add_element(seq_randomizing_firewall("fw"));
        let engine = SymNet::new(net);
        let report = engine.inject(fw, 0, &symbolic_tcp_packet());
        let path = report.delivered_at(fw, 0).next().unwrap();
        // The outbound sequence number is a fresh symbol, not the original.
        assert_eq!(
            field_invariant(&report.injected, path, &tcp_seq().field()),
            Ok(Tristate::Sometimes)
        );
    }
}
