//! Longest-prefix-match IP router models generated from forwarding tables.
//!
//! §7 "Modeling an IP Router": grouping prefixes per output interface is only
//! correct if longest-prefix-match semantics are preserved. The trick is, for
//! every prefix `b`, to conjoin the negation of each *more specific*
//! overlapping prefix `a` that forwards to a different interface (`!a & b`),
//! after which prefixes can be grouped per interface exactly like MAC
//! addresses — dropping the number of paths from the number of prefixes to the
//! number of links. Table 2 of the paper evaluates the three variants below on
//! a 188,500-entry forwarding table.

use symnet_sefl::cond::Condition;
use symnet_sefl::fields::ip_dst;
use symnet_sefl::{ElementProgram, Instruction};

/// One forwarding-table entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FibEntry {
    /// Prefix value (host bits zero).
    pub prefix: u32,
    /// Prefix length in bits (0–32).
    pub prefix_len: u8,
    /// Output interface index.
    pub port: usize,
}

impl FibEntry {
    /// True if `other` is strictly more specific than `self` and nested inside
    /// it.
    pub fn covers(&self, other: &FibEntry) -> bool {
        if other.prefix_len <= self.prefix_len {
            return false;
        }
        let shift = 32 - self.prefix_len as u32;
        if shift >= 32 {
            return true; // a /0 covers everything more specific
        }
        (other.prefix >> shift) == (self.prefix >> shift)
    }

    /// True if the concrete address matches this prefix.
    pub fn matches(&self, address: u32) -> bool {
        if self.prefix_len == 0 {
            return true;
        }
        let shift = 32 - self.prefix_len as u32;
        (address >> shift) == (self.prefix >> shift)
    }
}

/// A router forwarding table (FIB).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Fib {
    /// Number of output interfaces.
    pub port_count: usize,
    /// Table entries.
    pub entries: Vec<FibEntry>,
}

impl Fib {
    /// Creates an empty FIB for a router with `port_count` interfaces.
    pub fn new(port_count: usize) -> Self {
        Fib {
            port_count,
            entries: Vec::new(),
        }
    }

    /// Adds an entry.
    pub fn add(&mut self, prefix: u32, prefix_len: u8, port: usize) -> &mut Self {
        assert!(port < self.port_count, "port {port} out of range");
        assert!(prefix_len <= 32);
        self.entries.push(FibEntry {
            prefix,
            prefix_len,
            port,
        });
        self
    }

    /// Withdraws a route: removes every entry with exactly this prefix — the
    /// route-withdrawal delta of the resident service. Returns true if an
    /// entry was removed. (Adding a route is [`Fib::add`].)
    pub fn withdraw(&mut self, prefix: u32, prefix_len: u8) -> bool {
        let before = self.entries.len();
        self.entries
            .retain(|e| !(e.prefix == prefix && e.prefix_len == prefix_len));
        self.entries.len() != before
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the FIB has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Keeps only the first `n` entries (the Table 2 sweep runs 1%, 33% and
    /// 100% of the full table).
    pub fn truncated(&self, n: usize) -> Fib {
        Fib {
            port_count: self.port_count,
            entries: self.entries.iter().take(n).copied().collect(),
        }
    }

    /// Interfaces that appear in at least one entry.
    pub fn ports_in_use(&self) -> Vec<usize> {
        let mut ports: Vec<usize> = self.entries.iter().map(|e| e.port).collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    }

    /// Longest-prefix-match lookup of a concrete address (reference semantics
    /// used by tests and by the automated-testing harness).
    pub fn lookup(&self, address: u32) -> Option<usize> {
        self.entries
            .iter()
            .filter(|e| e.matches(address))
            .max_by_key(|e| e.prefix_len)
            .map(|e| e.port)
    }

    /// Deterministically generates a synthetic FIB with a realistic mix of
    /// overlapping prefixes: mostly /24s, with /16 aggregates that cover some
    /// of them through a different interface (so the LPM exclusion constraints
    /// are actually exercised) and a default route.
    pub fn synthetic(entries: usize, port_count: usize) -> Fib {
        assert!(port_count >= 2);
        let mut fib = Fib::new(port_count);
        if entries == 0 {
            return fib;
        }
        // Default route on the last port.
        fib.add(0, 0, port_count - 1);
        let mut i: u64 = 0;
        while fib.len() < entries {
            let h = i.wrapping_mul(0x9E3779B97F4A7C15);
            if i % 10 == 9 {
                // A /16 aggregate that covers the /24s generated from the same
                // seed region but points to a different interface.
                let prefix = ((h >> 16) as u32) & 0xffff_0000;
                fib.add(prefix, 16, (h as usize) % (port_count - 1));
            } else {
                let prefix = (h as u32) & 0xffff_ff00;
                fib.add(prefix, 24, (h >> 32) as usize % (port_count - 1));
            }
            i += 1;
        }
        fib
    }

    /// For every entry, the indices of the more specific overlapping entries
    /// that forward to a *different* interface — the prefixes whose negation
    /// must be conjoined to preserve longest-prefix-match semantics (the `!a &
    /// b` trick of §7). Exclusions towards the same interface do not change the
    /// forwarding decision and are omitted to keep the constraint count low,
    /// mirroring the ~183k additional constraints the paper reports for 188.5k
    /// prefixes. Built with a sort + range scan so that generating the model
    /// for a full-size FIB stays well below the paper's 8-minute generation
    /// time.
    pub fn exclusion_index(&self) -> Vec<Vec<usize>> {
        let mut by_prefix: Vec<usize> = (0..self.entries.len()).collect();
        by_prefix.sort_unstable_by_key(|&i| self.entries[i].prefix);
        let prefixes: Vec<u32> = by_prefix.iter().map(|&i| self.entries[i].prefix).collect();
        let mut out = vec![Vec::new(); self.entries.len()];
        for (idx, entry) in self.entries.iter().enumerate() {
            let base = entry.prefix;
            let end = if entry.prefix_len == 0 {
                u32::MAX
            } else {
                let host = 32 - entry.prefix_len as u32;
                if host >= 32 {
                    u32::MAX
                } else {
                    base | ((1u32 << host) - 1)
                }
            };
            let start = prefixes.partition_point(|&p| p < base);
            let stop = prefixes.partition_point(|&p| p <= end);
            for &other_idx in &by_prefix[start..stop] {
                if other_idx == idx {
                    continue;
                }
                let other = &self.entries[other_idx];
                if other.port != entry.port && entry.covers(other) {
                    out[idx].push(other_idx);
                }
            }
        }
        out
    }

    /// The per-entry LPM condition: the destination matches the entry's prefix
    /// and none of the more specific overlapping prefixes that forward to a
    /// different interface (see [`Fib::exclusion_index`]).
    pub fn entry_condition(&self, index: usize) -> Condition {
        let exclusions = self.exclusion_index();
        self.entry_condition_with(index, &exclusions)
    }

    fn entry_condition_with(&self, index: usize, exclusions: &[Vec<usize>]) -> Condition {
        let entry = self.entries[index];
        let mut parts = vec![Condition::matches_ipv4_prefix(
            ip_dst().field(),
            entry.prefix as u64,
            entry.prefix_len,
        )];
        for &other_idx in &exclusions[index] {
            let other = self.entries[other_idx];
            parts.push(Condition::not(Condition::matches_ipv4_prefix(
                ip_dst().field(),
                other.prefix as u64,
                other.prefix_len,
            )));
        }
        Condition::and(parts)
    }

    /// The grouped per-interface condition used by the ingress and egress
    /// models.
    pub fn port_condition(&self, port: usize) -> Condition {
        let exclusions = self.exclusion_index();
        self.port_condition_with(port, &exclusions)
    }

    fn port_condition_with(&self, port: usize, exclusions: &[Vec<usize>]) -> Condition {
        let conds: Vec<Condition> = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.port == port)
            .map(|(i, _)| self.entry_condition_with(i, exclusions))
            .collect();
        Condition::or(conds)
    }

    /// Per-interface conditions for every interface in use, sharing one
    /// exclusion index (use this when generating a full router model).
    pub fn port_conditions(&self) -> Vec<(usize, Condition)> {
        let exclusions = self.exclusion_index();
        self.ports_in_use()
            .into_iter()
            .map(|p| (p, self.port_condition_with(p, &exclusions)))
            .collect()
    }

    /// Total number of prefix checks in the grouped model (the paper reports
    /// 371,000 checks for the 188,500-entry table).
    pub fn total_prefix_checks(&self) -> usize {
        let exclusions = self.exclusion_index();
        self.entries.len() + exclusions.iter().map(Vec::len).sum::<usize>()
    }
}

/// The *basic* router model: one `If` per prefix, most specific first.
pub fn router_basic(name: &str, fib: &Fib) -> ElementProgram {
    let mut order: Vec<usize> = (0..fib.entries.len()).collect();
    // Most specific prefixes are checked first so plain nesting is correct.
    order.sort_by_key(|&i| std::cmp::Reverse(fib.entries[i].prefix_len));
    let mut code = Instruction::fail("no route");
    for &i in order.iter().rev() {
        let entry = fib.entries[i];
        code = Instruction::if_else(
            Condition::matches_ipv4_prefix(ip_dst().field(), entry.prefix as u64, entry.prefix_len),
            Instruction::forward(entry.port),
            code,
        );
    }
    ElementProgram::new(name, fib.port_count, fib.port_count).with_any_input_code(code)
}

/// The *ingress* router model: prefixes grouped per interface with LPM
/// exclusion constraints, applied as nested `If`s on the input port.
pub fn router_ingress(name: &str, fib: &Fib) -> ElementProgram {
    let mut code = Instruction::fail("no route");
    for (port, cond) in fib.port_conditions().into_iter().rev() {
        code = Instruction::if_else(cond, Instruction::forward(port), code);
    }
    ElementProgram::new(name, fib.port_count, fib.port_count).with_any_input_code(code)
}

/// The *egress* router model: fork to every interface in use and constrain the
/// destination per output port — the fastest variant in Table 2.
pub fn router_egress(name: &str, fib: &Fib) -> ElementProgram {
    let ports = fib.ports_in_use();
    let mut program = ElementProgram::new(name, fib.port_count, fib.port_count)
        .with_any_input_code(Instruction::fork(ports));
    for (port, cond) in fib.port_conditions() {
        program.set_output_code(port, Instruction::constrain(cond));
    }
    program
}

/// A router that additionally decrements the TTL and drops expired packets —
/// used by the scenario topologies where forwarding loops must eventually
/// terminate.
pub fn router_egress_with_ttl(name: &str, fib: &Fib) -> ElementProgram {
    use symnet_sefl::fields::ip_ttl;
    use symnet_sefl::Expr;
    let ports = fib.ports_in_use();
    let mut program = ElementProgram::new(name, fib.port_count, fib.port_count)
        .with_any_input_code(Instruction::block(vec![
            Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
            Instruction::assign(ip_ttl().field(), Expr::reference(ip_ttl().field()).minus(1)),
            Instruction::fork(ports),
        ]));
    for (port, cond) in fib.port_conditions() {
        program.set_output_code(port, Instruction::constrain(cond));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::verify::allowed_values;
    use symnet_sefl::packet::symbolic_l3_tcp_packet;

    /// The example forwarding table from §7 of the paper.
    fn paper_fib() -> Fib {
        let mut fib = Fib::new(2);
        fib.add(0xc0a80001, 32, 0) // 192.168.0.1/32  -> If0
            .add(0x0a000000, 8, 0) // 10.0.0.0/8      -> If0
            .add(0xc0a80000, 24, 1) // 192.168.0.0/24 -> If1
            .add(0x0a0a0001, 32, 1); // 10.10.0.1/32  -> If1
        fib
    }

    fn run(
        program: ElementProgram,
    ) -> (symnet_core::engine::ExecutionReport, symnet_core::ElementId) {
        let mut net = Network::new();
        let id = net.add_element(program);
        let engine = SymNet::new(net);
        (engine.inject(id, 0, &symbolic_l3_tcp_packet()), id)
    }

    #[test]
    fn covers_and_matches() {
        let wide = FibEntry {
            prefix: 0x0a000000,
            prefix_len: 8,
            port: 0,
        };
        let narrow = FibEntry {
            prefix: 0x0a0a0001,
            prefix_len: 32,
            port: 1,
        };
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
        assert!(wide.matches(0x0a0a0001));
        assert!(narrow.matches(0x0a0a0001));
        assert!(!narrow.matches(0x0a0a0002));
        let default = FibEntry {
            prefix: 0,
            prefix_len: 0,
            port: 0,
        };
        assert!(default.covers(&wide));
        assert!(default.matches(0xffffffff));
    }

    #[test]
    fn lookup_uses_longest_prefix_match() {
        let fib = paper_fib();
        // The §7 motivating case: 10.10.0.1 must go to If1, not If0.
        assert_eq!(fib.lookup(0x0a0a0001), Some(1));
        assert_eq!(fib.lookup(0x0a000001), Some(0));
        assert_eq!(fib.lookup(0xc0a80001), Some(0));
        assert_eq!(fib.lookup(0xc0a80002), Some(1));
        assert_eq!(fib.lookup(0x08080808), None);
    }

    #[test]
    fn all_three_models_respect_lpm_on_the_paper_example() {
        let fib = paper_fib();
        for model in [
            router_basic("r", &fib),
            router_ingress("r", &fib),
            router_egress("r", &fib),
        ] {
            let (report, id) = run(model);
            // The basic model has several paths per interface (one per entry);
            // aggregate the admissible destinations per interface.
            let allowed_on = |port: usize| {
                report
                    .delivered_at(id, port)
                    .filter_map(|p| allowed_values(p, &ip_dst().field()))
                    .fold(symnet_solver::IntervalSet::empty(), |acc, s| acc.union(&s))
            };
            // 10.10.0.1 is admissible only on interface 1 (LPM), while the rest
            // of 10.0.0.0/8 still goes to interface 0.
            let allowed0 = allowed_on(0);
            assert!(!allowed0.contains(0x0a0a0001), "LPM violated on If0");
            assert!(allowed0.contains(0x0a000001));
            assert!(allowed_on(1).contains(0x0a0a0001));
        }
    }

    #[test]
    fn grouped_models_have_one_path_per_interface() {
        let fib = Fib::synthetic(300, 8);
        let (ingress, _) = run(router_ingress("r", &fib));
        let (egress, _) = run(router_egress("r", &fib));
        let ports = fib.ports_in_use().len();
        assert_eq!(ingress.delivered().count(), ports);
        assert_eq!(egress.delivered().count(), ports);
        // The basic model produces one path per prefix instead.
        let (basic, _) = run(router_basic("r", &fib));
        assert_eq!(basic.delivered().count(), fib.len());
    }

    #[test]
    fn synthetic_fib_is_deterministic_and_has_overlaps() {
        let a = Fib::synthetic(500, 4);
        let b = Fib::synthetic(500, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 500);
        let overlaps = a.entries.iter().enumerate().any(|(i, e)| {
            a.entries
                .iter()
                .skip(i + 1)
                .any(|o| e.covers(o) || o.covers(e))
        });
        assert!(overlaps, "synthetic FIB must contain nested prefixes");
        assert!(a.total_prefix_checks() >= a.len());
    }

    #[test]
    fn truncation_keeps_prefix_counts() {
        let fib = Fib::synthetic(1000, 4);
        assert_eq!(fib.truncated(10).len(), 10);
        assert_eq!(fib.truncated(10_000).len(), 1000);
    }

    #[test]
    fn ttl_router_drops_expired_packets() {
        use symnet_sefl::fields::ip_ttl;
        use symnet_sefl::{Expr, Instruction};
        let fib = paper_fib();
        let mut net = Network::new();
        let id = net.add_element(router_egress_with_ttl("r", &fib));
        let engine = SymNet::new(net);
        let dead = Instruction::block(vec![
            symbolic_l3_tcp_packet(),
            Instruction::assign(ip_ttl().field(), Expr::constant(0)),
        ]);
        let report = engine.inject(id, 0, &dead);
        assert_eq!(report.delivered().count(), 0);
        let alive = Instruction::block(vec![
            symbolic_l3_tcp_packet(),
            Instruction::assign(ip_ttl().field(), Expr::constant(64)),
        ]);
        let report = engine.inject(id, 0, &alive);
        assert!(report.delivered().count() >= 1);
    }
}
