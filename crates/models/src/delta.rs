//! Typed rule deltas for the resident verification service.
//!
//! SymNet's element programs are *compiled* from rule tables — MAC tables,
//! FIBs, NAT configurations, ACL rule lists. A control-plane event (a MAC is
//! learned, a route is withdrawn, an ACL line is inserted) therefore maps to:
//! mutate the table, recompile the one affected element's program, and hand
//! the new program to [`VerifyService::apply_update`], which invalidates
//! exactly the path suffixes that traversed that element.
//!
//! [`Delta`] is the typed vocabulary of such events and [`RuleTables`] is the
//! driver that owns the authoritative table state per element and performs
//! the mutate → recompile → apply step. The tables live *outside* the
//! [`Network`](symnet_core::network::Network) on purpose: the network holds
//! only compiled programs, so the service core stays generic over models.
//!
//! ```
//! use symnet_core::{ExecConfig, VerifyService};
//! use symnet_core::network::Network;
//! use symnet_models::delta::{Delta, RuleTables, SwitchModel};
//! use symnet_models::switch::{switch_egress, MacTable};
//! use symnet_sefl::packet::symbolic_tcp_packet;
//!
//! let mut table = MacTable::new(2);
//! table.add(0xaa, None, 0);
//! let mut net = Network::new();
//! let sw = net.add_element(switch_egress("sw", &table));
//! let mut tables = RuleTables::new();
//! tables.register_switch(sw, "sw", table, SwitchModel::Egress);
//!
//! let mut service = VerifyService::new(net, ExecConfig::default());
//! let q = service.add_query("reach", sw, 0, symbolic_tcp_packet());
//! service.verify(q).unwrap();
//! let stats = tables
//!     .apply(&mut service, &Delta::MacLearn { element: sw, mac: 0xbb, vlan: None, port: 1 })
//!     .unwrap();
//! assert!(stats.is_some(), "a new MAC entry must recompile the switch");
//! ```

use crate::acl::{acl_filter, AclRule, AclTable};
use crate::nat::{nat, NatConfig};
use crate::router::{router_basic, router_egress, router_egress_with_ttl, router_ingress, Fib};
use crate::switch::{switch_basic, switch_egress, switch_egress_vlan, switch_ingress, MacTable};
use std::collections::BTreeMap;
use std::fmt;
use symnet_core::network::ElementId;
use symnet_core::{UpdateStats, VerifyService};
use symnet_sefl::ElementProgram;

/// Which switch model a registered MAC table compiles to (§7 evaluates all
/// three; egress is the scalable default).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SwitchModel {
    /// One `If` per table entry ([`switch_basic`]).
    Basic,
    /// Per-port nested `If`s ([`switch_ingress`]).
    Ingress,
    /// Fork-then-constrain ([`switch_egress`]).
    Egress,
    /// Fork-then-constrain with VLAN constraints ([`switch_egress_vlan`]).
    EgressVlan,
}

/// Which router model a registered FIB compiles to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterModel {
    /// Longest-prefix `If` chain ([`router_basic`]).
    Basic,
    /// Per-port nested `If`s ([`router_ingress`]).
    Ingress,
    /// Fork-then-constrain ([`router_egress`]).
    Egress,
    /// Fork-then-constrain plus TTL decrement ([`router_egress_with_ttl`]).
    EgressTtl,
}

/// A control-plane event, typed per table kind (the ISSUE's delta taxonomy:
/// MAC learn/age, LPM route add/withdraw, NAT binding churn, ACL edits).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Delta {
    /// A switch learned `mac` (optionally on `vlan`) behind `port`.
    MacLearn {
        /// The switch element.
        element: ElementId,
        /// The learned MAC address.
        mac: u64,
        /// VLAN the entry applies to, if any.
        vlan: Option<u64>,
        /// Output port the MAC now lives behind.
        port: usize,
    },
    /// A switch aged out (or was told to flush) `mac`.
    MacAge {
        /// The switch element.
        element: ElementId,
        /// The aged-out MAC address.
        mac: u64,
        /// VLAN the entry applied to, if any.
        vlan: Option<u64>,
    },
    /// A route was announced to a router.
    RouteAdd {
        /// The router element.
        element: ElementId,
        /// Route prefix.
        prefix: u32,
        /// Prefix length in bits.
        prefix_len: u8,
        /// Output port of the route.
        port: usize,
    },
    /// A route was withdrawn from a router.
    RouteWithdraw {
        /// The router element.
        element: ElementId,
        /// Route prefix.
        prefix: u32,
        /// Prefix length in bits.
        prefix_len: u8,
    },
    /// A NAT's binding configuration churned (new public address or port
    /// range).
    NatRebind {
        /// The NAT element.
        element: ElementId,
        /// The replacement configuration.
        config: NatConfig,
    },
    /// An ACL line was inserted at `index` (clamped to the list length).
    AclInsert {
        /// The filter element.
        element: ElementId,
        /// Position in the first-match-wins list.
        index: usize,
        /// The new rule.
        rule: AclRule,
    },
    /// The ACL line at `index` was removed.
    AclRemove {
        /// The filter element.
        element: ElementId,
        /// Position of the removed rule.
        index: usize,
    },
}

impl Delta {
    /// The element this delta targets.
    pub fn element(&self) -> ElementId {
        match *self {
            Delta::MacLearn { element, .. }
            | Delta::MacAge { element, .. }
            | Delta::RouteAdd { element, .. }
            | Delta::RouteWithdraw { element, .. }
            | Delta::NatRebind { element, .. }
            | Delta::AclInsert { element, .. }
            | Delta::AclRemove { element, .. } => element,
        }
    }
}

/// Why a delta could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The target element was never registered with the [`RuleTables`].
    UnknownElement(ElementId),
    /// The delta's kind does not match the element's table (e.g. a
    /// `RouteAdd` aimed at a switch).
    WrongTable {
        /// The target element.
        element: ElementId,
        /// The table kind the delta requires.
        expected: &'static str,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::UnknownElement(id) => {
                write!(f, "element {id} has no registered rule table")
            }
            DeltaError::WrongTable { element, expected } => {
                write!(f, "element {element} is not a {expected}")
            }
        }
    }
}

impl std::error::Error for DeltaError {}

/// The rule table behind one element, plus the model it compiles to.
enum ElementTables {
    Switch { table: MacTable, model: SwitchModel },
    Router { fib: Fib, model: RouterModel },
    Nat { config: NatConfig },
    Acl { table: AclTable },
}

struct Registered {
    name: String,
    tables: ElementTables,
}

/// The authoritative rule-table state of a verified network: one table per
/// delta-capable element, with enough information to recompile that
/// element's program after any [`Delta`].
#[derive(Default)]
pub struct RuleTables {
    elements: BTreeMap<ElementId, Registered>,
}

impl RuleTables {
    /// An empty registry.
    pub fn new() -> RuleTables {
        RuleTables::default()
    }

    /// Registers a switch's MAC table. The table must be the one the
    /// element's current program was compiled from.
    pub fn register_switch(
        &mut self,
        element: ElementId,
        name: &str,
        table: MacTable,
        model: SwitchModel,
    ) {
        self.insert(element, name, ElementTables::Switch { table, model });
    }

    /// Registers a router's FIB.
    pub fn register_router(
        &mut self,
        element: ElementId,
        name: &str,
        fib: Fib,
        model: RouterModel,
    ) {
        self.insert(element, name, ElementTables::Router { fib, model });
    }

    /// Registers a NAT's configuration.
    pub fn register_nat(&mut self, element: ElementId, name: &str, config: NatConfig) {
        self.insert(element, name, ElementTables::Nat { config });
    }

    /// Registers a filter's ACL table.
    pub fn register_acl(&mut self, element: ElementId, name: &str, table: AclTable) {
        self.insert(element, name, ElementTables::Acl { table });
    }

    fn insert(&mut self, element: ElementId, name: &str, tables: ElementTables) {
        self.elements.insert(
            element,
            Registered {
                name: name.to_string(),
                tables,
            },
        );
    }

    /// Compiles the current table of `element` into a fresh program, or
    /// `None` if the element has no registered table.
    pub fn program(&self, element: ElementId) -> Option<ElementProgram> {
        self.elements.get(&element).map(Registered::compile)
    }

    /// Iterates over every registered element as `(id, name, table view)` —
    /// the read-only inventory the fuzzer's mutation generator samples from
    /// (which elements exist, what kind of table each has, and which entries
    /// a withdraw/age delta could target).
    pub fn registered(&self) -> impl Iterator<Item = (ElementId, &str, TableView<'_>)> {
        self.elements
            .iter()
            .map(|(id, r)| (*id, r.name.as_str(), r.tables.view()))
    }

    /// A read-only view of one element's table, if registered.
    pub fn view(&self, element: ElementId) -> Option<TableView<'_>> {
        self.elements.get(&element).map(|r| r.tables.view())
    }

    /// Permutes the entry order of `element`'s table with a seeded
    /// Fisher–Yates shuffle and publishes the recompiled program — a
    /// *semantics-preserving* mutation: MAC tables and LPM FIBs are sets, so
    /// the recompiled program must route identically even though its
    /// syntactic shape (fork order, `Or` operand order, exclusion lists)
    /// changes. The differential fuzzer uses this to shake out any
    /// order-dependence in compilation or exploration.
    ///
    /// `Ok(None)` when nothing was published: the element's table has fewer
    /// than two entries or is not entry-ordered (NAT configs), or the drawn
    /// permutation was the identity.
    pub fn shuffle_with<R>(
        &mut self,
        element: ElementId,
        seed: u64,
        publish: impl FnOnce(ElementId, ElementProgram) -> R,
    ) -> Result<Option<R>, DeltaError> {
        let registered = self
            .elements
            .get_mut(&element)
            .ok_or(DeltaError::UnknownElement(element))?;
        let changed = match &mut registered.tables {
            ElementTables::Switch { table, .. } => shuffle_entries(&mut table.entries, seed),
            ElementTables::Router { fib, .. } => shuffle_entries(&mut fib.entries, seed),
            ElementTables::Nat { .. } | ElementTables::Acl { .. } => false,
        };
        if !changed {
            return Ok(None);
        }
        Ok(Some(publish(element, registered.compile())))
    }

    /// Applies a delta: mutates the table, recompiles the element's program
    /// and hands it to the service (which invalidates the affected path
    /// suffixes).
    ///
    /// Returns `Ok(None)` when the delta is a no-op on the table (e.g.
    /// re-learning a MAC behind the port it is already on, or withdrawing a
    /// route that was never announced) — the program is *not* recompiled and
    /// no verification state is invalidated.
    pub fn apply(
        &mut self,
        service: &mut VerifyService,
        delta: &Delta,
    ) -> Result<Option<UpdateStats>, DeltaError> {
        self.apply_with(delta, |element, program| {
            service.apply_update(element, program)
        })
    }

    /// Applies a delta against the tables alone and hands the recompiled
    /// program to `publish` — the generic form of [`RuleTables::apply`] that
    /// lets any epoch publisher consume deltas. The concurrent server is the
    /// other caller: `tables.apply_with(&delta, |el, prog|
    /// handle.apply_delta(el, prog))` keeps a [`ServeHandle`]'s topology the
    /// compiled truth of these tables without the server depending on this
    /// crate.
    ///
    /// As with [`RuleTables::apply`], `Ok(None)` means the delta was a no-op
    /// on its table and nothing was published.
    ///
    /// [`ServeHandle`]: symnet_core::server::ServeHandle
    pub fn apply_with<R>(
        &mut self,
        delta: &Delta,
        publish: impl FnOnce(ElementId, ElementProgram) -> R,
    ) -> Result<Option<R>, DeltaError> {
        let element = delta.element();
        let registered = self
            .elements
            .get_mut(&element)
            .ok_or(DeltaError::UnknownElement(element))?;
        let changed = registered.tables.mutate(element, delta)?;
        if !changed {
            return Ok(None);
        }
        Ok(Some(publish(element, registered.compile())))
    }
}

/// A read-only view of one registered element's rule table, typed by kind.
#[derive(Clone, Copy, Debug)]
pub enum TableView<'a> {
    /// A switch's MAC table.
    Switch(&'a MacTable),
    /// A router's FIB.
    Router(&'a Fib),
    /// A NAT's binding configuration.
    Nat(&'a NatConfig),
    /// A filter's ACL rule list.
    Acl(&'a AclTable),
}

/// Applies a seeded Fisher–Yates shuffle to `entries`; `true` iff the order
/// actually changed. Uses a splitmix64 stream so the models crate stays free
/// of the `rand` dependency while the permutation remains a pure function of
/// the seed.
fn shuffle_entries<T>(entries: &mut [T], seed: u64) -> bool {
    if entries.len() < 2 {
        return false;
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut changed = false;
    for i in (1..entries.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        if i != j {
            entries.swap(i, j);
            changed = true;
        }
    }
    changed
}

impl Registered {
    fn compile(&self) -> ElementProgram {
        match &self.tables {
            ElementTables::Switch { table, model } => match model {
                SwitchModel::Basic => switch_basic(&self.name, table),
                SwitchModel::Ingress => switch_ingress(&self.name, table),
                SwitchModel::Egress => switch_egress(&self.name, table),
                SwitchModel::EgressVlan => switch_egress_vlan(&self.name, table),
            },
            ElementTables::Router { fib, model } => match model {
                RouterModel::Basic => router_basic(&self.name, fib),
                RouterModel::Ingress => router_ingress(&self.name, fib),
                RouterModel::Egress => router_egress(&self.name, fib),
                RouterModel::EgressTtl => router_egress_with_ttl(&self.name, fib),
            },
            ElementTables::Nat { config } => nat(&self.name, *config),
            ElementTables::Acl { table } => acl_filter(&self.name, table),
        }
    }
}

impl ElementTables {
    /// The read-only view of this table.
    fn view(&self) -> TableView<'_> {
        match self {
            ElementTables::Switch { table, .. } => TableView::Switch(table),
            ElementTables::Router { fib, .. } => TableView::Router(fib),
            ElementTables::Nat { config } => TableView::Nat(config),
            ElementTables::Acl { table } => TableView::Acl(table),
        }
    }

    /// Applies the delta to the table; `Ok(true)` iff the table changed.
    fn mutate(&mut self, element: ElementId, delta: &Delta) -> Result<bool, DeltaError> {
        let wrong = |expected: &'static str| DeltaError::WrongTable { element, expected };
        match delta {
            Delta::MacLearn {
                mac, vlan, port, ..
            } => match self {
                ElementTables::Switch { table, .. } => Ok(table.learn(*mac, *vlan, *port)),
                _ => Err(wrong("switch")),
            },
            Delta::MacAge { mac, vlan, .. } => match self {
                ElementTables::Switch { table, .. } => Ok(table.remove(*mac, *vlan)),
                _ => Err(wrong("switch")),
            },
            Delta::RouteAdd {
                prefix,
                prefix_len,
                port,
                ..
            } => match self {
                ElementTables::Router { fib, .. } => {
                    // `Fib::add` has no change detection; an identical entry
                    // is a no-op, anything else (including a port move,
                    // modelled as withdraw + add) changes the table.
                    let exists = fib.entries.iter().any(|e| {
                        e.prefix == *prefix && e.prefix_len == *prefix_len && e.port == *port
                    });
                    if exists {
                        return Ok(false);
                    }
                    fib.withdraw(*prefix, *prefix_len);
                    fib.add(*prefix, *prefix_len, *port);
                    Ok(true)
                }
                _ => Err(wrong("router")),
            },
            Delta::RouteWithdraw {
                prefix, prefix_len, ..
            } => match self {
                ElementTables::Router { fib, .. } => Ok(fib.withdraw(*prefix, *prefix_len)),
                _ => Err(wrong("router")),
            },
            Delta::NatRebind { config, .. } => match self {
                ElementTables::Nat { config: current } => {
                    if current == config {
                        return Ok(false);
                    }
                    *current = *config;
                    Ok(true)
                }
                _ => Err(wrong("nat")),
            },
            Delta::AclInsert { index, rule, .. } => match self {
                ElementTables::Acl { table } => {
                    table.insert(*index, *rule);
                    Ok(true)
                }
                _ => Err(wrong("acl")),
            },
            Delta::AclRemove { index, .. } => match self {
                ElementTables::Acl { table } => Ok(table.remove(*index)),
                _ => Err(wrong("acl")),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::network::Network;
    use symnet_core::ExecConfig;
    use symnet_sefl::packet::symbolic_tcp_packet;

    fn switch_service() -> (VerifyService, RuleTables, ElementId) {
        let mut table = MacTable::new(4);
        table.add(0xaa, None, 0).add(0xbb, None, 1);
        let mut net = Network::new();
        let sw = net.add_element(switch_egress("sw", &table));
        let mut tables = RuleTables::new();
        tables.register_switch(sw, "sw", table, SwitchModel::Egress);
        let mut service = VerifyService::new(net, ExecConfig::default());
        let q = service.add_query("all", sw, 0, symbolic_tcp_packet());
        service.verify(q).unwrap();
        (service, tables, sw)
    }

    #[test]
    fn mac_learn_and_age_drive_the_service() {
        let (mut service, mut tables, sw) = switch_service();
        let learned = tables
            .apply(
                &mut service,
                &Delta::MacLearn {
                    element: sw,
                    mac: 0xcc,
                    vlan: None,
                    port: 2,
                },
            )
            .unwrap();
        assert!(learned.is_some());
        // Re-learning the same entry is a no-op: no invalidation at all.
        let relearn = tables
            .apply(
                &mut service,
                &Delta::MacLearn {
                    element: sw,
                    mac: 0xcc,
                    vlan: None,
                    port: 2,
                },
            )
            .unwrap();
        assert!(relearn.is_none());
        let aged = tables
            .apply(
                &mut service,
                &Delta::MacAge {
                    element: sw,
                    mac: 0xcc,
                    vlan: None,
                },
            )
            .unwrap();
        assert!(aged.is_some());
        // The table round-tripped, so verification sees the original network
        // again: three delivered paths would mean the learn leaked through.
        let q = service.query_ids().next().unwrap();
        let report = service.verify(q).unwrap();
        assert_eq!(report.report.delivered().count(), 2);
    }

    #[test]
    fn wrong_kind_and_unknown_element_are_rejected() {
        let (mut service, mut tables, sw) = switch_service();
        let err = tables
            .apply(
                &mut service,
                &Delta::RouteAdd {
                    element: sw,
                    prefix: 0x0a000000,
                    prefix_len: 8,
                    port: 0,
                },
            )
            .unwrap_err();
        assert_eq!(
            err,
            DeltaError::WrongTable {
                element: sw,
                expected: "router"
            }
        );
        let ghost = ElementId(99);
        let err = tables
            .apply(
                &mut service,
                &Delta::MacAge {
                    element: ghost,
                    mac: 1,
                    vlan: None,
                },
            )
            .unwrap_err();
        assert_eq!(err, DeltaError::UnknownElement(ghost));
        assert!(err.to_string().contains("no registered rule table"));
    }

    #[test]
    fn route_and_nat_and_acl_deltas_mutate_their_tables() {
        let mut fib = Fib::new(2);
        fib.add(0x0a000000, 8, 0);
        let mut net = Network::new();
        let r = net.add_element(router_egress("r", &fib));
        let n = net.add_element(nat("n", NatConfig::default()));
        let a = net.add_element(acl_filter("a", &AclTable::new()));
        let mut tables = RuleTables::new();
        tables.register_router(r, "r", fib, RouterModel::Egress);
        tables.register_nat(n, "n", NatConfig::default());
        tables.register_acl(a, "a", AclTable::new());
        let mut service = VerifyService::new(net, ExecConfig::default());

        // Announce, duplicate-announce (no-op), withdraw, double-withdraw.
        let add = Delta::RouteAdd {
            element: r,
            prefix: 0x0b000000,
            prefix_len: 8,
            port: 1,
        };
        assert!(tables.apply(&mut service, &add).unwrap().is_some());
        assert!(tables.apply(&mut service, &add).unwrap().is_none());
        let withdraw = Delta::RouteWithdraw {
            element: r,
            prefix: 0x0b000000,
            prefix_len: 8,
        };
        assert!(tables.apply(&mut service, &withdraw).unwrap().is_some());
        assert!(tables.apply(&mut service, &withdraw).unwrap().is_none());

        // NAT rebind: identical config is a no-op, a new port range is not.
        let same = Delta::NatRebind {
            element: n,
            config: NatConfig::default(),
        };
        assert!(tables.apply(&mut service, &same).unwrap().is_none());
        let rebind = Delta::NatRebind {
            element: n,
            config: NatConfig {
                port_low: 2048,
                ..NatConfig::default()
            },
        };
        assert!(tables.apply(&mut service, &rebind).unwrap().is_some());

        // ACL edits.
        let permit = Delta::AclInsert {
            element: a,
            index: 0,
            rule: AclRule::permit_any(),
        };
        assert!(tables.apply(&mut service, &permit).unwrap().is_some());
        assert!(tables
            .apply(
                &mut service,
                &Delta::AclRemove {
                    element: a,
                    index: 0
                }
            )
            .unwrap()
            .is_some());
        assert!(tables
            .apply(
                &mut service,
                &Delta::AclRemove {
                    element: a,
                    index: 0
                }
            )
            .unwrap()
            .is_none());
    }
}
