//! The Cisco ASA 5510 model (§7.2).
//!
//! The ASA combines layer-2 forwarding, static and dynamic NAT, stateful TCP
//! inspection, access-list filtering and TCP-options normalisation. The paper
//! models it as a Click pipeline generated from the ASA configuration; here
//! the same pipeline stages are assembled into a single two-sided element:
//!
//! * input 0 / output 0 — *inside → outside* traffic,
//! * input 1 / output 1 — *outside → inside* (return) traffic.
//!
//! The stages on the inside→outside direction are: ingress static NAT,
//! access-list filtering, connection recording (dynamic NAT + TCP inspection
//! state, stored in local metadata exactly like the §7 NAT), egress static NAT
//! and the TCP-options filter of Figure 7. The outside→inside direction admits
//! only traffic that matches recorded connection state (stateful inspection)
//! or an explicit static rule, then applies the reverse NAT and the options
//! filter.

use crate::tcp_options::{asa_options_code, AsaOptionsConfig};
use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields::{ip_dst, ip_proto, ip_src, ipproto, tcp_dst, tcp_src};
use symnet_sefl::{ElementProgram, Instruction};

/// A static NAT rule: rewrite the destination `outside_ip` to `inside_ip` on
/// ingress and the source `inside_ip` to `outside_ip` on egress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StaticNatRule {
    /// Globally visible address.
    pub outside_ip: u32,
    /// Real inside address.
    pub inside_ip: u32,
}

/// Configuration of the ASA model.
#[derive(Clone, Debug)]
pub struct AsaConfig {
    /// The ASA's public address used for dynamic NAT of outbound connections.
    pub public_ip: u32,
    /// Static NAT rules.
    pub static_nat: Vec<StaticNatRule>,
    /// Access-list: conditions a packet from the inside must satisfy to be
    /// allowed out (all must hold). Empty means "permit any".
    pub outbound_acl: Vec<Condition>,
    /// TCP-options normalisation settings.
    pub options: AsaOptionsConfig,
    /// Whether outbound connections are recorded so return traffic is admitted
    /// (stateful inspection). The §8.3 office/lab bug was fixed by enabling
    /// this for office→lab traffic.
    pub stateful: bool,
}

impl Default for AsaConfig {
    fn default() -> Self {
        AsaConfig {
            public_ip: 0xc0a80101,
            static_nat: Vec::new(),
            outbound_acl: Vec::new(),
            options: AsaOptionsConfig::default(),
            stateful: true,
        }
    }
}

/// Builds the ASA element.
pub fn asa(name: &str, config: &AsaConfig) -> ElementProgram {
    // ---------------- inside → outside ----------------
    let mut outbound = vec![Instruction::constrain(Condition::eq(
        ip_proto().field(),
        ipproto::TCP,
    ))];
    // Access-list filtering.
    for cond in &config.outbound_acl {
        outbound.push(Instruction::constrain(cond.clone()));
    }
    if config.stateful {
        // Record the connection (dynamic NAT + inspection state).
        outbound.extend([
            Instruction::allocate_local_meta("asa-orig-src", 32),
            Instruction::allocate_local_meta("asa-orig-sport", 16),
            Instruction::allocate_local_meta("asa-new-sport", 16),
            Instruction::allocate_local_meta("asa-dst", 32),
            Instruction::allocate_local_meta("asa-dport", 16),
            Instruction::assign(
                FieldRef::meta("asa-orig-src"),
                Expr::reference(ip_src().field()),
            ),
            Instruction::assign(
                FieldRef::meta("asa-orig-sport"),
                Expr::reference(tcp_src().field()),
            ),
            Instruction::assign(FieldRef::meta("asa-dst"), Expr::reference(ip_dst().field())),
            Instruction::assign(
                FieldRef::meta("asa-dport"),
                Expr::reference(tcp_dst().field()),
            ),
            // Dynamic NAT: source becomes the public address with a fresh port.
            Instruction::assign(ip_src().field(), Expr::constant(config.public_ip as u64)),
            Instruction::assign(tcp_src().field(), Expr::symbolic()),
            Instruction::constrain(Condition::ge(tcp_src().field(), 1024u64)),
            Instruction::assign(
                FieldRef::meta("asa-new-sport"),
                Expr::reference(tcp_src().field()),
            ),
        ]);
    }
    // Egress static NAT: if the (already NATted) source matches an inside
    // address with a static mapping, expose the mapped outside address.
    for rule in &config.static_nat {
        outbound.push(Instruction::if_then(
            Condition::eq(ip_src().field(), rule.inside_ip as u64),
            Instruction::assign(ip_src().field(), Expr::constant(rule.outside_ip as u64)),
        ));
    }
    // TCP options normalisation, then out.
    outbound.push(asa_options_code(&config.options));
    outbound.push(Instruction::forward(0));

    // ---------------- outside → inside ----------------
    let mut inbound = vec![Instruction::constrain(Condition::eq(
        ip_proto().field(),
        ipproto::TCP,
    ))];
    // Ingress static NAT.
    for rule in &config.static_nat {
        inbound.push(Instruction::if_then(
            Condition::eq(ip_dst().field(), rule.outside_ip as u64),
            Instruction::assign(ip_dst().field(), Expr::constant(rule.inside_ip as u64)),
        ));
    }
    if config.stateful {
        // Stateful inspection: only replies to a recorded connection pass.
        inbound.extend([
            Instruction::constrain(Condition::eq(
                ip_dst().field(),
                Expr::constant(config.public_ip as u64),
            )),
            Instruction::constrain(Condition::eq(
                tcp_dst().field(),
                Expr::reference(FieldRef::meta("asa-new-sport")),
            )),
            Instruction::constrain(Condition::eq(
                ip_src().field(),
                Expr::reference(FieldRef::meta("asa-dst")),
            )),
            Instruction::constrain(Condition::eq(
                tcp_src().field(),
                Expr::reference(FieldRef::meta("asa-dport")),
            )),
            // Undo the dynamic NAT.
            Instruction::assign(
                ip_dst().field(),
                Expr::reference(FieldRef::meta("asa-orig-src")),
            ),
            Instruction::assign(
                tcp_dst().field(),
                Expr::reference(FieldRef::meta("asa-orig-sport")),
            ),
        ]);
    }
    inbound.push(asa_options_code(&config.options));
    inbound.push(Instruction::forward(1));

    ElementProgram::new(name, 2, 2)
        .with_input_code(0, Instruction::block(outbound))
        .with_input_code(1, Instruction::block(inbound))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::click::ip_mirror;
    use crate::tcp_options::{opt_key, option_kind};
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::value::Value;
    use symnet_sefl::packet::symbolic_tcp_packet;

    fn tcp_with_options() -> Instruction {
        Instruction::block(vec![
            symbolic_tcp_packet(),
            crate::tcp_options::symbolic_options_metadata(),
            Instruction::constrain(Condition::ne(
                ip_src().field(),
                Expr::reference(ip_dst().field()),
            )),
            Instruction::constrain(Condition::lt(tcp_src().field(), 1024u64)),
            Instruction::constrain(Condition::ne(ip_src().field(), 0xc0a80101u64)),
        ])
    }

    #[test]
    fn asa_does_not_branch_beyond_its_ports() {
        let program = asa("asa", &AsaConfig::default());
        // Static NAT + options introduce a handful of If instructions but the
        // branching factor stays small and independent of table sizes.
        assert!(program.max_branching() <= 8);
    }

    #[test]
    fn outbound_traffic_is_natted_and_options_normalised() {
        let mut net = Network::new();
        let a = net.add_element(asa("asa", &AsaConfig::default()));
        let engine = SymNet::new(net);
        let report = engine.inject(a, 0, &tcp_with_options());
        assert!(report.delivered_at(a, 0).count() >= 1);
        for path in report.delivered_at(a, 0) {
            let src = path.state.read_field(&ip_src().field(), "").unwrap();
            assert_eq!(src.value, Value::Concrete(0xc0a80101));
            assert_eq!(
                path.state
                    .read_meta(&opt_key(option_kind::MPTCP))
                    .unwrap()
                    .value,
                Value::Concrete(0),
                "MPTCP options are removed by the default ASA configuration"
            );
        }
    }

    #[test]
    fn return_traffic_is_admitted_and_translated_back() {
        let mut net = Network::new();
        let a = net.add_element(asa("asa", &AsaConfig::default()));
        let m = net.add_element(ip_mirror("outside"));
        net.add_link(a, 0, m, 0);
        net.add_link(m, 0, a, 1);
        let engine = SymNet::new(net);
        let report = engine.inject(a, 0, &tcp_with_options());
        assert!(report.delivered_at(a, 1).count() >= 1);
        let path = report.delivered_at(a, 1).next().unwrap();
        let orig_src = report.injected.read_field(&ip_src().field(), "").unwrap();
        let final_dst = path.state.read_field(&ip_dst().field(), "").unwrap();
        assert_eq!(orig_src.value, final_dst.value);
    }

    #[test]
    fn unsolicited_outside_traffic_is_dropped_when_stateful() {
        let mut net = Network::new();
        let a = net.add_element(asa("asa", &AsaConfig::default()));
        let engine = SymNet::new(net);
        let report = engine.inject(a, 1, &tcp_with_options());
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn static_nat_exposes_inside_servers() {
        let rule = StaticNatRule {
            outside_ip: 0x08080801,
            inside_ip: 0x0a000005,
        };
        let config = AsaConfig {
            static_nat: vec![rule],
            stateful: false,
            ..AsaConfig::default()
        };
        let mut net = Network::new();
        let a = net.add_element(asa("asa", &config));
        let engine = SymNet::new(net);
        let inbound = Instruction::block(vec![
            tcp_with_options(),
            Instruction::assign(ip_dst().field(), Expr::constant(rule.outside_ip as u64)),
        ]);
        let report = engine.inject(a, 1, &inbound);
        assert!(report.delivered_at(a, 1).count() >= 1);
        let path = report.delivered_at(a, 1).next().unwrap();
        let dst = path.state.read_field(&ip_dst().field(), "").unwrap();
        assert_eq!(dst.value, Value::Concrete(rule.inside_ip as u64));
    }

    #[test]
    fn outbound_acl_filters_traffic() {
        let config = AsaConfig {
            outbound_acl: vec![Condition::eq(tcp_dst().field(), 443u64)],
            ..AsaConfig::default()
        };
        let mut net = Network::new();
        let a = net.add_element(asa("asa", &config));
        let engine = SymNet::new(net);
        let http_only = Instruction::block(vec![
            tcp_with_options(),
            Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
        ]);
        let report = engine.inject(a, 0, &http_only);
        assert_eq!(
            report.delivered().count(),
            0,
            "ACL must drop non-443 traffic"
        );
    }
}
