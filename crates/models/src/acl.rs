//! Access-control-list filter model.
//!
//! SymNet's firewall discussion (§4.3, §8) models filtering devices whose
//! behaviour is a first-match-wins rule list over the 5-tuple. This module
//! provides the rule-table side of that model: an [`AclTable`] of
//! [`AclRule`]s and an [`acl_filter`] builder that compiles the table into a
//! one-in/one-out SEFL element. Like the MAC and FIB tables, the `AclTable`
//! is plain data — the resident service re-compiles it into a fresh
//! [`ElementProgram`] after every ACL edit delta.

use symnet_sefl::cond::Condition;
use symnet_sefl::fields::{ip_dst, ip_proto, ip_src, tcp_dst};
use symnet_sefl::{ElementProgram, Instruction};

/// What a matching rule does with the packet.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AclAction {
    /// Forward the packet out of port 0.
    Permit,
    /// Drop the packet (the path fails with "Acl deny").
    Deny,
}

/// One ACL rule. Every field is optional; `None` matches anything, so a rule
/// with all fields `None` is a catch-all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AclRule {
    /// Source prefix as `(address, prefix_len)`.
    pub src: Option<(u32, u8)>,
    /// Destination prefix as `(address, prefix_len)`.
    pub dst: Option<(u32, u8)>,
    /// Exact IP protocol number.
    pub proto: Option<u64>,
    /// Exact TCP destination port.
    pub dst_port: Option<u64>,
    /// Action on match.
    pub action: AclAction,
}

impl AclRule {
    /// A rule that permits everything (place last for default-permit lists).
    pub fn permit_any() -> AclRule {
        AclRule {
            src: None,
            dst: None,
            proto: None,
            dst_port: None,
            action: AclAction::Permit,
        }
    }

    /// The match condition of this rule ([`Condition::True`] for a
    /// catch-all).
    pub fn condition(&self) -> Condition {
        let mut parts = Vec::new();
        if let Some((prefix, len)) = self.src {
            parts.push(Condition::matches_ipv4_prefix(
                ip_src().field(),
                prefix as u64,
                len,
            ));
        }
        if let Some((prefix, len)) = self.dst {
            parts.push(Condition::matches_ipv4_prefix(
                ip_dst().field(),
                prefix as u64,
                len,
            ));
        }
        if let Some(proto) = self.proto {
            parts.push(Condition::eq(ip_proto().field(), proto));
        }
        if let Some(port) = self.dst_port {
            parts.push(Condition::eq(tcp_dst().field(), port));
        }
        Condition::and(parts)
    }
}

/// An ordered first-match-wins rule list. Packets that match no rule are
/// denied, mirroring the implicit deny of real ACLs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AclTable {
    /// The rules, most specific first (evaluation order).
    pub rules: Vec<AclRule>,
}

impl AclTable {
    /// An empty (deny-everything) table.
    pub fn new() -> AclTable {
        AclTable::default()
    }

    /// Appends a rule at the end of the list; returns `self` for chaining.
    pub fn push(&mut self, rule: AclRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Inserts a rule at `index` (clamped to the list length). ACL edits are
    /// positional: inserting a deny above a permit shadows it.
    pub fn insert(&mut self, index: usize, rule: AclRule) {
        let index = index.min(self.rules.len());
        self.rules.insert(index, rule);
    }

    /// Removes the rule at `index`; returns `false` if out of range.
    pub fn remove(&mut self, index: usize) -> bool {
        if index < self.rules.len() {
            self.rules.remove(index);
            true
        } else {
            false
        }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when the table has no rules (implicit deny-everything).
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Compiles an ACL table into a one-in/one-out filter element.
///
/// First match wins: the rule list becomes a chain of `If`s, most specific
/// first, ending in an implicit deny. Permit forwards out of port 0.
pub fn acl_filter(name: &str, table: &AclTable) -> ElementProgram {
    let mut code = Instruction::fail("Acl deny");
    for rule in table.rules.iter().rev() {
        let hit = match rule.action {
            AclAction::Permit => Instruction::forward(0),
            AclAction::Deny => Instruction::fail("Acl deny"),
        };
        code = Instruction::if_else(rule.condition(), hit, code);
    }
    ElementProgram::new(name, 1, 1).with_any_input_code(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_sefl::packet::symbolic_tcp_packet;

    fn run(table: &AclTable) -> symnet_core::ExecutionReport {
        let mut net = Network::new();
        let acl = net.add_element(acl_filter("acl", table));
        SymNet::new(net).inject(acl, 0, &symbolic_tcp_packet())
    }

    #[test]
    fn empty_table_denies_everything() {
        let report = run(&AclTable::new());
        assert_eq!(report.delivered().count(), 0);
        assert_eq!(report.path_count(), 1);
    }

    #[test]
    fn first_match_wins() {
        // Deny 10.0.0.0/8 to port 22, permit everything else.
        let mut table = AclTable::new();
        table.push(AclRule {
            src: Some((0x0a00_0000, 8)),
            dst: None,
            proto: None,
            dst_port: Some(22),
            action: AclAction::Deny,
        });
        table.push(AclRule::permit_any());
        let report = run(&table);
        // One denied path (the specific rule), one permitted path.
        assert_eq!(report.delivered().count(), 1);
        let delivered = report.delivered().next().unwrap();
        let cond = delivered.state.path_condition().to_string();
        // The permitted path carries the negation of the deny rule.
        assert!(
            cond.contains("22"),
            "permit path must exclude the deny rule: {cond}"
        );
    }

    #[test]
    fn inserting_a_deny_shadows_a_permit() {
        let mut table = AclTable::new();
        table.push(AclRule::permit_any());
        let before = run(&table);
        assert_eq!(before.delivered().count(), 1);

        table.insert(
            0,
            AclRule {
                src: None,
                dst: None,
                proto: None,
                dst_port: None,
                action: AclAction::Deny,
            },
        );
        let after = run(&table);
        assert_eq!(after.delivered().count(), 0);
        assert!(table.remove(0));
        assert!(!table.remove(7));
    }
}
