//! The CISCO ASA TCP-options parsing model (Figure 7 and §8.2).
//!
//! The C code of Figure 1 walks the raw options bytes in a loop with branches
//! in the body, which is what makes classic symbolic execution explode
//! (Table 1). The SEFL model instead *pre-parses* the options into metadata:
//! every option kind `x` has a metadata variable `OPTx` (1 = present,
//! 0 = absent), plus `SIZEx` and `VALx` for its length and body. Stripping an
//! option is a plain assignment — no branching — and the only `If` in the
//! model is the HTTP special case, so the model symbolically executes in
//! milliseconds regardless of the options-field length.

use symnet_sefl::cond::Condition;
use symnet_sefl::expr::Expr;
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields::tcp_dst;
use symnet_sefl::{ElementProgram, Instruction};

/// TCP option kind numbers used throughout the evaluation.
pub mod option_kind {
    /// Maximum segment size.
    pub const MSS: u8 = 2;
    /// Window scale.
    pub const WSCALE: u8 = 3;
    /// SACK permitted.
    pub const SACK_OK: u8 = 4;
    /// SACK blocks.
    pub const SACK: u8 = 5;
    /// Timestamps.
    pub const TIMESTAMP: u8 = 8;
    /// Multipath TCP.
    pub const MPTCP: u8 = 30;
    /// An experimental/unknown option used to probe "new IETF transport"
    /// behaviour (§2).
    pub const EXPERIMENT: u8 = 253;
}

/// The option kinds modeled by default (the universe of `OPTx` variables).
pub fn modeled_options() -> Vec<u8> {
    vec![
        option_kind::MSS,
        option_kind::WSCALE,
        option_kind::SACK_OK,
        option_kind::SACK,
        option_kind::TIMESTAMP,
        option_kind::MPTCP,
        option_kind::EXPERIMENT,
    ]
}

/// Metadata key of the presence flag for option `kind`.
pub fn opt_key(kind: u8) -> String {
    format!("OPT{kind}")
}

/// Metadata key of the length variable for option `kind`.
pub fn size_key(kind: u8) -> String {
    format!("SIZE{kind}")
}

/// Metadata key of the value variable for option `kind`.
pub fn val_key(kind: u8) -> String {
    format!("VAL{kind}")
}

/// An instruction block that adds a fully symbolic pre-parsed options field to
/// a packet: every modeled option's presence flag is a symbolic 0/1 value and
/// its size/value are unconstrained symbols. Append this to a symbolic TCP
/// packet before injecting it.
pub fn symbolic_options_metadata() -> Instruction {
    let mut code = Vec::new();
    for kind in modeled_options() {
        let opt = opt_key(kind);
        let size = size_key(kind);
        let val = val_key(kind);
        code.push(Instruction::allocate_meta(opt.clone(), 8));
        code.push(Instruction::assign(
            FieldRef::meta(opt.clone()),
            Expr::symbolic(),
        ));
        code.push(Instruction::constrain(Condition::le(
            FieldRef::meta(opt),
            1u64,
        )));
        code.push(Instruction::allocate_meta(size.clone(), 8));
        code.push(Instruction::assign(FieldRef::meta(size), Expr::symbolic()));
        code.push(Instruction::allocate_meta(val.clone(), 32));
        code.push(Instruction::assign(FieldRef::meta(val), Expr::symbolic()));
    }
    Instruction::block(code)
}

/// Configuration of the ASA options filter.
#[derive(Clone, Debug)]
pub struct AsaOptionsConfig {
    /// Options allowed through unchanged.
    pub allowed: Vec<u8>,
    /// MSS clamp value (the default ASA configuration rewrites MSS to at most
    /// 1380).
    pub mss_clamp: u64,
    /// Strip SACK-OK for HTTP traffic (destination port 80), as in Figure 7.
    pub strip_sackok_for_http: bool,
}

impl Default for AsaOptionsConfig {
    fn default() -> Self {
        AsaOptionsConfig {
            allowed: vec![
                option_kind::MSS,
                option_kind::WSCALE,
                option_kind::SACK_OK,
                option_kind::TIMESTAMP,
            ],
            mss_clamp: 1380,
            strip_sackok_for_http: true,
        }
    }
}

/// The instruction block implementing the Figure 7 options-filter logic
/// (usable standalone or inside a larger pipeline such as the ASA model).
pub fn asa_options_code(config: &AsaOptionsConfig) -> Instruction {
    let mut code = Vec::new();
    // Strip every modeled option that is not in the allowed set — a plain
    // assignment, no branching.
    for kind in modeled_options() {
        if !config.allowed.contains(&kind) {
            code.push(Instruction::assign(
                FieldRef::meta(opt_key(kind)),
                Expr::constant(0),
            ));
        }
    }
    // SACK-OK is stripped only for HTTP traffic.
    if config.strip_sackok_for_http {
        code.push(Instruction::if_then(
            Condition::eq(tcp_dst().field(), 80u64),
            Instruction::assign(
                FieldRef::meta(opt_key(option_kind::SACK_OK)),
                Expr::constant(0),
            ),
        ));
    }
    // The MSS option is always present after the ASA (it adds one if missing)
    // and its value is clamped.
    code.push(Instruction::assign(
        FieldRef::meta(opt_key(option_kind::MSS)),
        Expr::constant(1),
    ));
    code.push(Instruction::assign(
        FieldRef::meta(size_key(option_kind::MSS)),
        Expr::constant(4),
    ));
    code.push(Instruction::if_then(
        Condition::gt(FieldRef::meta(val_key(option_kind::MSS)), config.mss_clamp),
        Instruction::assign(
            FieldRef::meta(val_key(option_kind::MSS)),
            Expr::constant(config.mss_clamp),
        ),
    ));
    Instruction::block(code)
}

/// The standalone `TCPOptions` element of the ASA Click pipeline (§7.2).
pub fn asa_options_filter(name: &str, config: &AsaOptionsConfig) -> ElementProgram {
    ElementProgram::new(name, 1, 1).with_any_input_code(Instruction::block(vec![
        asa_options_code(config),
        Instruction::forward(0),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::value::Value;
    use symnet_core::verify::allowed_values;
    use symnet_sefl::packet::symbolic_tcp_packet;

    fn options_packet() -> Instruction {
        Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()])
    }

    fn run(
        config: &AsaOptionsConfig,
        packet: &Instruction,
    ) -> symnet_core::engine::ExecutionReport {
        let mut net = Network::new();
        let id = net.add_element(asa_options_filter("asa-options", config));
        let engine = SymNet::new(net);
        engine.inject(id, 0, packet)
    }

    #[test]
    fn model_branching_is_tiny() {
        // The whole point of the SEFL model: a couple of branches, independent
        // of the options-field length (compare Table 1's exponential blowup).
        let program = asa_options_filter("o", &AsaOptionsConfig::default());
        assert!(program.max_branching() <= 4);
    }

    #[test]
    fn multipath_and_unknown_options_are_always_stripped() {
        let report = run(&AsaOptionsConfig::default(), &options_packet());
        assert!(report.delivered().count() >= 1);
        for path in report.delivered() {
            assert_eq!(
                path.state
                    .read_meta(&opt_key(option_kind::MPTCP))
                    .unwrap()
                    .value,
                Value::Concrete(0),
                "MPTCP must be stripped"
            );
            assert_eq!(
                path.state
                    .read_meta(&opt_key(option_kind::EXPERIMENT))
                    .unwrap()
                    .value,
                Value::Concrete(0),
                "unknown options must be stripped"
            );
            assert_eq!(
                path.state
                    .read_meta(&opt_key(option_kind::SACK))
                    .unwrap()
                    .value,
                Value::Concrete(0),
                "SACK blocks are not in the allowed set"
            );
        }
    }

    #[test]
    fn mss_is_always_added_and_clamped() {
        let report = run(&AsaOptionsConfig::default(), &options_packet());
        for path in report.delivered() {
            assert_eq!(
                path.state
                    .read_meta(&opt_key(option_kind::MSS))
                    .unwrap()
                    .value,
                Value::Concrete(1),
                "MSS is always present after the ASA"
            );
            let mss = allowed_values(path, &FieldRef::meta(val_key(option_kind::MSS))).unwrap();
            assert!(mss.max().unwrap() <= 1380, "MSS must be clamped to 1380");
        }
    }

    #[test]
    fn sackok_is_stripped_only_for_http() {
        let http_packet = Instruction::block(vec![
            options_packet(),
            Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::SACK_OK)),
                1u64,
            )),
        ]);
        let report = run(&AsaOptionsConfig::default(), &http_packet);
        for path in report.delivered() {
            assert_eq!(
                path.state
                    .read_meta(&opt_key(option_kind::SACK_OK))
                    .unwrap()
                    .value,
                Value::Concrete(0),
                "SACK-OK must be stripped for HTTP"
            );
        }
        // Non-HTTP traffic keeps SACK-OK.
        let ssh_packet = Instruction::block(vec![
            options_packet(),
            Instruction::constrain(Condition::eq(tcp_dst().field(), 22u64)),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::SACK_OK)),
                1u64,
            )),
        ]);
        let report = run(&AsaOptionsConfig::default(), &ssh_packet);
        assert!(report.delivered().any(|path| {
            path.state
                .read_meta(&opt_key(option_kind::SACK_OK))
                .unwrap()
                .value
                != Value::Concrete(0)
        }));
    }

    #[test]
    fn allowed_options_pass_in_any_combination() {
        // §8.2: SymNet shows all allowed options are permitted simultaneously,
        // which Klee got wrong on short options fields.
        let all_on = Instruction::block(vec![
            options_packet(),
            Instruction::constrain(Condition::ne(tcp_dst().field(), 80u64)),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::MSS)),
                1u64,
            )),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::WSCALE)),
                1u64,
            )),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::SACK_OK)),
                1u64,
            )),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::TIMESTAMP)),
                1u64,
            )),
        ]);
        let report = run(&AsaOptionsConfig::default(), &all_on);
        assert!(report.delivered().count() >= 1);
        let path = report.delivered().next().unwrap();
        for kind in [
            option_kind::WSCALE,
            option_kind::SACK_OK,
            option_kind::TIMESTAMP,
        ] {
            let allowed = allowed_values(path, &FieldRef::meta(opt_key(kind))).unwrap();
            assert!(allowed.contains(1), "option {kind} must be allowed through");
        }
    }

    #[test]
    fn timestamp_is_allowed_through() {
        // Klee on ≤6-byte option fields wrongly concluded the timestamp option
        // was blocked; the model shows it passes.
        let ts_on = Instruction::block(vec![
            options_packet(),
            Instruction::constrain(Condition::eq(
                FieldRef::meta(opt_key(option_kind::TIMESTAMP)),
                1u64,
            )),
        ]);
        let report = run(&AsaOptionsConfig::default(), &ts_on);
        assert!(report.delivered().any(|path| {
            allowed_values(path, &FieldRef::meta(opt_key(option_kind::TIMESTAMP)))
                .unwrap()
                .contains(1)
        }));
    }
}
