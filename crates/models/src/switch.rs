//! Learning-switch models generated from MAC tables.
//!
//! §7 "Modeling switch behaviour" and the Figure 8 evaluation compare three
//! model variants of the same switch:
//!
//! * **basic** — a lookup table with one `If` per MAC entry, equivalent to
//!   running a generic symbolic executor on switch forwarding code; the number
//!   of paths equals the number of entries.
//! * **ingress** — entries grouped per output port, nested `If`s applied on
//!   the input port; the number of paths equals the number of ports but the
//!   `else` branches accumulate negated constraints (quadratic growth).
//! * **egress** — the packet is forked to every output port and each output
//!   port constrains the destination MAC to its own group; optimal branching
//!   *and* a minimal total constraint count. This is the variant used in the
//!   rest of the paper's evaluation.

use symnet_sefl::cond::Condition;
use symnet_sefl::fields::{ether_dst, vlan_id};
use symnet_sefl::{ElementProgram, Instruction};

/// One `(MAC, VLAN, output port)` entry of a switch MAC table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MacTableEntry {
    /// Destination MAC address (48 bits).
    pub mac: u64,
    /// Optional VLAN id the entry applies to.
    pub vlan: Option<u64>,
    /// Output port the frame is forwarded on.
    pub port: usize,
}

/// A snapshot of a switch MAC table.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MacTable {
    /// Number of switch ports.
    pub port_count: usize,
    /// Table entries.
    pub entries: Vec<MacTableEntry>,
}

impl MacTable {
    /// Creates an empty table for a switch with `port_count` ports.
    pub fn new(port_count: usize) -> Self {
        MacTable {
            port_count,
            entries: Vec::new(),
        }
    }

    /// Adds an entry.
    pub fn add(&mut self, mac: u64, vlan: Option<u64>, port: usize) -> &mut Self {
        assert!(port < self.port_count, "port {port} out of range");
        self.entries.push(MacTableEntry { mac, vlan, port });
        self
    }

    /// Learns an address: moves an existing `(mac, vlan)` entry to `port`, or
    /// adds a fresh entry — the MAC-learning delta of the resident service.
    /// Returns true if the table changed.
    pub fn learn(&mut self, mac: u64, vlan: Option<u64>, port: usize) -> bool {
        assert!(port < self.port_count, "port {port} out of range");
        if let Some(entry) = self
            .entries
            .iter_mut()
            .find(|e| e.mac == mac && e.vlan == vlan)
        {
            if entry.port == port {
                return false;
            }
            entry.port = port;
        } else {
            self.entries.push(MacTableEntry { mac, vlan, port });
        }
        true
    }

    /// Ages an address out of the table — the MAC-aging delta of the
    /// resident service. Returns true if an entry was removed.
    pub fn remove(&mut self, mac: u64, vlan: Option<u64>) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| !(e.mac == mac && e.vlan == vlan));
        self.entries.len() != before
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The MAC addresses forwarded to `port`.
    pub fn macs_for_port(&self, port: usize) -> Vec<u64> {
        self.entries
            .iter()
            .filter(|e| e.port == port)
            .map(|e| e.mac)
            .collect()
    }

    /// Ports that appear in at least one entry.
    pub fn ports_in_use(&self) -> Vec<usize> {
        let mut ports: Vec<usize> = self.entries.iter().map(|e| e.port).collect();
        ports.sort_unstable();
        ports.dedup();
        ports
    }

    /// Deterministically generates a synthetic MAC table with `entries`
    /// entries spread round-robin over `port_count` ports — the workload
    /// generator behind the Figure 8 sweep ("to generate more entries in the
    /// MAC table, we duplicate existing entries ...; each entry gets a unique
    /// destination MAC address").
    pub fn synthetic(entries: usize, port_count: usize) -> Self {
        let mut table = MacTable::new(port_count);
        for i in 0..entries {
            // Knuth multiplicative hashing spreads MACs over the 48-bit space
            // without needing a random number generator (determinism keeps the
            // benchmarks reproducible).
            let mac = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) & 0xffff_ffff_ffff;
            table.add(mac, None, i % port_count);
        }
        table
    }
}

/// Condition matching any of the given MAC addresses on `EtherDst`.
fn macs_condition(macs: &[u64]) -> Condition {
    Condition::or(
        macs.iter()
            .map(|m| Condition::eq(ether_dst().field(), *m))
            .collect(),
    )
}

/// The *basic* switch model: one `If` per table entry, most specific to least.
/// Equivalent to naively symbolically executing the forwarding code; only
/// usable for small tables (Figure 8 runs out of memory beyond ~1000 entries).
pub fn switch_basic(name: &str, table: &MacTable) -> ElementProgram {
    let mut code = Instruction::fail("Mac unknown");
    for entry in table.entries.iter().rev() {
        code = Instruction::if_else(
            Condition::eq(ether_dst().field(), entry.mac),
            Instruction::forward(entry.port),
            code,
        );
    }
    ElementProgram::new(name, table.port_count, table.port_count).with_any_input_code(code)
}

/// The *ingress* switch model: MACs grouped per output port, nested `If`s on
/// the input port. Optimal branching, but the k-th port's path carries the
/// negated constraints of the k-1 preceding ports.
pub fn switch_ingress(name: &str, table: &MacTable) -> ElementProgram {
    let mut code = Instruction::fail("Mac unknown");
    for port in table.ports_in_use().into_iter().rev() {
        let macs = table.macs_for_port(port);
        code = Instruction::if_else(macs_condition(&macs), Instruction::forward(port), code);
    }
    ElementProgram::new(name, table.port_count, table.port_count).with_any_input_code(code)
}

/// The *egress* switch model: fork to every port in use, constrain per output
/// port. Optimal branching and a total constraint count equal to the number of
/// table entries; correct because MAC-table entries are mutually exclusive
/// (§7: "which always holds for MAC tables due to the spanning tree
/// algorithm").
pub fn switch_egress(name: &str, table: &MacTable) -> ElementProgram {
    let ports = table.ports_in_use();
    let mut program = ElementProgram::new(name, table.port_count, table.port_count)
        .with_any_input_code(Instruction::fork(ports.clone()));
    for port in ports {
        let macs = table.macs_for_port(port);
        program.set_output_code(port, Instruction::constrain(macs_condition(&macs)));
    }
    program
}

/// A VLAN-aware egress switch: frames are additionally constrained to carry
/// the VLAN id of the matching entry (used by the department-network model of
/// §8.5 where access switches tag lab and office traffic).
pub fn switch_egress_vlan(name: &str, table: &MacTable) -> ElementProgram {
    let ports = table.ports_in_use();
    let mut program = ElementProgram::new(name, table.port_count, table.port_count)
        .with_any_input_code(Instruction::fork(ports.clone()));
    for port in ports {
        let conds: Vec<Condition> = table
            .entries
            .iter()
            .filter(|e| e.port == port)
            .map(|e| match e.vlan {
                None => Condition::eq(ether_dst().field(), e.mac),
                Some(vlan) => Condition::and(vec![
                    Condition::eq(ether_dst().field(), e.mac),
                    Condition::eq(vlan_id().field(), vlan),
                ]),
            })
            .collect();
        program.set_output_code(port, Instruction::constrain(Condition::or(conds)));
    }
    program
}

#[cfg(test)]
mod tests {
    use super::*;
    use symnet_core::engine::SymNet;
    use symnet_core::network::Network;
    use symnet_core::value::Value;
    use symnet_sefl::packet::symbolic_tcp_packet;

    fn small_table() -> MacTable {
        let mut t = MacTable::new(4);
        t.add(0x0000_0000_0001, None, 0)
            .add(0x0000_0000_0002, None, 0)
            .add(0x0000_0000_0003, None, 1)
            .add(0x0000_0000_0004, None, 2);
        t
    }

    fn run(
        program: ElementProgram,
    ) -> (symnet_core::engine::ExecutionReport, symnet_core::ElementId) {
        let mut net = Network::new();
        let id = net.add_element(program);
        let engine = SymNet::new(net);
        (engine.inject(id, 0, &symbolic_tcp_packet()), id)
    }

    #[test]
    fn synthetic_tables_are_deterministic_and_unique() {
        let a = MacTable::synthetic(1000, 20);
        let b = MacTable::synthetic(1000, 20);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        let mut macs: Vec<u64> = a.entries.iter().map(|e| e.mac).collect();
        macs.sort_unstable();
        macs.dedup();
        assert_eq!(macs.len(), 1000, "every entry gets a unique MAC");
        assert_eq!(a.ports_in_use().len(), 20);
    }

    #[test]
    fn all_three_models_deliver_one_path_per_port_in_use() {
        let table = small_table();
        for (model, name) in [
            (switch_basic("sw", &table), "basic"),
            (switch_ingress("sw", &table), "ingress"),
            (switch_egress("sw", &table), "egress"),
        ] {
            let (report, _) = run(model);
            // Ports 0, 1, 2 are in use; port 3 is not.
            let delivered = report.delivered().count();
            match name {
                // The basic model produces one path per *entry* (4), the other
                // two one path per port in use (3).
                "basic" => assert_eq!(delivered, 4, "{name}"),
                _ => assert_eq!(delivered, 3, "{name}"),
            }
        }
    }

    #[test]
    fn egress_model_constrains_macs_per_port() {
        let table = small_table();
        let (report, id) = run(switch_egress("sw", &table));
        // Port 0 admits exactly MACs 1 and 2.
        let path = report.delivered_at(id, 0).next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path, &ether_dst().field()).unwrap();
        assert_eq!(allowed.cardinality(), 2);
        assert!(allowed.contains(1));
        assert!(allowed.contains(2));
        assert!(!allowed.contains(3));
        // Port 2 admits only MAC 4.
        let path = report.delivered_at(id, 2).next().unwrap();
        let allowed = symnet_core::verify::allowed_values(path, &ether_dst().field()).unwrap();
        assert_eq!(allowed.cardinality(), 1);
        assert!(allowed.contains(4));
    }

    #[test]
    fn basic_model_forwards_concrete_macs_correctly() {
        let table = small_table();
        let mut net = Network::new();
        let id = net.add_element(switch_basic("sw", &table));
        let engine = SymNet::new(net);
        // A packet with a concrete destination MAC 3 goes to port 1 only.
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::assign(ether_dst().field(), symnet_sefl::Expr::constant(3)),
        ]);
        let report = engine.inject(id, 0, &pkt);
        assert_eq!(report.delivered().count(), 1);
        assert_eq!(report.delivered_at(id, 1).count(), 1);
    }

    #[test]
    fn unknown_mac_fails_on_basic_and_ingress() {
        let table = small_table();
        let mut net = Network::new();
        let id = net.add_element(switch_basic("sw", &table));
        let engine = SymNet::new(net);
        let pkt = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::assign(ether_dst().field(), symnet_sefl::Expr::constant(0xdead)),
        ]);
        let report = engine.inject(id, 0, &pkt);
        assert_eq!(report.delivered().count(), 0);
        assert!(report.paths.iter().any(|p| matches!(
            &p.status,
            symnet_core::engine::PathStatus::Dropped {
                reason: symnet_core::DropReason::Failed(msg),
                ..
            } if msg == "Mac unknown"
        )));
    }

    #[test]
    fn ingress_paths_carry_more_constraint_atoms_than_egress() {
        // The quadratic-vs-linear constraint growth of §8.1.
        let table = MacTable::synthetic(200, 10);
        let (ingress_report, _) = run(switch_ingress("sw", &table));
        let (egress_report, _) = run(switch_egress("sw", &table));
        let ingress_atoms: usize = ingress_report
            .delivered()
            .map(|p| p.state.constraint_atoms())
            .sum();
        let egress_atoms: usize = egress_report
            .delivered()
            .map(|p| p.state.constraint_atoms())
            .sum();
        assert!(
            ingress_atoms > egress_atoms,
            "ingress {ingress_atoms} should exceed egress {egress_atoms}"
        );
        // Egress total equals the number of table entries.
        assert_eq!(egress_atoms, table.len());
    }

    #[test]
    fn vlan_switch_restricts_vlan_ids() {
        let mut table = MacTable::new(2);
        table.add(0x1, Some(302), 0).add(0x2, Some(304), 1);
        let mut net = Network::new();
        let id = net.add_element(switch_egress_vlan("sw", &table));
        let engine = SymNet::new(net);
        // The frame must actually carry a VLAN tag for the VLAN-aware switch.
        let tagged = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::allocate_header(vlan_id().addr.clone(), vlan_id().width),
            Instruction::assign(vlan_id().field(), symnet_sefl::Expr::symbolic()),
        ]);
        let report = engine.inject(id, 0, &tagged);
        assert_eq!(report.delivered().count(), 2);
        let path = report.delivered_at(id, 0).next().unwrap();
        let vlan = symnet_core::verify::allowed_values(path, &vlan_id().field()).unwrap();
        assert_eq!(vlan.cardinality(), 1);
        assert!(vlan.contains(302));
    }

    #[test]
    fn concrete_mac_value_survives_egress_model() {
        // Header visibility: the egress model never rewrites the frame.
        let table = small_table();
        let (report, _) = run(switch_egress("sw", &table));
        for path in report.delivered() {
            let slot = path.state.read_field(&ether_dst().field(), "").unwrap();
            assert!(matches!(slot.value, Value::Sym { .. }), "field untouched");
        }
    }
}
