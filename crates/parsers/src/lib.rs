//! # symnet-parsers
//!
//! Parsers that turn device configuration snapshots into SEFL models (§7.1:
//! "we have created parsers that take configuration parameters and/or runtime
//! information from well known network elements and output corresponding SEFL
//! models"), plus a topology-file parser that wires the generated models into
//! a [`symnet_core::Network`].
//!
//! Three text formats are supported:
//!
//! * **MAC tables** — one `MAC VLAN PORT` entry per line (VLAN `-` for none),
//!   as produced by `show mac address-table` post-processing;
//! * **Router FIBs** — one `PREFIX/LEN PORT` entry per line;
//! * **Topology files** — `element` declarations followed by `link` lines:
//!   ```text
//!   switch  sw1   sw1.mac
//!   router  r1    r1.fib
//!   link    sw1 0 -> r1 0
//!   ```
//!
//! The heavy-weight dataset *generators* used by the benchmarks (synthetic MAC
//! tables and FIBs) live on [`symnet_models::MacTable::synthetic`] and
//! [`symnet_models::Fib::synthetic`]; this crate adds a seeded random-topology
//! generator for stress tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use symnet_core::network::{ElementId, Network};
use symnet_models::{router::router_egress, switch::switch_egress, Fib, MacTable};
use symnet_sefl::{ip_to_number, mac_to_number};

/// An error produced while parsing a configuration file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a switch MAC table: one `MAC VLAN PORT` entry per line. Lines
/// starting with `#` and blank lines are ignored; `-` means "no VLAN".
pub fn parse_mac_table(text: &str) -> Result<MacTable, ParseError> {
    let mut entries = Vec::new();
    let mut max_port = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(err(i + 1, "expected: MAC VLAN PORT"));
        }
        let mac = mac_to_number(parts[0]).ok_or_else(|| err(i + 1, "invalid MAC address"))?;
        let vlan = match parts[1] {
            "-" => None,
            v => Some(
                v.parse::<u64>()
                    .map_err(|_| err(i + 1, "invalid VLAN id"))?,
            ),
        };
        let port: usize = parts[2]
            .parse()
            .map_err(|_| err(i + 1, "invalid port number"))?;
        max_port = max_port.max(port);
        entries.push((mac, vlan, port));
    }
    let mut table = MacTable::new(max_port + 1);
    for (mac, vlan, port) in entries {
        table.add(mac, vlan, port);
    }
    Ok(table)
}

/// Parses a router forwarding table: one `PREFIX/LEN PORT` entry per line.
pub fn parse_fib(text: &str) -> Result<Fib, ParseError> {
    let mut entries = Vec::new();
    let mut max_port = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        if parts.len() != 2 {
            return Err(err(i + 1, "expected: PREFIX/LEN PORT"));
        }
        let (prefix_str, len_str) = parts[0]
            .split_once('/')
            .ok_or_else(|| err(i + 1, "prefix must be written as A.B.C.D/LEN"))?;
        let prefix =
            ip_to_number(prefix_str).ok_or_else(|| err(i + 1, "invalid IPv4 prefix"))? as u32;
        let prefix_len: u8 = len_str
            .parse()
            .map_err(|_| err(i + 1, "invalid prefix length"))?;
        if prefix_len > 32 {
            return Err(err(i + 1, "prefix length exceeds 32"));
        }
        let port: usize = parts[1]
            .parse()
            .map_err(|_| err(i + 1, "invalid port number"))?;
        max_port = max_port.max(port);
        entries.push((prefix, prefix_len, port));
    }
    let mut fib = Fib::new(max_port + 1);
    for (prefix, prefix_len, port) in entries {
        fib.add(prefix, prefix_len, port);
    }
    Ok(fib)
}

/// A parsed topology: the network plus a name → element-id map.
#[derive(Clone, Debug)]
pub struct Topology {
    /// The assembled network.
    pub network: Network,
    /// Element ids by declared name.
    pub elements: BTreeMap<String, symnet_core::ElementId>,
}

/// Parses a topology description. `configs` maps the configuration file names
/// referenced by `switch`/`router` declarations to their contents (so the
/// parser stays independent of the filesystem).
pub fn parse_topology(
    text: &str,
    configs: &BTreeMap<String, String>,
) -> Result<Topology, ParseError> {
    let mut network = Network::new();
    let mut elements = BTreeMap::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts[0] {
            "switch" | "router" if parts.len() == 3 => {
                let name = parts[1];
                let config = configs
                    .get(parts[2])
                    .ok_or_else(|| err(i + 1, format!("unknown config file {}", parts[2])))?;
                let program = if parts[0] == "switch" {
                    switch_egress(name, &parse_mac_table(config)?)
                } else {
                    router_egress(name, &parse_fib(config)?)
                };
                elements.insert(name.to_string(), network.add_element(program));
            }
            "link" if parts.len() == 6 && parts[3] == "->" => {
                let from = *elements
                    .get(parts[1])
                    .ok_or_else(|| err(i + 1, format!("unknown element {}", parts[1])))?;
                let from_port: usize = parts[2]
                    .parse()
                    .map_err(|_| err(i + 1, "invalid source port"))?;
                let to = *elements
                    .get(parts[4])
                    .ok_or_else(|| err(i + 1, format!("unknown element {}", parts[4])))?;
                let to_port: usize = parts[5]
                    .parse()
                    .map_err(|_| err(i + 1, "invalid destination port"))?;
                network.add_link(from, from_port, to, to_port);
            }
            _ => return Err(err(i + 1, format!("unrecognised directive: {line}"))),
        }
    }
    Ok(Topology { network, elements })
}

/// Renders a MAC table back into the text format accepted by
/// [`parse_mac_table`] — used by the dataset generators and round-trip tests.
pub fn format_mac_table(table: &MacTable) -> String {
    let mut out = String::new();
    for e in &table.entries {
        let vlan = e.vlan.map_or("-".to_string(), |v| v.to_string());
        out.push_str(&format!(
            "{} {} {}\n",
            symnet_sefl::number_to_mac(e.mac),
            vlan,
            e.port
        ));
    }
    out
}

/// Renders a FIB back into the text format accepted by [`parse_fib`].
pub fn format_fib(fib: &Fib) -> String {
    let mut out = String::new();
    for e in &fib.entries {
        out.push_str(&format!(
            "{}/{} {}\n",
            symnet_sefl::number_to_ip(e.prefix as u64),
            e.prefix_len,
            e.port
        ));
    }
    out
}

/// Generates a seeded random tree topology of egress switches (for stress and
/// property tests): `switches` nodes, each with `entries_per_switch` MAC
/// entries, connected in a random tree rooted at element 0. Links run in both
/// directions — every child's output port 0 goes up to its parent, and the
/// parent's next free output port (1–3, first three children only) goes back
/// down — so injecting at the root forks multiplicatively down the tree and
/// the up/down cycles exercise the engine's loop detection.
pub fn random_switch_tree(seed: u64, switches: usize, entries_per_switch: usize) -> Topology {
    random_switch_tree_with_tables(seed, switches, entries_per_switch).0
}

/// [`random_switch_tree`] plus the MAC table each switch was compiled from,
/// as `(element, name, table)` triples — what the differential fuzzer needs
/// to register the topology's tables for typed-delta mutation. Draws from the
/// RNG in exactly the same order as [`random_switch_tree`], so both produce
/// the same topology for the same seed.
pub fn random_switch_tree_with_tables(
    seed: u64,
    switches: usize,
    entries_per_switch: usize,
) -> (Topology, Vec<(ElementId, String, MacTable)>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut network = Network::new();
    let mut elements = BTreeMap::new();
    let mut ids = Vec::new();
    let mut tables = Vec::new();
    // MACs come from a shared pool (as hosts in one L2 domain would): the
    // per-port groups of neighbouring switches then overlap, so a packet's
    // accumulated constraints stay satisfiable across several hops instead of
    // going unsat at the second switch.
    let pool: Vec<u64> = (0..entries_per_switch.max(8))
        .map(|_| rng.gen::<u64>() & 0xffff_ffff_ffff)
        .collect();
    for s in 0..switches {
        let mut table = MacTable::new(4);
        for e in 0..entries_per_switch {
            table.add(pool[rng.gen_range(0..pool.len())], None, e % 4);
        }
        let name = format!("sw{s}");
        let id = network.add_element(switch_egress(&name, &table));
        elements.insert(name.clone(), id);
        ids.push(id);
        tables.push((id, name, table));
    }
    // Output ports 1..=3 of each switch are available for down-links (port 0
    // always points up); a parent with more than three children leaves the
    // extra ones reachable only upward.
    let mut next_down_port = vec![1usize; switches];
    for s in 1..switches {
        let parent = rng.gen_range(0..s);
        network.add_link(ids[s], 0, ids[parent], 1);
        if next_down_port[parent] <= 3 {
            network.add_link(ids[parent], next_down_port[parent], ids[s], 0);
            next_down_port[parent] += 1;
        }
    }
    (Topology { network, elements }, tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAC_TABLE: &str = "\
# core switch snapshot
00:aa:00:aa:00:01 302 0
00:aa:00:aa:00:02 - 1
00:aa:00:aa:00:03 304 1
";

    const FIB: &str = "\
192.168.0.1/32 0
10.0.0.0/8 0
192.168.0.0/24 1
10.10.0.1/32 1
";

    #[test]
    fn mac_table_parses_and_round_trips() {
        let table = parse_mac_table(MAC_TABLE).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.port_count, 2);
        assert_eq!(table.entries[0].vlan, Some(302));
        assert_eq!(table.entries[1].vlan, None);
        let round = parse_mac_table(&format_mac_table(&table)).unwrap();
        assert_eq!(round, table);
        assert!(parse_mac_table("garbage line").is_err());
        assert!(parse_mac_table("zz:zz:zz:zz:zz:zz - 0").is_err());
    }

    #[test]
    fn fib_parses_and_round_trips() {
        let fib = parse_fib(FIB).unwrap();
        assert_eq!(fib.len(), 4);
        assert_eq!(fib.lookup(0x0a0a0001), Some(1));
        let round = parse_fib(&format_fib(&fib)).unwrap();
        assert_eq!(round, fib);
        assert!(parse_fib("10.0.0.0/40 1").is_err());
        assert!(parse_fib("10.0.0.0 1").is_err());
    }

    #[test]
    fn topology_assembles_a_runnable_network() {
        let mut configs = BTreeMap::new();
        configs.insert("sw1.mac".to_string(), MAC_TABLE.to_string());
        configs.insert("r1.fib".to_string(), FIB.to_string());
        let topo_text = "\
switch sw1 sw1.mac
router r1 r1.fib
link sw1 1 -> r1 0
";
        let topo = parse_topology(topo_text, &configs).unwrap();
        assert_eq!(topo.network.element_count(), 2);
        assert_eq!(topo.network.link_count(), 1);
        // The parsed network actually runs.
        let engine = symnet_core::engine::SymNet::new(topo.network.clone());
        let report = engine.inject(
            topo.elements["sw1"],
            0,
            &symnet_sefl::packet::symbolic_tcp_packet(),
        );
        assert!(report.delivered().count() >= 1);
        // Errors: unknown config, unknown element, bad directive.
        assert!(parse_topology("switch s missing.mac", &configs).is_err());
        assert!(parse_topology("link a 0 -> b 0", &configs).is_err());
        assert!(parse_topology("frobnicate", &configs).is_err());
    }

    #[test]
    fn random_topologies_are_seed_deterministic() {
        let a = random_switch_tree(42, 6, 10);
        let b = random_switch_tree(42, 6, 10);
        assert_eq!(a.network.element_count(), b.network.element_count());
        assert_eq!(a.network.link_count(), b.network.link_count());
        // 5 up-links, plus one down-link per child that found a free parent
        // port (at most three per parent).
        assert!(a.network.link_count() >= 5 && a.network.link_count() <= 10);
    }
}
