//! # symnet-hsa
//!
//! A from-scratch Header Space Analysis (HSA) baseline, standing in for the
//! Hassel tool the paper compares against in Table 3.
//!
//! HSA models the packet header as a fixed-width vector of ternary bits
//! (`0`, `1`, `*`) and every network box as a list of transfer-function rules:
//! a match pattern over the header, a rewrite mask, and the output port.
//! Reachability propagates header-space regions hop by hop, intersecting them
//! with rule matches. HSA is fast, but — as §2 of the SymNet paper argues — a
//! wildcarded output cannot express that the output *equals* the input, so it
//! cannot prove invariance, visibility or memory-safety properties; the
//! Table 5 capability matrix reflects exactly that.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A ternary header pattern over `width` bits: for every bit, `mask` says
/// whether the bit is constrained (1) and `bits` gives its value. Unmasked
/// bits are wildcards.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ternary {
    /// Number of header bits.
    pub width: u32,
    /// Constrained-bit mask (little-endian u64 words).
    mask: Vec<u64>,
    /// Bit values where constrained.
    bits: Vec<u64>,
}

impl Ternary {
    fn words(width: u32) -> usize {
        width.div_ceil(64) as usize
    }

    /// The all-wildcard header of the given width.
    pub fn any(width: u32) -> Self {
        Ternary {
            width,
            mask: vec![0; Self::words(width)],
            bits: vec![0; Self::words(width)],
        }
    }

    /// Constrains the field `[offset, offset+len)` (bit offsets from 0) to the
    /// low `len` bits of `value`.
    pub fn with_field(mut self, offset: u32, len: u32, value: u64) -> Self {
        for i in 0..len {
            let bit = (value >> (len - 1 - i)) & 1;
            self.set_bit(offset + i, Some(bit == 1));
        }
        self
    }

    /// Constrains the top `prefix_len` bits of the field `[offset,
    /// offset+len)` to the top bits of `value` (an IPv4-style prefix match).
    pub fn with_prefix(mut self, offset: u32, len: u32, value: u64, prefix_len: u32) -> Self {
        for i in 0..prefix_len.min(len) {
            let bit = (value >> (len - 1 - i)) & 1;
            self.set_bit(offset + i, Some(bit == 1));
        }
        self
    }

    fn set_bit(&mut self, index: u32, value: Option<bool>) {
        let word = (index / 64) as usize;
        let bit = index % 64;
        match value {
            None => {
                self.mask[word] &= !(1 << bit);
                self.bits[word] &= !(1 << bit);
            }
            Some(v) => {
                self.mask[word] |= 1 << bit;
                if v {
                    self.bits[word] |= 1 << bit;
                } else {
                    self.bits[word] &= !(1 << bit);
                }
            }
        }
    }

    /// Intersection of two ternary headers; `None` if they are incompatible
    /// (some bit constrained to different values).
    pub fn intersect(&self, other: &Ternary) -> Option<Ternary> {
        debug_assert_eq!(self.width, other.width);
        let mut out = self.clone();
        for w in 0..self.mask.len() {
            let both = self.mask[w] & other.mask[w];
            if (self.bits[w] ^ other.bits[w]) & both != 0 {
                return None;
            }
            out.mask[w] = self.mask[w] | other.mask[w];
            out.bits[w] = (self.bits[w] & self.mask[w]) | (other.bits[w] & other.mask[w]);
        }
        Some(out)
    }

    /// Applies a rewrite: bits constrained in `rewrite` take its values, all
    /// other bits keep their (possibly wildcard) values.
    pub fn rewrite(&self, rewrite: &Ternary) -> Ternary {
        let mut out = self.clone();
        for w in 0..self.mask.len() {
            out.mask[w] |= rewrite.mask[w];
            out.bits[w] = (out.bits[w] & !rewrite.mask[w]) | (rewrite.bits[w] & rewrite.mask[w]);
        }
        out
    }

    /// Number of constrained bits (used in tests and statistics).
    pub fn constrained_bits(&self) -> u32 {
        self.mask.iter().map(|w| w.count_ones()).sum()
    }
}

/// One transfer-function rule of a network box.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Rule {
    /// Match pattern.
    pub matches: Ternary,
    /// Optional rewrite applied to matching headers.
    pub rewrite: Option<Ternary>,
    /// Output port the matching traffic is sent to.
    pub out_port: usize,
}

/// A network box: a prioritised rule list (first match wins, like a FIB after
/// longest-prefix expansion).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TransferFunction {
    /// Rules in priority order.
    pub rules: Vec<Rule>,
}

impl TransferFunction {
    /// Applies the box to a header-space region, producing `(region, port)`
    /// pairs. Because rules are prioritised, each rule's effective match is
    /// intersected with the complement of earlier rules only implicitly: the
    /// standard HSA implementation (and this one) over-approximates by not
    /// subtracting earlier matches, which is sound for reachability
    /// upper-bounds and is what the runtime comparison exercises.
    pub fn apply(&self, input: &Ternary) -> Vec<(Ternary, usize)> {
        let mut out = Vec::new();
        for rule in &self.rules {
            if let Some(matched) = input.intersect(&rule.matches) {
                let result = match &rule.rewrite {
                    Some(rw) => matched.rewrite(rw),
                    None => matched,
                };
                out.push((result, rule.out_port));
            }
        }
        out
    }
}

/// A node in the HSA network graph.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HsaNode {
    /// Node name.
    pub name: String,
    /// The node's transfer function.
    pub tf: TransferFunction,
}

/// The HSA network: nodes plus links `(node, out_port) → node`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct HsaNetwork {
    /// Nodes.
    pub nodes: Vec<HsaNode>,
    links: BTreeMap<(usize, usize), usize>,
}

/// A reachability result: the header-space region arriving at a node's
/// unlinked output port.
#[derive(Clone, Debug)]
pub struct HsaPath {
    /// Final node index.
    pub node: usize,
    /// Final output port.
    pub port: usize,
    /// Nodes visited along the way.
    pub hops: Vec<usize>,
    /// The surviving header-space region.
    pub region: Ternary,
}

impl HsaNetwork {
    /// Creates an empty network.
    pub fn new() -> Self {
        HsaNetwork::default()
    }

    /// Adds a node, returning its index.
    pub fn add_node(&mut self, name: impl Into<String>, tf: TransferFunction) -> usize {
        self.nodes.push(HsaNode {
            name: name.into(),
            tf,
        });
        self.nodes.len() - 1
    }

    /// Links `(from, out_port)` to `to`.
    pub fn add_link(&mut self, from: usize, out_port: usize, to: usize) {
        self.links.insert((from, out_port), to);
    }

    /// Propagates a header-space region from `start` and returns every region
    /// that reaches an unlinked output port. `max_hops` bounds loops.
    pub fn reachability(&self, start: usize, input: Ternary, max_hops: usize) -> Vec<HsaPath> {
        let mut results = Vec::new();
        let mut worklist = vec![(start, input, vec![start], 0usize)];
        while let Some((node, region, hops, depth)) = worklist.pop() {
            if depth > max_hops {
                continue;
            }
            for (out_region, port) in self.nodes[node].tf.apply(&region) {
                match self.links.get(&(node, port)) {
                    Some(&next) => {
                        let mut next_hops = hops.clone();
                        next_hops.push(next);
                        worklist.push((next, out_region, next_hops, depth + 1));
                    }
                    None => results.push(HsaPath {
                        node,
                        port,
                        hops: hops.clone(),
                        region: out_region,
                    }),
                }
            }
        }
        results
    }
}

/// Header layout used when translating router FIBs into transfer functions:
/// only the 32-bit destination address matters for the Table 3 workload.
pub const IPV4_DST_OFFSET: u32 = 0;
/// Width of the HSA header used for the router workload.
pub const ROUTER_HEADER_WIDTH: u32 = 32;

/// Builds a transfer function from `(prefix, prefix_len, port)` routes,
/// longest prefix first.
pub fn router_transfer_function(routes: &[(u32, u8, usize)]) -> TransferFunction {
    let mut sorted: Vec<_> = routes.to_vec();
    sorted.sort_by_key(|(_, len, _)| std::cmp::Reverse(*len));
    TransferFunction {
        rules: sorted
            .into_iter()
            .map(|(prefix, len, port)| Rule {
                matches: Ternary::any(ROUTER_HEADER_WIDTH).with_prefix(
                    IPV4_DST_OFFSET,
                    32,
                    prefix as u64,
                    len as u32,
                ),
                rewrite: None,
                out_port: port,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ternary_field_and_intersection() {
        let a = Ternary::any(32).with_field(0, 8, 0x0a);
        let b = Ternary::any(32).with_field(8, 8, 0x01);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i.constrained_bits(), 16);
        // Conflicting constraints do not intersect.
        let c = Ternary::any(32).with_field(0, 8, 0x0b);
        assert!(a.intersect(&c).is_none());
        // Intersection with itself is itself.
        assert_eq!(a.intersect(&a), Some(a.clone()));
    }

    #[test]
    fn prefix_matches_constrain_only_top_bits() {
        let p = Ternary::any(32).with_prefix(0, 32, 0x0a000000, 8);
        assert_eq!(p.constrained_bits(), 8);
        let full = Ternary::any(32).with_prefix(0, 32, 0xc0a80101, 32);
        assert_eq!(full.constrained_bits(), 32);
    }

    #[test]
    fn rewrite_overrides_bits() {
        let input = Ternary::any(32).with_field(0, 8, 0xaa);
        let rw = Ternary::any(32).with_field(0, 8, 0xbb);
        let out = input.rewrite(&rw);
        assert_eq!(out.intersect(&rw), Some(out.clone()));
        // HSA's fundamental limitation (§2): after a wildcard rewrite nothing
        // links the output bits to the input bits, so "is the header
        // invariant?" cannot even be asked of the result.
    }

    #[test]
    fn router_tf_applies_longest_prefix_first() {
        let tf = router_transfer_function(&[(0x0a000000, 8, 0), (0x0a0a0001, 32, 1)]);
        assert_eq!(tf.rules[0].out_port, 1, "most specific rule first");
        // A /32-constrained packet matches both rules (HSA over-approximates),
        // a disjoint packet matches only the /8.
        let pkt = Ternary::any(32).with_field(0, 32, 0x0a0a0001);
        assert_eq!(tf.apply(&pkt).len(), 2);
        let other = Ternary::any(32).with_field(0, 32, 0x0a000099);
        let outs = tf.apply(&other);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].1, 0);
    }

    #[test]
    fn reachability_follows_links_and_stops_at_edges() {
        let mut net = HsaNetwork::new();
        let a = net.add_node("a", router_transfer_function(&[(0, 0, 0)]));
        let b = net.add_node(
            "b",
            router_transfer_function(&[(0x0a000000, 8, 0), (0, 0, 1)]),
        );
        net.add_link(a, 0, b);
        let paths = net.reachability(a, Ternary::any(32), 10);
        // Both of b's rules fire on the wildcard region.
        assert_eq!(paths.len(), 2);
        assert!(paths.iter().all(|p| p.node == b));
        assert!(paths.iter().any(|p| p.port == 0));
        assert!(paths.iter().any(|p| p.port == 1));
        assert!(paths.iter().all(|p| p.hops == vec![a, b]));
    }

    #[test]
    fn reachability_is_bounded_on_loops() {
        let mut net = HsaNetwork::new();
        let a = net.add_node("a", router_transfer_function(&[(0, 0, 0)]));
        let b = net.add_node("b", router_transfer_function(&[(0, 0, 0)]));
        net.add_link(a, 0, b);
        net.add_link(b, 0, a);
        let paths = net.reachability(a, Ternary::any(32), 16);
        assert!(paths.is_empty());
    }
}
