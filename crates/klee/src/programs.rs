//! MinC transliterations of the C snippets the paper evaluates — chiefly the
//! Figure 1 CISCO ASA TCP-options parsing loop.

use crate::minc::{BinOp, Expr, Program, Stmt};

/// TCP option kinds treated as ALLOW by the default ASA configuration.
pub const ALLOWED_OPTIONS: [u64; 4] = [2, 3, 4, 8];
/// TCP option kind treated as DROP by the default configuration (TCP MD5).
pub const DROPPED_OPTION: u64 = 19;

/// The Figure 1 options-parsing loop, operating on a byte array of
/// `length` option bytes:
///
/// ```c
/// while (length > 0) {
///   opcode = *ptr;
///   switch (opcode) {
///     case TCPOPT_EOL: return True;
///     case TCPOPT_NOP: length--; ptr++; continue;
///     default:
///       opsize = *(ptr+1);
///       if ((opsize < 2) || (opsize > length)) { /* nop everything */ }
///       switch (_options[opcode]) {
///         case DROP: return False;
///         case ALLOW: break;
///         case STRIP: /* overwrite with NOPs */
///       }
///   }
///   ptr += opsize; length -= opsize;
/// }
/// ```
pub fn tcp_options_program(length: u64) -> Program {
    let opcode_allowed = ALLOWED_OPTIONS
        .iter()
        .map(|k| Expr::bin(BinOp::Eq, Expr::v("opcode"), Expr::c(*k)))
        .reduce(|a, b| Expr::bin(BinOp::Or, a, b))
        .expect("non-empty allow list");

    // for (i = 0; i < bound; i++) ptr[i] = 1;
    let nop_fill = |bound: Expr| {
        vec![
            Stmt::Assign("i".into(), Expr::c(0)),
            Stmt::While(
                Expr::bin(BinOp::Lt, Expr::v("i"), bound),
                vec![
                    Stmt::Store(
                        Expr::bin(BinOp::Add, Expr::v("ptr"), Expr::v("i")),
                        Expr::c(1),
                    ),
                    Stmt::Assign("i".into(), Expr::bin(BinOp::Add, Expr::v("i"), Expr::c(1))),
                ],
            ),
        ]
    };

    let default_case = {
        let mut stmts = vec![Stmt::Assign(
            "opsize".into(),
            Expr::load(Expr::bin(BinOp::Add, Expr::v("ptr"), Expr::c(1))),
        )];
        // Invalid length: NOP out the rest of the options field.
        let mut invalid = nop_fill(Expr::v("length"));
        invalid.push(Stmt::Assign("length".into(), Expr::c(0)));
        let mut valid = vec![Stmt::If(
            opcode_allowed,
            vec![], // ALLOW: keep the option
            vec![Stmt::If(
                Expr::bin(BinOp::Eq, Expr::v("opcode"), Expr::c(DROPPED_OPTION)),
                vec![Stmt::Return(false)],   // DROP
                nop_fill(Expr::v("opsize")), // STRIP
            )],
        )];
        valid.push(Stmt::Assign(
            "ptr".into(),
            Expr::bin(BinOp::Add, Expr::v("ptr"), Expr::v("opsize")),
        ));
        valid.push(Stmt::Assign(
            "length".into(),
            Expr::bin(BinOp::Sub, Expr::v("length"), Expr::v("opsize")),
        ));
        stmts.push(Stmt::If(
            Expr::bin(
                BinOp::Or,
                Expr::bin(BinOp::Lt, Expr::v("opsize"), Expr::c(2)),
                Expr::bin(BinOp::Gt, Expr::v("opsize"), Expr::v("length")),
            ),
            invalid,
            valid,
        ));
        stmts
    };

    let body = vec![
        Stmt::While(
            Expr::bin(BinOp::Gt, Expr::v("length"), Expr::c(0)),
            vec![
                Stmt::Assign("opcode".into(), Expr::load(Expr::v("ptr"))),
                Stmt::If(
                    Expr::bin(BinOp::Eq, Expr::v("opcode"), Expr::c(0)),
                    vec![Stmt::Return(true)], // EOL
                    vec![Stmt::If(
                        Expr::bin(BinOp::Eq, Expr::v("opcode"), Expr::c(1)),
                        vec![
                            // NOP: consume one byte.
                            Stmt::Assign(
                                "length".into(),
                                Expr::bin(BinOp::Sub, Expr::v("length"), Expr::c(1)),
                            ),
                            Stmt::Assign(
                                "ptr".into(),
                                Expr::bin(BinOp::Add, Expr::v("ptr"), Expr::c(1)),
                            ),
                        ],
                        default_case,
                    )],
                ),
            ],
        ),
        Stmt::Return(true),
    ];

    Program::new(
        vec![
            ("length", length),
            ("ptr", 0),
            ("opcode", 0),
            ("opsize", 0),
            ("i", 0),
        ],
        body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp;
    use crate::symex::{SymConfig, SymExecutor};

    #[test]
    fn concrete_semantics_match_the_c_code() {
        // EOL immediately: allowed.
        let prog = tcp_options_program(3);
        assert!(interp::run(&prog, &[0, 0, 0]).returned);
        // A NOP then an allowed MSS option (kind 2, size 2): allowed, intact.
        let r = interp::run(&prog, &[1, 2, 2]);
        assert!(r.returned);
        assert_eq!(r.array, vec![1, 2, 2]);
        // The MD5 option (kind 19) is dropped.
        let r = interp::run(&tcp_options_program(2), &[19, 2]);
        assert!(!r.returned);
        // An unknown option (kind 7) is stripped: overwritten with NOPs.
        let r = interp::run(&tcp_options_program(3), &[7, 3, 99]);
        assert!(r.returned);
        assert_eq!(r.array, vec![1, 1, 1]);
        // An option with an invalid size NOPs out the rest of the field.
        let r = interp::run(&tcp_options_program(3), &[7, 1, 99]);
        assert!(r.returned);
        assert_eq!(r.array, vec![1, 1, 1]);
    }

    #[test]
    fn symbolic_path_count_grows_with_length() {
        // The Table 1 shape: the number of classic symbolic-execution paths
        // grows super-linearly with the length of the symbolic options field.
        let mut counts = Vec::new();
        for length in 1..=3u64 {
            let mut ex = SymExecutor::new(SymConfig::default());
            let report = ex.run_symbolic(&tcp_options_program(length), length as usize);
            counts.push(report.path_count());
        }
        assert!(counts[0] >= 2, "length 1 explores at least EOL/NOP/other");
        assert!(counts[1] > counts[0]);
        assert!(counts[2] > counts[1]);
        // Growth is super-linear (the hallmark of the explosion).
        assert!(
            counts[2] - counts[1] > counts[1] - counts[0],
            "path growth must accelerate: {counts:?}"
        );
    }
}
