//! MinC: a miniature C-like language.
//!
//! MinC has unsigned scalar variables, one global byte array (the packet /
//! options buffer), arithmetic and comparison expressions, assignments, array
//! stores, `if`/`else`, bounded `while` loops and `return`. It is just enough
//! to express the Figure 1 TCP-options parsing loop and similar packet-walking
//! code, which is all the baseline needs.

use serde::{Deserialize, Serialize};

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction (saturating at zero, like the unsigned C code effectively
    /// relies on).
    Sub,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Greater than.
    Gt,
    /// Logical or (on 0/1 values).
    Or,
    /// Logical and (on 0/1 values).
    And,
}

/// Expressions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant.
    Const(u64),
    /// A scalar variable.
    Var(String),
    /// A load from the global byte array at the given index.
    Load(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Constant expression.
    pub fn c(value: u64) -> Expr {
        Expr::Const(value)
    }

    /// Variable reference.
    pub fn v(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Array load.
    pub fn load(index: Expr) -> Expr {
        Expr::Load(Box::new(index))
    }

    /// Binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }
}

/// Statements.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Assign an expression to a scalar variable.
    Assign(String, Expr),
    /// Store a value into the global byte array.
    Store(Expr, Expr),
    /// `if (cond) { then } else { otherwise }`.
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { body }` — the executors bound the number of iterations.
    While(Expr, Vec<Stmt>),
    /// Return a boolean result (the options code returns allow/deny).
    Return(bool),
}

/// A MinC program: a statement list operating on named scalars and one global
/// byte array.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program body.
    pub body: Vec<Stmt>,
    /// Scalar variables and their initial (concrete) values.
    pub scalars: Vec<(String, u64)>,
}

impl Program {
    /// Creates a program.
    pub fn new(scalars: Vec<(&str, u64)>, body: Vec<Stmt>) -> Self {
        Program {
            body,
            scalars: scalars
                .into_iter()
                .map(|(n, v)| (n.to_string(), v))
                .collect(),
        }
    }

    /// Number of statements (recursively).
    pub fn statement_count(&self) -> usize {
        fn count(stmts: &[Stmt]) -> usize {
            stmts
                .iter()
                .map(|s| match s {
                    Stmt::If(_, a, b) => 1 + count(a) + count(b),
                    Stmt::While(_, b) => 1 + count(b),
                    _ => 1,
                })
                .sum()
        }
        count(&self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_and_statement_count() {
        let prog = Program::new(
            vec![("x", 0)],
            vec![
                Stmt::Assign("x".into(), Expr::bin(BinOp::Add, Expr::v("x"), Expr::c(1))),
                Stmt::If(
                    Expr::bin(BinOp::Eq, Expr::v("x"), Expr::c(1)),
                    vec![Stmt::Return(true)],
                    vec![Stmt::Return(false)],
                ),
            ],
        );
        assert_eq!(prog.statement_count(), 4);
        assert_eq!(prog.scalars[0], ("x".to_string(), 0));
    }
}
