//! # symnet-klee
//!
//! The "Klee on C code" baseline of the SymNet paper, rebuilt from scratch:
//! a miniature C-like language (**MinC**) with
//!
//! * a concrete interpreter ([`interp`]), and
//! * a **classic symbolic executor** ([`symex`]) that — unlike SymNet — forks
//!   an execution path at *every* feasible branch and at every symbolic array
//!   index, exactly the behaviour that makes Table 1 of the paper explode
//!   exponentially in the length of the TCP-options field.
//!
//! [`programs::tcp_options_program`] is a transliteration of the Figure 1
//! CISCO ASA options-parsing loop into MinC; the Table 1 and Table 4 benches
//! run the classic executor on it with a symbolic options buffer and report
//! the number of explored paths and the runtime, which reproduces the
//! exponential path growth (3, 8, 19, 45, ... paths for length 1..7) even
//! though the absolute times differ from the original Klee runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod interp;
pub mod minc;
pub mod programs;
pub mod symex;

pub use minc::{BinOp, Expr, Program, Stmt};
pub use symex::{SymExecutor, SymOutcome, SymPath};
