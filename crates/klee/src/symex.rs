//! Classic (per-branch forking) symbolic execution of MinC.
//!
//! This is the baseline SymNet argues against: every feasible branch of an
//! `if`/`while`, every symbolic array index and every non-linear arithmetic
//! operation forks the execution, so the number of paths grows exponentially
//! with the length of the symbolic input (Table 1 of the paper). The executor
//! shares the constraint solver with the rest of the workspace.

use crate::minc::{BinOp, Expr, Program, Stmt};
use std::collections::BTreeMap;
use symnet_solver::{CmpOp, Formula, Solver, SymVar, Term};

/// A concrete-or-symbolic scalar value (8/64-bit unsigned semantics).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SVal {
    /// Concrete value.
    C(i64),
    /// Symbolic variable plus offset.
    S {
        /// Variable.
        var: SymVar,
        /// Offset.
        off: i64,
    },
}

impl SVal {
    fn term(&self) -> Term {
        match self {
            SVal::C(c) => Term::Const(*c as i128),
            SVal::S { var, off } => Term::Var {
                var: *var,
                offset: *off as i128,
            },
        }
    }

    fn as_concrete(&self) -> Option<i64> {
        match self {
            SVal::C(c) => Some(*c),
            SVal::S { .. } => None,
        }
    }
}

/// Limits of the symbolic executor.
#[derive(Clone, Copy, Debug)]
pub struct SymConfig {
    /// Stop after this many completed paths (reported as budget exhaustion —
    /// the equivalent of the paper's "DNF" entries).
    pub max_paths: usize,
    /// Maximum unrollings of a single `while` loop per path.
    pub max_loop_iterations: usize,
    /// Maximum values enumerated when a symbolic quantity must be concretised
    /// (array indices, non-linear arithmetic).
    pub max_concretizations: usize,
}

impl Default for SymConfig {
    fn default() -> Self {
        SymConfig {
            max_paths: 200_000,
            max_loop_iterations: 64,
            max_concretizations: 64,
        }
    }
}

/// How a symbolic path ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SymOutcome {
    /// The program returned this value.
    Returned(bool),
    /// The program fell off the end of its body.
    Completed,
    /// A per-path budget (loop unrolling) was exhausted.
    Truncated,
}

/// One completed symbolic path.
#[derive(Clone, Debug)]
pub struct SymPath {
    /// Path outcome.
    pub outcome: SymOutcome,
    /// Number of atoms in the path condition.
    pub constraint_atoms: usize,
    /// Final symbolic contents of the byte array.
    pub array: Vec<SVal>,
    /// The path condition.
    pub condition: Formula,
}

/// The result of a symbolic run.
#[derive(Clone, Debug)]
pub struct SymReport {
    /// Every explored path.
    pub paths: Vec<SymPath>,
    /// True if the path budget was exhausted (the run "did not finish").
    pub budget_exhausted: bool,
    /// Solver queries issued.
    pub solver_calls: u64,
}

impl SymReport {
    /// Number of explored paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

#[derive(Clone, Debug)]
struct PathState {
    scalars: BTreeMap<String, SVal>,
    array: Vec<SVal>,
    constraints: Vec<Formula>,
}

impl PathState {
    fn condition(&self) -> Formula {
        Formula::and(self.constraints.clone())
    }
}

/// The classic symbolic executor.
pub struct SymExecutor {
    /// Limits.
    pub config: SymConfig,
    solver: Solver,
    next_var: u64,
    paths: Vec<SymPath>,
    budget_exhausted: bool,
}

impl SymExecutor {
    /// Creates an executor with the given limits.
    pub fn new(config: SymConfig) -> Self {
        SymExecutor {
            config,
            solver: Solver::default(),
            next_var: 0,
            paths: Vec::new(),
            budget_exhausted: false,
        }
    }

    /// Symbolically executes `program` on a fully symbolic byte array of
    /// length `array_len`.
    pub fn run_symbolic(&mut self, program: &Program, array_len: usize) -> SymReport {
        self.paths.clear();
        self.budget_exhausted = false;
        let array: Vec<SVal> = (0..array_len)
            .map(|_| {
                let var = SymVar::new(self.next_var, 8);
                self.next_var += 1;
                SVal::S { var, off: 0 }
            })
            .collect();
        let state = PathState {
            scalars: program
                .scalars
                .iter()
                .map(|(n, v)| (n.clone(), SVal::C(*v as i64)))
                .collect(),
            array,
            constraints: Vec::new(),
        };
        let finished = self.exec_block(&program.body, state);
        for (state, outcome) in finished {
            self.finish(state, outcome.unwrap_or(SymOutcome::Completed));
        }
        SymReport {
            paths: std::mem::take(&mut self.paths),
            budget_exhausted: self.budget_exhausted,
            solver_calls: self.solver.stats().calls,
        }
    }

    fn finish(&mut self, state: PathState, outcome: SymOutcome) {
        if self.paths.len() >= self.config.max_paths {
            self.budget_exhausted = true;
            return;
        }
        self.paths.push(SymPath {
            outcome,
            constraint_atoms: state.condition().atom_count(),
            array: state.array.clone(),
            condition: state.condition(),
        });
    }

    fn over_budget(&self) -> bool {
        self.paths.len() >= self.config.max_paths
    }

    /// Executes a block, returning the states that did not return and the
    /// states that returned (with their outcome). Returned/truncated states
    /// are recorded via `finish` as soon as they are known.
    fn exec_block(
        &mut self,
        stmts: &[Stmt],
        state: PathState,
    ) -> Vec<(PathState, Option<SymOutcome>)> {
        let mut active: Vec<PathState> = vec![state];
        for stmt in stmts {
            if self.over_budget() {
                break;
            }
            let mut next_active = Vec::new();
            for s in active {
                for (state, outcome) in self.exec_stmt(stmt, s) {
                    match outcome {
                        Some(o) => self.finish(state, o),
                        None => next_active.push(state),
                    }
                }
            }
            active = next_active;
        }
        active.into_iter().map(|s| (s, None)).collect()
    }

    fn exec_stmt(&mut self, stmt: &Stmt, state: PathState) -> Vec<(PathState, Option<SymOutcome>)> {
        match stmt {
            Stmt::Return(value) => vec![(state, Some(SymOutcome::Returned(*value)))],
            Stmt::Assign(name, expr) => {
                let mut out = Vec::new();
                for (mut s, value) in self.eval(expr, state) {
                    s.scalars.insert(name.clone(), value);
                    out.push((s, None));
                }
                out
            }
            Stmt::Store(index, value) => {
                let mut out = Vec::new();
                for (s, idx) in self.eval(index, state) {
                    for (s2, val) in self.eval(value, s) {
                        for (mut s3, concrete_idx) in self.concretize(idx, s2.clone()) {
                            if (concrete_idx as usize) < s3.array.len() {
                                let i = concrete_idx as usize;
                                s3.array[i] = val;
                            }
                            out.push((s3, None));
                        }
                    }
                }
                out
            }
            Stmt::If(cond, then_block, else_block) => {
                let mut out = Vec::new();
                for (s, formula) in self.eval_cond(cond, state) {
                    // True branch.
                    let mut then_state = s.clone();
                    then_state.constraints.push(formula.clone());
                    if self.solver.is_sat(&then_state.condition()) {
                        out.extend(self.exec_block(then_block, then_state));
                    }
                    // False branch.
                    let mut else_state = s;
                    else_state.constraints.push(Formula::not(formula));
                    if self.solver.is_sat(&else_state.condition()) {
                        out.extend(self.exec_block(else_block, else_state));
                    }
                }
                out
            }
            Stmt::While(cond, body) => {
                let mut out = Vec::new();
                let mut active = vec![(state, 0usize)];
                while let Some((s, iterations)) = active.pop() {
                    if self.over_budget() {
                        out.push((s, Some(SymOutcome::Truncated)));
                        continue;
                    }
                    if iterations >= self.config.max_loop_iterations {
                        out.push((s, Some(SymOutcome::Truncated)));
                        continue;
                    }
                    for (s2, formula) in self.eval_cond(cond, s) {
                        // Exit the loop.
                        let mut exit_state = s2.clone();
                        exit_state.constraints.push(Formula::not(formula.clone()));
                        if self.solver.is_sat(&exit_state.condition()) {
                            out.push((exit_state, None));
                        }
                        // Take another iteration.
                        let mut body_state = s2;
                        body_state.constraints.push(formula);
                        if self.solver.is_sat(&body_state.condition()) {
                            for (s3, outcome) in self.exec_block(body, body_state) {
                                match outcome {
                                    Some(o) => out.push((s3, Some(o))),
                                    None => active.push((s3, iterations + 1)),
                                }
                            }
                        }
                    }
                }
                out
            }
        }
    }

    /// Evaluates an expression, possibly forking (symbolic loads, non-linear
    /// arithmetic). Returns `(state, value)` pairs.
    fn eval(&mut self, expr: &Expr, state: PathState) -> Vec<(PathState, SVal)> {
        match expr {
            Expr::Const(c) => vec![(state, SVal::C(*c as i64))],
            Expr::Var(name) => {
                let v = state.scalars.get(name).copied().unwrap_or(SVal::C(0));
                vec![(state, v)]
            }
            Expr::Load(index) => {
                let mut out = Vec::new();
                for (s, idx) in self.eval(index, state) {
                    match idx.as_concrete() {
                        Some(i) => {
                            let v = s.array.get(i as usize).copied().unwrap_or(SVal::C(0));
                            out.push((s, v));
                        }
                        None => {
                            // Symbolic index: fork per feasible concrete index
                            // — the behaviour that blows up Table 1.
                            for (s2, i) in self.concretize(idx, s) {
                                let v = s2.array.get(i as usize).copied().unwrap_or(SVal::C(0));
                                out.push((s2, v));
                            }
                        }
                    }
                }
                out
            }
            Expr::Bin(op, lhs, rhs) => {
                let mut out = Vec::new();
                for (s, l) in self.eval(lhs, state) {
                    for (s2, r) in self.eval(rhs, s.clone()) {
                        out.extend(self.apply_bin(*op, l, r, s2));
                    }
                }
                out
            }
        }
    }

    fn apply_bin(
        &mut self,
        op: BinOp,
        l: SVal,
        r: SVal,
        state: PathState,
    ) -> Vec<(PathState, SVal)> {
        match op {
            BinOp::Add | BinOp::Sub => self.apply_arith(op, l, r, state),
            // Comparisons and logical operators used as values: concretise by
            // forking on the outcome.
            _ => {
                let formula = self.cmp_formula(op, l, r);
                let mut out = Vec::new();
                let mut true_state = state.clone();
                true_state.constraints.push(formula.clone());
                if self.solver.is_sat(&true_state.condition()) {
                    out.push((true_state, SVal::C(1)));
                }
                let mut false_state = state;
                false_state.constraints.push(Formula::not(formula));
                if self.solver.is_sat(&false_state.condition()) {
                    out.push((false_state, SVal::C(0)));
                }
                out
            }
        }
    }

    fn apply_arith(
        &mut self,
        op: BinOp,
        l: SVal,
        r: SVal,
        state: PathState,
    ) -> Vec<(PathState, SVal)> {
        let subtract = op == BinOp::Sub;
        match (l, r) {
            (SVal::C(a), SVal::C(b)) => {
                let v = if subtract { (a - b).max(0) } else { a + b };
                vec![(state, SVal::C(v))]
            }
            (SVal::S { var, off }, SVal::C(c)) => {
                let delta = if subtract { -c } else { c };
                vec![(
                    state,
                    SVal::S {
                        var,
                        off: off + delta,
                    },
                )]
            }
            (SVal::C(c), SVal::S { var, off }) if !subtract => {
                vec![(state, SVal::S { var, off: off + c })]
            }
            // Anything else (sym - sym, const - sym, sym + sym) is concretised
            // by forking over the feasible values of the right operand.
            (l, r) => {
                let mut out = Vec::new();
                for (s, rv) in self.concretize(r, state) {
                    out.extend(self.apply_arith(op, l, SVal::C(rv), s));
                }
                out
            }
        }
    }

    fn cmp_formula(&self, op: BinOp, l: SVal, r: SVal) -> Formula {
        let cmp = |o| Formula::cmp(o, l.term(), r.term());
        match op {
            BinOp::Eq => cmp(CmpOp::Eq),
            BinOp::Ne => cmp(CmpOp::Ne),
            BinOp::Lt => cmp(CmpOp::Lt),
            BinOp::Gt => cmp(CmpOp::Gt),
            BinOp::Or => Formula::or(vec![
                Formula::cmp(CmpOp::Ne, l.term(), Term::Const(0)),
                Formula::cmp(CmpOp::Ne, r.term(), Term::Const(0)),
            ]),
            BinOp::And => Formula::and(vec![
                Formula::cmp(CmpOp::Ne, l.term(), Term::Const(0)),
                Formula::cmp(CmpOp::Ne, r.term(), Term::Const(0)),
            ]),
            BinOp::Add | BinOp::Sub => unreachable!("arithmetic handled separately"),
        }
    }

    /// Evaluates a boolean condition to a formula, forking only where the
    /// operand evaluation itself forks.
    fn eval_cond(&mut self, expr: &Expr, state: PathState) -> Vec<(PathState, Formula)> {
        match expr {
            Expr::Bin(op, lhs, rhs) if !matches!(op, BinOp::Add | BinOp::Sub) => {
                // Logical connectives over sub-conditions.
                if matches!(op, BinOp::Or | BinOp::And) {
                    let mut out = Vec::new();
                    for (s, f1) in self.eval_cond(lhs, state) {
                        for (s2, f2) in self.eval_cond(rhs, s.clone()) {
                            let combined = match op {
                                BinOp::Or => Formula::or(vec![f1.clone(), f2]),
                                _ => Formula::and(vec![f1.clone(), f2]),
                            };
                            out.push((s2, combined));
                        }
                    }
                    return out;
                }
                let mut out = Vec::new();
                for (s, l) in self.eval(lhs, state) {
                    for (s2, r) in self.eval(rhs, s.clone()) {
                        out.push((s2, self.cmp_formula(*op, l, r)));
                    }
                }
                out
            }
            other => {
                // A bare value used as a condition: non-zero means true.
                let mut out = Vec::new();
                for (s, v) in self.eval(other, state) {
                    out.push((s, Formula::cmp(CmpOp::Ne, v.term(), Term::Const(0))));
                }
                out
            }
        }
    }

    /// Enumerates the feasible concrete values of a symbolic value under the
    /// path condition, forking one state per value (bounded).
    fn concretize(&mut self, value: SVal, state: PathState) -> Vec<(PathState, i64)> {
        match value {
            SVal::C(c) => vec![(state, c)],
            SVal::S { var, off } => {
                let Some(set) = self.solver.feasible_values(&state.condition(), var) else {
                    return Vec::new();
                };
                let mut out = Vec::new();
                for (lo, hi) in set.iter_ranges() {
                    let mut v = lo;
                    while v <= hi {
                        if out.len() >= self.config.max_concretizations {
                            self.budget_exhausted = true;
                            return out;
                        }
                        let mut s = state.clone();
                        s.constraints.push(Formula::eq_const(var, v as u64));
                        out.push((s, v as i64 + off));
                        v += 1;
                    }
                }
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minc::{BinOp, Expr, Program, Stmt};

    #[test]
    fn straight_line_code_has_one_path() {
        let prog = Program::new(
            vec![("x", 0)],
            vec![Stmt::Assign("x".into(), Expr::c(5)), Stmt::Return(true)],
        );
        let mut ex = SymExecutor::new(SymConfig::default());
        let report = ex.run_symbolic(&prog, 4);
        assert_eq!(report.path_count(), 1);
        assert_eq!(report.paths[0].outcome, SymOutcome::Returned(true));
    }

    #[test]
    fn branching_on_symbolic_input_forks() {
        // if (a[0] == 7) return true else return false — two feasible paths.
        let prog = Program::new(
            vec![],
            vec![Stmt::If(
                Expr::bin(BinOp::Eq, Expr::load(Expr::c(0)), Expr::c(7)),
                vec![Stmt::Return(true)],
                vec![Stmt::Return(false)],
            )],
        );
        let mut ex = SymExecutor::new(SymConfig::default());
        let report = ex.run_symbolic(&prog, 1);
        assert_eq!(report.path_count(), 2);
        let outcomes: Vec<_> = report.paths.iter().map(|p| p.outcome).collect();
        assert!(outcomes.contains(&SymOutcome::Returned(true)));
        assert!(outcomes.contains(&SymOutcome::Returned(false)));
    }

    #[test]
    fn infeasible_branches_are_pruned() {
        // a[0] is constrained by the first if; the nested contradictory branch
        // must not appear.
        let prog = Program::new(
            vec![],
            vec![Stmt::If(
                Expr::bin(BinOp::Lt, Expr::load(Expr::c(0)), Expr::c(10)),
                vec![Stmt::If(
                    Expr::bin(BinOp::Gt, Expr::load(Expr::c(0)), Expr::c(20)),
                    vec![Stmt::Return(false)],
                    vec![Stmt::Return(true)],
                )],
                vec![Stmt::Return(false)],
            )],
        );
        let mut ex = SymExecutor::new(SymConfig::default());
        let report = ex.run_symbolic(&prog, 1);
        // Paths: a[0] < 10 (then inner else), a[0] >= 10. The inner "then" is
        // infeasible.
        assert_eq!(report.path_count(), 2);
    }

    #[test]
    fn symbolic_loop_bound_forks_per_iteration() {
        // while (i < a[0]) { i = i + 1 } with a[0] in 0..=3 constrained.
        let prog = Program::new(
            vec![("i", 0)],
            vec![
                Stmt::If(
                    Expr::bin(BinOp::Gt, Expr::load(Expr::c(0)), Expr::c(3)),
                    vec![Stmt::Return(false)],
                    vec![],
                ),
                Stmt::While(
                    Expr::bin(BinOp::Lt, Expr::v("i"), Expr::load(Expr::c(0))),
                    vec![Stmt::Assign(
                        "i".into(),
                        Expr::bin(BinOp::Add, Expr::v("i"), Expr::c(1)),
                    )],
                ),
                Stmt::Return(true),
            ],
        );
        let mut ex = SymExecutor::new(SymConfig::default());
        let report = ex.run_symbolic(&prog, 1);
        // One path per loop count 0..=3 plus the a[0] > 3 path.
        assert_eq!(report.path_count(), 5);
    }

    #[test]
    fn path_budget_is_enforced() {
        // A loop over a fully symbolic bound would explode; the budget caps it.
        let prog = Program::new(
            vec![("i", 0)],
            vec![
                Stmt::While(
                    Expr::bin(BinOp::Lt, Expr::v("i"), Expr::load(Expr::c(0))),
                    vec![Stmt::Assign(
                        "i".into(),
                        Expr::bin(BinOp::Add, Expr::v("i"), Expr::c(1)),
                    )],
                ),
                Stmt::Return(true),
            ],
        );
        let mut ex = SymExecutor::new(SymConfig {
            max_paths: 10,
            max_loop_iterations: 8,
            max_concretizations: 16,
        });
        let report = ex.run_symbolic(&prog, 1);
        assert!(report.path_count() <= 10 + 1);
    }
}
