//! Concrete interpreter for MinC — the "real implementation" that the
//! automated-testing framework replays concrete packets through, and the
//! reference semantics for the symbolic executor.

use crate::minc::{BinOp, Expr, Program, Stmt};
use std::collections::BTreeMap;

/// Result of a concrete run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConcreteResult {
    /// The value returned by the program (`Return`), if any; programs that
    /// fall off the end return `true` (the options code's "allow" default).
    pub returned: bool,
    /// Final contents of the byte array.
    pub array: Vec<u8>,
    /// Final scalar values.
    pub scalars: BTreeMap<String, u64>,
    /// Number of statements executed (used to bound runaway loops).
    pub steps: usize,
}

/// Maximum number of statements a concrete run may execute.
pub const MAX_STEPS: usize = 100_000;

/// Runs a program concretely on the given byte array.
pub fn run(program: &Program, array: &[u8]) -> ConcreteResult {
    let mut scalars: BTreeMap<String, u64> = program.scalars.iter().cloned().collect();
    let mut array = array.to_vec();
    let mut steps = 0usize;
    let returned = exec_block(&program.body, &mut scalars, &mut array, &mut steps);
    ConcreteResult {
        returned: returned.unwrap_or(true),
        array,
        scalars,
        steps,
    }
}

fn exec_block(
    stmts: &[Stmt],
    scalars: &mut BTreeMap<String, u64>,
    array: &mut Vec<u8>,
    steps: &mut usize,
) -> Option<bool> {
    for stmt in stmts {
        *steps += 1;
        if *steps > MAX_STEPS {
            return Some(false);
        }
        match stmt {
            Stmt::Assign(name, expr) => {
                let value = eval(expr, scalars, array);
                scalars.insert(name.clone(), value);
            }
            Stmt::Store(index, value) => {
                let i = eval(index, scalars, array) as usize;
                let v = eval(value, scalars, array) as u8;
                if i < array.len() {
                    array[i] = v;
                }
            }
            Stmt::If(cond, then_block, else_block) => {
                let taken = eval(cond, scalars, array) != 0;
                let block = if taken { then_block } else { else_block };
                if let Some(r) = exec_block(block, scalars, array, steps) {
                    return Some(r);
                }
            }
            Stmt::While(cond, body) => {
                while eval(cond, scalars, array) != 0 {
                    *steps += 1;
                    if *steps > MAX_STEPS {
                        return Some(false);
                    }
                    if let Some(r) = exec_block(body, scalars, array, steps) {
                        return Some(r);
                    }
                }
            }
            Stmt::Return(value) => return Some(*value),
        }
    }
    None
}

fn eval(expr: &Expr, scalars: &BTreeMap<String, u64>, array: &[u8]) -> u64 {
    match expr {
        Expr::Const(c) => *c,
        Expr::Var(name) => *scalars.get(name).unwrap_or(&0),
        Expr::Load(index) => {
            let i = eval(index, scalars, array) as usize;
            array.get(i).copied().unwrap_or(0) as u64
        }
        Expr::Bin(op, lhs, rhs) => {
            let l = eval(lhs, scalars, array);
            let r = eval(rhs, scalars, array);
            match op {
                BinOp::Add => l.wrapping_add(r),
                BinOp::Sub => l.saturating_sub(r),
                BinOp::Eq => (l == r) as u64,
                BinOp::Ne => (l != r) as u64,
                BinOp::Lt => (l < r) as u64,
                BinOp::Gt => (l > r) as u64,
                BinOp::Or => ((l != 0) || (r != 0)) as u64,
                BinOp::And => ((l != 0) && (r != 0)) as u64,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minc::{BinOp, Expr, Program, Stmt};

    #[test]
    fn arithmetic_and_branches() {
        // x = a[0] + 2; if (x > 3) return true else return false
        let prog = Program::new(
            vec![("x", 0)],
            vec![
                Stmt::Assign(
                    "x".into(),
                    Expr::bin(BinOp::Add, Expr::load(Expr::c(0)), Expr::c(2)),
                ),
                Stmt::If(
                    Expr::bin(BinOp::Gt, Expr::v("x"), Expr::c(3)),
                    vec![Stmt::Return(true)],
                    vec![Stmt::Return(false)],
                ),
            ],
        );
        assert!(run(&prog, &[5]).returned);
        assert!(!run(&prog, &[1]).returned);
    }

    #[test]
    fn loops_and_stores() {
        // i = 0; while (i < 4) { a[i] = 7; i = i + 1 }
        let prog = Program::new(
            vec![("i", 0)],
            vec![Stmt::While(
                Expr::bin(BinOp::Lt, Expr::v("i"), Expr::c(4)),
                vec![
                    Stmt::Store(Expr::v("i"), Expr::c(7)),
                    Stmt::Assign("i".into(), Expr::bin(BinOp::Add, Expr::v("i"), Expr::c(1))),
                ],
            )],
        );
        let result = run(&prog, &[0, 0, 0, 0, 9]);
        assert_eq!(result.array, vec![7, 7, 7, 7, 9]);
        assert!(result.returned, "falling off the end returns true");
    }

    #[test]
    fn out_of_bounds_accesses_are_harmless() {
        let prog = Program::new(
            vec![],
            vec![
                Stmt::Store(Expr::c(100), Expr::c(1)),
                Stmt::Assign("x".into(), Expr::load(Expr::c(100))),
                Stmt::Return(true),
            ],
        );
        let result = run(&prog, &[0]);
        assert_eq!(result.array, vec![0]);
        assert_eq!(result.scalars["x"], 0);
    }
}
