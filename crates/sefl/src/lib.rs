//! # symnet-sefl
//!
//! SEFL — the *Symbolic Execution Friendly Language* from the SymNet paper
//! (§3–§4). SEFL is a small imperative language for modeling network boxes
//! whose design goal is that symbolically executing a box's model produces at
//! most as many execution paths as the box has outgoing links.
//!
//! This crate defines the language itself:
//!
//! * [`expr::Expr`] — the expression language (constants, field references,
//!   addition, subtraction, negation, fresh symbolic values),
//! * [`cond::Condition`] — boolean conditions over fields (comparisons, prefix
//!   matches, and/or/not),
//! * [`field::FieldRef`] / [`field::HeaderAddr`] — how programs name packet
//!   header locations (absolute bit offsets or tag-relative offsets) and
//!   metadata entries (string keys in the built-in map),
//! * [`instr::Instruction`] — the full instruction set of Table 2 of the
//!   paper (`Allocate`, `Deallocate`, `Assign`, `CreateTag`, `DestroyTag`,
//!   `Constrain`, `Fail`, `If`, `For`, `Forward`, `Fork`, `InstructionBlock`,
//!   `NoOp`),
//! * [`fields`] — the standard header layout of Figure 6 (Ethernet / IPv4 /
//!   TCP / UDP shorthands such as `IpSrc = Tag("L3") + 96`),
//! * [`packet`] — helper instruction blocks that build symbolic TCP/IP/Ethernet
//!   packets the way SymNet's injection step does,
//! * [`program::ElementProgram`] — a network element model: a set of input and
//!   output ports, each with an associated instruction block.
//!
//! The symbolic execution engine that runs SEFL programs lives in
//! `symnet-core`; ready-made models of switches, routers, NATs, firewalls and
//! Click elements live in `symnet-models`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cond;
pub mod expr;
pub mod field;
pub mod fields;
pub mod instr;
pub mod packet;
pub mod program;

pub use cond::{Condition, RelOp};
pub use expr::Expr;
pub use field::{FieldRef, HeaderAddr, Visibility};
pub use instr::Instruction;
pub use program::{ElementProgram, PortId, PortKind};

/// Parses a dotted-quad IPv4 address into its 32-bit numeric value, the
/// equivalent of the paper's `ipToNumber("192.168.1.1")` helper.
pub fn ip_to_number(ip: &str) -> Option<u64> {
    let mut parts = ip.split('.');
    let mut out: u64 = 0;
    for _ in 0..4 {
        let octet: u64 = parts.next()?.trim().parse().ok()?;
        if octet > 255 {
            return None;
        }
        out = (out << 8) | octet;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

/// Parses a colon-separated MAC address (`aa:bb:cc:dd:ee:ff`) into its 48-bit
/// numeric value.
pub fn mac_to_number(mac: &str) -> Option<u64> {
    let mut parts = mac.split([':', '-']);
    let mut out: u64 = 0;
    for _ in 0..6 {
        let byte = u64::from_str_radix(parts.next()?.trim(), 16).ok()?;
        if byte > 255 {
            return None;
        }
        out = (out << 8) | byte;
    }
    if parts.next().is_some() {
        return None;
    }
    Some(out)
}

/// Formats a 32-bit value as a dotted-quad IPv4 address.
pub fn number_to_ip(value: u64) -> String {
    format!(
        "{}.{}.{}.{}",
        (value >> 24) & 0xff,
        (value >> 16) & 0xff,
        (value >> 8) & 0xff,
        value & 0xff
    )
}

/// Formats a 48-bit value as a colon-separated MAC address.
pub fn number_to_mac(value: u64) -> String {
    format!(
        "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
        (value >> 40) & 0xff,
        (value >> 32) & 0xff,
        (value >> 24) & 0xff,
        (value >> 16) & 0xff,
        (value >> 8) & 0xff,
        value & 0xff
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_round_trip() {
        assert_eq!(ip_to_number("192.168.1.1"), Some(0xc0a80101));
        assert_eq!(ip_to_number("8.8.8.8"), Some(0x08080808));
        assert_eq!(ip_to_number("0.0.0.0"), Some(0));
        assert_eq!(ip_to_number("255.255.255.255"), Some(0xffffffff));
        assert_eq!(number_to_ip(0xc0a80101), "192.168.1.1");
        assert_eq!(ip_to_number("256.0.0.1"), None);
        assert_eq!(ip_to_number("1.2.3"), None);
        assert_eq!(ip_to_number("1.2.3.4.5"), None);
        assert_eq!(ip_to_number("not an ip"), None);
    }

    #[test]
    fn mac_round_trip() {
        assert_eq!(mac_to_number("00:aa:00:aa:00:aa"), Some(0x00aa00aa00aa));
        assert_eq!(mac_to_number("ff:ff:ff:ff:ff:ff"), Some(0xffffffffffff));
        assert_eq!(number_to_mac(0x00aa00aa00aa), "00:aa:00:aa:00:aa");
        assert_eq!(mac_to_number("00-aa-00-aa-00-aa"), Some(0x00aa00aa00aa));
        assert_eq!(mac_to_number("zz:aa:00:aa:00:aa"), None);
        assert_eq!(mac_to_number("00:aa:00:aa:00"), None);
    }
}
