//! The standard packet layout used by SymNet models (Figure 6 of the paper).
//!
//! Packets mimic the physical layout of real packets: every header field has a
//! bit offset relative to a layer tag (`L2`, `L3`, `L4`), and the layer tags
//! are created as the packet is built or encapsulated. The shorthands below
//! are the ones the paper uses in its examples — e.g. `IpSrc` is
//! `Tag("L3") + 96` and is 32 bits wide.

use crate::field::{FieldRef, HeaderAddr};

/// Name of the tag marking the start of the original packet.
pub const TAG_START: &str = "Start";
/// Name of the tag marking the end of the packet.
pub const TAG_END: &str = "End";
/// Name of the layer-2 (Ethernet) tag.
pub const TAG_L2: &str = "L2";
/// Name of the layer-3 (IP) tag.
pub const TAG_L3: &str = "L3";
/// Name of the layer-4 (TCP/UDP) tag.
pub const TAG_L4: &str = "L4";

/// Size of an Ethernet header in bits (dst 48 + src 48 + ethertype 16).
pub const ETHERNET_HEADER_BITS: i64 = 112;
/// Size of an 802.1Q VLAN tag in bits (TPID 16 + TCI 16).
pub const VLAN_TAG_BITS: i64 = 32;
/// Size of an IPv4 header without options in bits.
pub const IPV4_HEADER_BITS: i64 = 160;
/// Size of a TCP header without options in bits.
pub const TCP_HEADER_BITS: i64 = 160;
/// Size of a UDP header in bits.
pub const UDP_HEADER_BITS: i64 = 64;

/// A named header field: its tag-relative address and bit width.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeaderField {
    /// Human-readable shorthand, e.g. `"IpSrc"`.
    pub name: &'static str,
    /// Address of the field.
    pub addr: HeaderAddr,
    /// Width in bits.
    pub width: u16,
}

impl HeaderField {
    fn new(name: &'static str, tag: &str, offset: i64, width: u16) -> Self {
        HeaderField {
            name,
            addr: HeaderAddr::tag_offset(tag, offset),
            width,
        }
    }

    /// The field as a [`FieldRef`] usable in instructions.
    pub fn field(&self) -> FieldRef {
        FieldRef::Header(self.addr.clone())
    }
}

macro_rules! field_fns {
    ($( $(#[$doc:meta])* $fn_name:ident, $name:literal, $tag:expr, $offset:expr, $width:expr; )*) => {
        $(
            $(#[$doc])*
            pub fn $fn_name() -> HeaderField {
                HeaderField::new($name, $tag, $offset, $width)
            }
        )*
    };
}

field_fns! {
    /// Ethernet destination MAC address (`Tag("L2") + 0`, 48 bits).
    ether_dst, "EtherDst", TAG_L2, 0, 48;
    /// Ethernet source MAC address (`Tag("L2") + 48`, 48 bits).
    ether_src, "EtherSrc", TAG_L2, 48, 48;
    /// EtherType (`Tag("L2") + 96`, 16 bits).
    ether_type, "EtherType", TAG_L2, 96, 16;
    /// 802.1Q VLAN identifier, allocated only on tagged frames. Modeled as a
    /// 16-bit field just in front of the Ethernet header (`Tag("L2") - 16`) so
    /// that tagging never collides with the IP header that follows the frame;
    /// the TPID is folded into EtherType.
    vlan_id, "VlanId", TAG_L2, -16, 16;
    /// IPv4 version and IHL byte (`Tag("L3") + 0`, 8 bits).
    ip_version_ihl, "IpVersionIhl", TAG_L3, 0, 8;
    /// IPv4 type-of-service byte (`Tag("L3") + 8`, 8 bits).
    ip_tos, "IpTos", TAG_L3, 8, 8;
    /// IPv4 total length (`Tag("L3") + 16`, 16 bits).
    ip_length, "IpLength", TAG_L3, 16, 16;
    /// IPv4 identification (`Tag("L3") + 32`, 16 bits).
    ip_id, "IpId", TAG_L3, 32, 16;
    /// IPv4 flags and fragment offset (`Tag("L3") + 48`, 16 bits).
    ip_flags_frag, "IpFlagsFrag", TAG_L3, 48, 16;
    /// IPv4 time-to-live (`Tag("L3") + 64`, 8 bits).
    ip_ttl, "IpTtl", TAG_L3, 64, 8;
    /// IPv4 protocol number (`Tag("L3") + 72`, 8 bits).
    ip_proto, "IpProto", TAG_L3, 72, 8;
    /// IPv4 header checksum (`Tag("L3") + 80`, 16 bits).
    ip_checksum, "IpChecksum", TAG_L3, 80, 16;
    /// IPv4 source address (`Tag("L3") + 96`, 32 bits) — the paper's `IpSrc`.
    ip_src, "IpSrc", TAG_L3, 96, 32;
    /// IPv4 destination address (`Tag("L3") + 128`, 32 bits) — the paper's `IpDst`.
    ip_dst, "IpDst", TAG_L3, 128, 32;
    /// TCP source port (`Tag("L4") + 0`, 16 bits).
    tcp_src, "TcpSrc", TAG_L4, 0, 16;
    /// TCP destination port (`Tag("L4") + 16`, 16 bits).
    tcp_dst, "TcpDst", TAG_L4, 16, 16;
    /// TCP sequence number (`Tag("L4") + 32`, 32 bits).
    tcp_seq, "TcpSeq", TAG_L4, 32, 32;
    /// TCP acknowledgement number (`Tag("L4") + 64`, 32 bits).
    tcp_ack, "TcpAck", TAG_L4, 64, 32;
    /// TCP data offset, reserved bits and flags (`Tag("L4") + 96`, 16 bits).
    tcp_flags, "TcpFlags", TAG_L4, 96, 16;
    /// TCP window size (`Tag("L4") + 112`, 16 bits).
    tcp_window, "TcpWindow", TAG_L4, 112, 16;
    /// TCP checksum (`Tag("L4") + 128`, 16 bits).
    tcp_checksum, "TcpChecksum", TAG_L4, 128, 16;
    /// TCP urgent pointer (`Tag("L4") + 144`, 16 bits).
    tcp_urgent, "TcpUrgent", TAG_L4, 144, 16;
    /// Abstract TCP payload handle (`Tag("L4") + 160`, 64 bits). The payload is
    /// modeled as a single opaque value: encryption replaces it with a fresh
    /// symbol, decryption restores the original (§7 "Modeling Encryption").
    tcp_payload, "TcpPayload", TAG_L4, 160, 64;
    /// UDP source port (`Tag("L4") + 0`, 16 bits).
    udp_src, "UdpSrc", TAG_L4, 0, 16;
    /// UDP destination port (`Tag("L4") + 16`, 16 bits).
    udp_dst, "UdpDst", TAG_L4, 16, 16;
    /// UDP length (`Tag("L4") + 32`, 16 bits).
    udp_length, "UdpLength", TAG_L4, 32, 16;
    /// UDP checksum (`Tag("L4") + 48`, 16 bits).
    udp_checksum, "UdpChecksum", TAG_L4, 48, 16;
}

/// The Ethernet header fields in layout order.
pub fn ethernet_fields() -> Vec<HeaderField> {
    vec![ether_dst(), ether_src(), ether_type()]
}

/// The IPv4 header fields in layout order.
pub fn ipv4_fields() -> Vec<HeaderField> {
    vec![
        ip_version_ihl(),
        ip_tos(),
        ip_length(),
        ip_id(),
        ip_flags_frag(),
        ip_ttl(),
        ip_proto(),
        ip_checksum(),
        ip_src(),
        ip_dst(),
    ]
}

/// The TCP header fields in layout order (payload handle included).
pub fn tcp_fields() -> Vec<HeaderField> {
    vec![
        tcp_src(),
        tcp_dst(),
        tcp_seq(),
        tcp_ack(),
        tcp_flags(),
        tcp_window(),
        tcp_checksum(),
        tcp_urgent(),
        tcp_payload(),
    ]
}

/// The UDP header fields in layout order.
pub fn udp_fields() -> Vec<HeaderField> {
    vec![udp_src(), udp_dst(), udp_length(), udp_checksum()]
}

/// Well-known EtherType values used by the models.
pub mod ethertype {
    /// IPv4.
    pub const IPV4: u64 = 0x0800;
    /// 802.1Q VLAN-tagged frame.
    pub const VLAN: u64 = 0x8100;
    /// ARP.
    pub const ARP: u64 = 0x0806;
}

/// Well-known IP protocol numbers used by the models.
pub mod ipproto {
    /// ICMP.
    pub const ICMP: u64 = 1;
    /// IP-in-IP encapsulation.
    pub const IPIP: u64 = 4;
    /// TCP.
    pub const TCP: u64 = 6;
    /// UDP.
    pub const UDP: u64 = 17;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ip_src_matches_paper_shorthand() {
        // The paper writes: Allocate(Tag("L3")+96,32) //IP src
        let f = ip_src();
        assert_eq!(f.addr, HeaderAddr::tag_offset("L3", 96));
        assert_eq!(f.width, 32);
        assert_eq!(f.name, "IpSrc");
    }

    #[test]
    fn layer_sizes_are_consistent_with_field_layout() {
        // The last Ethernet field ends exactly at the Ethernet header size.
        let et = ether_type();
        match et.addr {
            HeaderAddr::TagOffset { offset, .. } => {
                assert_eq!(offset + et.width as i64, ETHERNET_HEADER_BITS)
            }
            _ => panic!("tag-relative expected"),
        }
        // The last IPv4 field ends exactly at the IPv4 header size.
        let dst = ip_dst();
        match dst.addr {
            HeaderAddr::TagOffset { offset, .. } => {
                assert_eq!(offset + dst.width as i64, IPV4_HEADER_BITS)
            }
            _ => panic!("tag-relative expected"),
        }
        // The TCP fixed header is 160 bits; the payload handle sits after it.
        let urg = tcp_urgent();
        match urg.addr {
            HeaderAddr::TagOffset { offset, .. } => {
                assert_eq!(offset + urg.width as i64, TCP_HEADER_BITS)
            }
            _ => panic!("tag-relative expected"),
        }
    }

    #[test]
    fn field_lists_are_ordered_and_disjoint() {
        for list in [ethernet_fields(), ipv4_fields(), tcp_fields(), udp_fields()] {
            let mut last_end = i64::MIN;
            for f in &list {
                let HeaderAddr::TagOffset { offset, .. } = f.addr else {
                    panic!("all standard fields are tag-relative");
                };
                assert!(offset >= last_end, "field {} overlaps previous", f.name);
                last_end = offset + f.width as i64;
            }
        }
    }

    #[test]
    fn protocol_constants() {
        assert_eq!(ethertype::IPV4, 0x0800);
        assert_eq!(ipproto::TCP, 6);
        assert_eq!(ipproto::UDP, 17);
    }
}
