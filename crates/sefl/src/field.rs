//! Naming packet-header locations and metadata entries.
//!
//! SEFL models packets with the physical layout of real packets (Figure 6 of
//! the paper): every header field lives at an absolute bit offset, and
//! programs usually address fields relative to *tags* (`Start`, `L2`, `L3`,
//! `L4`, `End`) so that the same model works regardless of encapsulation
//! depth. Metadata entries, in contrast, are free-form string keys in the
//! built-in map and carry no layout.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Visibility of a metadata entry (the optional `m` parameter of `Allocate`).
///
/// Local metadata is namespaced to the network element instance that created
/// it, which is how the paper's NAT model supports cascaded NAT instances that
/// each store their own mapping (§7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Visibility {
    /// Visible to every element the packet later traverses (the default).
    #[default]
    Global,
    /// Visible only to the element instance that allocated it.
    Local,
}

/// A bit address inside the packet header.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeaderAddr {
    /// An absolute bit offset (may be negative: encapsulation prepends headers
    /// at negative offsets relative to the original `Start`, see Figure 6).
    Absolute(i64),
    /// `Tag(name) + offset` — the address of tag `name` plus a bit offset.
    TagOffset {
        /// Tag name, e.g. `"L3"`.
        tag: String,
        /// Bit offset relative to the tag.
        offset: i64,
    },
}

impl HeaderAddr {
    /// An absolute bit address.
    pub fn absolute(addr: i64) -> Self {
        HeaderAddr::Absolute(addr)
    }

    /// An address relative to a tag.
    pub fn tag(name: impl Into<String>) -> Self {
        HeaderAddr::TagOffset {
            tag: name.into(),
            offset: 0,
        }
    }

    /// An address relative to a tag plus a bit offset.
    pub fn tag_offset(name: impl Into<String>, offset: i64) -> Self {
        HeaderAddr::TagOffset {
            tag: name.into(),
            offset,
        }
    }

    /// Adds a bit offset to this address.
    pub fn plus(self, delta: i64) -> Self {
        match self {
            HeaderAddr::Absolute(a) => HeaderAddr::Absolute(a + delta),
            HeaderAddr::TagOffset { tag, offset } => HeaderAddr::TagOffset {
                tag,
                offset: offset + delta,
            },
        }
    }
}

impl fmt::Display for HeaderAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeaderAddr::Absolute(a) => write!(f, "{a}"),
            HeaderAddr::TagOffset { tag, offset } if *offset == 0 => write!(f, "Tag(\"{tag}\")"),
            HeaderAddr::TagOffset { tag, offset } if *offset > 0 => {
                write!(f, "Tag(\"{tag}\")+{offset}")
            }
            HeaderAddr::TagOffset { tag, offset } => write!(f, "Tag(\"{tag}\"){offset}"),
        }
    }
}

/// A reference to a value the program can read or write: either a packet
/// header field or a metadata entry.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldRef {
    /// A packet-header field at the given bit address. The field's width is
    /// fixed when it is allocated and checked on every access (header memory
    /// safety, §3).
    Header(HeaderAddr),
    /// A metadata entry (a key in SymNet's built-in map).
    Meta(String),
}

impl FieldRef {
    /// A header field at an absolute bit offset.
    pub fn header_at(addr: i64) -> Self {
        FieldRef::Header(HeaderAddr::Absolute(addr))
    }

    /// A header field addressed relative to a tag.
    pub fn header(addr: HeaderAddr) -> Self {
        FieldRef::Header(addr)
    }

    /// A metadata entry.
    pub fn meta(key: impl Into<String>) -> Self {
        FieldRef::Meta(key.into())
    }

    /// Returns the metadata key if this reference names metadata.
    pub fn as_meta(&self) -> Option<&str> {
        match self {
            FieldRef::Meta(k) => Some(k),
            FieldRef::Header(_) => None,
        }
    }

    /// Returns true if this reference names a header field.
    pub fn is_header(&self) -> bool {
        matches!(self, FieldRef::Header(_))
    }
}

impl fmt::Display for FieldRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldRef::Header(addr) => write!(f, "{addr}"),
            FieldRef::Meta(key) => write!(f, "\"{key}\""),
        }
    }
}

impl From<&str> for FieldRef {
    fn from(key: &str) -> Self {
        FieldRef::meta(key)
    }
}

impl From<String> for FieldRef {
    fn from(key: String) -> Self {
        FieldRef::Meta(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_addr_plus_folds() {
        assert_eq!(
            HeaderAddr::absolute(100).plus(28),
            HeaderAddr::Absolute(128)
        );
        assert_eq!(
            HeaderAddr::tag("L3").plus(96),
            HeaderAddr::tag_offset("L3", 96)
        );
        assert_eq!(
            HeaderAddr::tag_offset("L3", 96).plus(-96),
            HeaderAddr::tag_offset("L3", 0)
        );
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(
            HeaderAddr::tag_offset("L3", 96).to_string(),
            "Tag(\"L3\")+96"
        );
        assert_eq!(
            HeaderAddr::tag_offset("L4", -160).to_string(),
            "Tag(\"L4\")-160"
        );
        assert_eq!(HeaderAddr::tag("L2").to_string(), "Tag(\"L2\")");
        assert_eq!(FieldRef::meta("orig-ip").to_string(), "\"orig-ip\"");
    }

    #[test]
    fn fieldref_classification() {
        let h = FieldRef::header_at(0);
        let m = FieldRef::meta("OPT2");
        assert!(h.is_header());
        assert!(!m.is_header());
        assert_eq!(m.as_meta(), Some("OPT2"));
        assert_eq!(h.as_meta(), None);
        let from_str: FieldRef = "key".into();
        assert_eq!(from_str, FieldRef::meta("key"));
    }

    #[test]
    fn visibility_default_is_global() {
        assert_eq!(Visibility::default(), Visibility::Global);
    }
}
