//! Network element programs.
//!
//! "Providing a model for a network element means specifying the number of
//! inputs and output ports and associating a set of SEFL instructions to each
//! port" (§5). An [`ElementProgram`] is exactly that: per-input-port and
//! per-output-port instruction blocks, plus optional wildcard code applied to
//! any input port (the paper's `InputPort(*)`).

use crate::instr::Instruction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Whether a port is an input or an output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum PortKind {
    /// Packet enters the element here.
    Input,
    /// Packet leaves the element here.
    Output,
}

/// A port of a network element, identified by kind and index.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PortId {
    /// Input or output.
    pub kind: PortKind,
    /// Zero-based port index within the element.
    pub index: usize,
}

impl PortId {
    /// Input port `index`.
    pub fn input(index: usize) -> Self {
        PortId {
            kind: PortKind::Input,
            index,
        }
    }

    /// Output port `index`.
    pub fn output(index: usize) -> Self {
        PortId {
            kind: PortKind::Output,
            index,
        }
    }
}

impl fmt::Display for PortId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            PortKind::Input => write!(f, "InputPort({})", self.index),
            PortKind::Output => write!(f, "OutputPort({})", self.index),
        }
    }
}

/// The SEFL model of one network element.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ElementProgram {
    /// Element name (e.g. `"switch-core"`, `"ASA"`, `"IPMirror"`).
    pub name: String,
    /// Number of input ports.
    pub input_count: usize,
    /// Number of output ports.
    pub output_count: usize,
    /// Code attached to specific input ports.
    input_code: BTreeMap<usize, Instruction>,
    /// Code attached to specific output ports.
    output_code: BTreeMap<usize, Instruction>,
    /// Code applied to every input port without specific code
    /// (`InputPort(*)` in the paper).
    any_input_code: Option<Instruction>,
}

impl ElementProgram {
    /// Creates an element with the given number of input and output ports and
    /// no code.
    pub fn new(name: impl Into<String>, input_count: usize, output_count: usize) -> Self {
        ElementProgram {
            name: name.into(),
            input_count,
            output_count,
            input_code: BTreeMap::new(),
            output_code: BTreeMap::new(),
            any_input_code: None,
        }
    }

    /// Attaches code to a specific input port. Panics if the port is out of
    /// range (that is a modeling bug, not a runtime condition).
    pub fn set_input_code(&mut self, port: usize, code: Instruction) -> &mut Self {
        assert!(port < self.input_count, "input port {port} out of range");
        self.input_code.insert(port, code);
        self
    }

    /// Attaches code to every input port that has no specific code.
    pub fn set_any_input_code(&mut self, code: Instruction) -> &mut Self {
        self.any_input_code = Some(code);
        self
    }

    /// Attaches code to a specific output port.
    pub fn set_output_code(&mut self, port: usize, code: Instruction) -> &mut Self {
        assert!(port < self.output_count, "output port {port} out of range");
        self.output_code.insert(port, code);
        self
    }

    /// Builder-style variant of [`Self::set_input_code`].
    pub fn with_input_code(mut self, port: usize, code: Instruction) -> Self {
        self.set_input_code(port, code);
        self
    }

    /// Builder-style variant of [`Self::set_any_input_code`].
    pub fn with_any_input_code(mut self, code: Instruction) -> Self {
        self.set_any_input_code(code);
        self
    }

    /// Builder-style variant of [`Self::set_output_code`].
    pub fn with_output_code(mut self, port: usize, code: Instruction) -> Self {
        self.set_output_code(port, code);
        self
    }

    /// The code executed when a packet arrives at input port `port`: the
    /// port-specific code if present, otherwise the wildcard code, otherwise
    /// `NoOp`.
    pub fn code_for_input(&self, port: usize) -> Instruction {
        self.input_code
            .get(&port)
            .or(self.any_input_code.as_ref())
            .cloned()
            .unwrap_or(Instruction::NoOp)
    }

    /// The code executed when a packet is forwarded to output port `port`
    /// (before it crosses the link), `NoOp` if none was attached.
    pub fn code_for_output(&self, port: usize) -> Instruction {
        self.output_code
            .get(&port)
            .cloned()
            .unwrap_or(Instruction::NoOp)
    }

    /// True if the given port id exists on this element.
    pub fn has_port(&self, port: PortId) -> bool {
        match port.kind {
            PortKind::Input => port.index < self.input_count,
            PortKind::Output => port.index < self.output_count,
        }
    }

    /// Upper bound on the number of execution paths a single packet can
    /// produce inside this element: the worst input-port branching times the
    /// worst output-port branching. The paper's optimised models keep this at
    /// the number of output ports.
    pub fn max_branching(&self) -> usize {
        let input_worst = (0..self.input_count)
            .map(|p| self.code_for_input(p).max_branching())
            .max()
            .unwrap_or(1);
        let output_worst = (0..self.output_count)
            .map(|p| self.code_for_output(p).max_branching())
            .max()
            .unwrap_or(1);
        input_worst.saturating_mul(output_worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Condition;
    use crate::field::FieldRef;

    #[test]
    fn port_ids_display_like_the_paper() {
        assert_eq!(PortId::input(0).to_string(), "InputPort(0)");
        assert_eq!(PortId::output(2).to_string(), "OutputPort(2)");
    }

    #[test]
    fn wildcard_input_code_is_used_as_fallback() {
        let mut e = ElementProgram::new("fw", 2, 1);
        e.set_any_input_code(Instruction::forward(0));
        e.set_input_code(1, Instruction::fail("blocked"));
        assert_eq!(e.code_for_input(0), Instruction::forward(0));
        assert_eq!(e.code_for_input(1), Instruction::fail("blocked"));
        assert_eq!(e.code_for_output(0), Instruction::NoOp);
    }

    #[test]
    fn has_port_checks_ranges() {
        let e = ElementProgram::new("sw", 2, 3);
        assert!(e.has_port(PortId::input(1)));
        assert!(!e.has_port(PortId::input(2)));
        assert!(e.has_port(PortId::output(2)));
        assert!(!e.has_port(PortId::output(3)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn setting_code_on_missing_port_panics() {
        let mut e = ElementProgram::new("sw", 1, 1);
        e.set_input_code(5, Instruction::NoOp);
    }

    #[test]
    fn element_branching_combines_input_and_output() {
        let e = ElementProgram::new("sw", 1, 3)
            .with_any_input_code(Instruction::fork(vec![0, 1, 2]))
            .with_output_code(
                0,
                Instruction::constrain(Condition::eq(FieldRef::meta("EtherDst"), 1u64)),
            );
        assert_eq!(e.max_branching(), 3);
    }
}
