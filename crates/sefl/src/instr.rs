//! The SEFL instruction set (Table 2 of the paper).
//!
//! Every instruction implicitly takes the current execution state (the packet)
//! as input and outputs a new state; `If` and `Fork` may spawn additional
//! execution paths, `Constrain` and `Fail` may terminate the current one.

use crate::cond::Condition;
use crate::expr::Expr;
use crate::field::{FieldRef, HeaderAddr, Visibility};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single SEFL instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Instruction {
    /// `Allocate(v[,s,m])` — allocates a new value stack for `v` of `width`
    /// bits. Header allocations require a width; metadata allocations default
    /// to 64 bits and accept a visibility.
    Allocate {
        /// The allocated header field or metadata entry.
        field: FieldRef,
        /// Width in bits (mandatory for header fields).
        width: Option<u16>,
        /// Metadata visibility (ignored for header fields).
        visibility: Visibility,
    },
    /// `Deallocate(v[,s])` — pops the topmost value stack of `v`; if a width is
    /// given it is checked against the allocated width and the path fails on a
    /// mismatch.
    Deallocate {
        /// The deallocated field.
        field: FieldRef,
        /// Expected width in bits, checked if present.
        width: Option<u16>,
    },
    /// `Assign(v, e)` — symbolically evaluates `e` and assigns the result to
    /// `v`, clearing all constraints that applied to `v`'s previous value.
    Assign {
        /// Target field.
        field: FieldRef,
        /// Assigned expression.
        expr: Expr,
    },
    /// `CreateTag(t, e)` — creates tag `t` at the (concrete) bit address `e`.
    CreateTag {
        /// Tag name.
        name: String,
        /// Address: absolute or relative to an existing tag.
        value: HeaderAddr,
    },
    /// `DestroyTag(t)` — removes tag `t`.
    DestroyTag {
        /// Tag name.
        name: String,
    },
    /// `Constrain(cond)` — ensures the condition always holds on this path;
    /// the path fails if it cannot. Crucially this does *not* branch.
    Constrain(Condition),
    /// `Fail(msg)` — stops the current path and records `msg`.
    Fail(String),
    /// `If(cond, i1, i2)` — forks the state: one path assumes `cond` and runs
    /// `i1`, the other assumes `!cond` and runs `i2`.
    If {
        /// Branch condition.
        cond: Condition,
        /// Instruction executed when `cond` holds.
        then_branch: Box<Instruction>,
        /// Instruction executed when `cond` does not hold.
        else_branch: Box<Instruction>,
    },
    /// `For(v in pattern, instr)` — binds `v` to every metadata key matching
    /// `pattern` (a glob with `*` wildcards over a snapshot of the keys) and
    /// executes `instr` for each match. The loop is unfolded before execution
    /// and never branches.
    For {
        /// Loop variable; inside the body, metadata key `var` resolves to the
        /// matched key.
        var: String,
        /// Glob pattern over metadata keys (`*` matches any substring).
        pattern: String,
        /// Loop body.
        body: Box<Instruction>,
    },
    /// `Forward(i)` — sends the packet to output port `i` of the current
    /// element.
    Forward(usize),
    /// `Fork(i1, i2, ...)` — duplicates the packet and forwards one copy to
    /// each listed output port.
    Fork(Vec<usize>),
    /// `InstructionBlock(i, ...)` — executes the instructions in order.
    Block(Vec<Instruction>),
    /// `NoOp` — does nothing.
    NoOp,
    /// `Abort(msg)` — a testing/fuzzing poison pill: the interpreter panics
    /// when it reaches this instruction. Unlike [`Instruction::Fail`], which
    /// terminates one execution *path*, `Abort` simulates a defect in a model
    /// or in the engine itself (the kind of panic the executor must survive
    /// without deadlocking its worker pool). Used by the engine's
    /// panic-safety tests and by differential fuzzing; never emitted by the
    /// shipped models.
    Abort(String),
}

impl Instruction {
    /// Allocates a header field of `width` bits.
    pub fn allocate_header(addr: HeaderAddr, width: u16) -> Instruction {
        Instruction::Allocate {
            field: FieldRef::Header(addr),
            width: Some(width),
            visibility: Visibility::Global,
        }
    }

    /// Allocates a global metadata entry.
    pub fn allocate_meta(key: impl Into<String>, width: u16) -> Instruction {
        Instruction::Allocate {
            field: FieldRef::meta(key),
            width: Some(width),
            visibility: Visibility::Global,
        }
    }

    /// Allocates a metadata entry local to the current element instance (the
    /// paper's `Allocate("orig-ip", 32, local)`).
    pub fn allocate_local_meta(key: impl Into<String>, width: u16) -> Instruction {
        Instruction::Allocate {
            field: FieldRef::meta(key),
            width: Some(width),
            visibility: Visibility::Local,
        }
    }

    /// Deallocates a field without a width check.
    pub fn deallocate(field: impl Into<FieldRef>) -> Instruction {
        Instruction::Deallocate {
            field: field.into(),
            width: None,
        }
    }

    /// Deallocates a field, checking the allocated width.
    pub fn deallocate_checked(field: impl Into<FieldRef>, width: u16) -> Instruction {
        Instruction::Deallocate {
            field: field.into(),
            width: Some(width),
        }
    }

    /// Assigns an expression to a field.
    pub fn assign(field: impl Into<FieldRef>, expr: impl Into<Expr>) -> Instruction {
        Instruction::Assign {
            field: field.into(),
            expr: expr.into(),
        }
    }

    /// Creates a tag.
    pub fn create_tag(name: impl Into<String>, value: HeaderAddr) -> Instruction {
        Instruction::CreateTag {
            name: name.into(),
            value,
        }
    }

    /// Destroys a tag.
    pub fn destroy_tag(name: impl Into<String>) -> Instruction {
        Instruction::DestroyTag { name: name.into() }
    }

    /// Constrains the current path (no branching).
    pub fn constrain(cond: Condition) -> Instruction {
        Instruction::Constrain(cond)
    }

    /// Fails the current path with a message.
    pub fn fail(msg: impl Into<String>) -> Instruction {
        Instruction::Fail(msg.into())
    }

    /// A poison pill that panics the interpreter when executed (see
    /// [`Instruction::Abort`]).
    pub fn abort(msg: impl Into<String>) -> Instruction {
        Instruction::Abort(msg.into())
    }

    /// An `If` with both branches.
    pub fn if_else(
        cond: Condition,
        then_branch: Instruction,
        else_branch: Instruction,
    ) -> Instruction {
        Instruction::If {
            cond,
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        }
    }

    /// An `If` whose else branch is `NoOp`.
    pub fn if_then(cond: Condition, then_branch: Instruction) -> Instruction {
        Instruction::if_else(cond, then_branch, Instruction::NoOp)
    }

    /// A `For` loop over metadata keys matching a glob pattern.
    pub fn for_each(
        var: impl Into<String>,
        pattern: impl Into<String>,
        body: Instruction,
    ) -> Instruction {
        Instruction::For {
            var: var.into(),
            pattern: pattern.into(),
            body: Box::new(body),
        }
    }

    /// Forwards to an output port.
    pub fn forward(port: usize) -> Instruction {
        Instruction::Forward(port)
    }

    /// Forks to several output ports.
    pub fn fork(ports: Vec<usize>) -> Instruction {
        Instruction::Fork(ports)
    }

    /// Groups instructions into a block.
    pub fn block(instructions: Vec<Instruction>) -> Instruction {
        Instruction::Block(instructions)
    }

    /// Counts the instructions in this tree (blocks and branches included).
    pub fn len(&self) -> usize {
        match self {
            Instruction::Block(instrs) => 1 + instrs.iter().map(Instruction::len).sum::<usize>(),
            Instruction::If {
                then_branch,
                else_branch,
                ..
            } => 1 + then_branch.len() + else_branch.len(),
            Instruction::For { body, .. } => 1 + body.len(),
            _ => 1,
        }
    }

    /// Returns true when the instruction tree is a bare `NoOp`.
    pub fn is_empty(&self) -> bool {
        matches!(self, Instruction::NoOp)
    }

    /// The maximum number of execution paths this instruction tree can create
    /// from a single incoming path, ignoring path failures. This is the
    /// "branching factor" the paper's §7 models are optimised for; model tests
    /// assert it stays at or below the number of output ports.
    pub fn max_branching(&self) -> usize {
        match self {
            Instruction::If {
                then_branch,
                else_branch,
                ..
            } => then_branch.max_branching() + else_branch.max_branching(),
            Instruction::Fork(ports) => ports.len().max(1),
            Instruction::Block(instrs) => instrs
                .iter()
                .map(Instruction::max_branching)
                .fold(1usize, |acc, b| acc.saturating_mul(b)),
            Instruction::For { body, .. } => body.max_branching(),
            _ => 1,
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Allocate {
                field,
                width,
                visibility,
            } => match width {
                Some(w) => match visibility {
                    Visibility::Local => write!(f, "Allocate({field},{w},local)"),
                    Visibility::Global => write!(f, "Allocate({field},{w})"),
                },
                None => write!(f, "Allocate({field})"),
            },
            Instruction::Deallocate { field, width } => match width {
                Some(w) => write!(f, "Deallocate({field},{w})"),
                None => write!(f, "Deallocate({field})"),
            },
            Instruction::Assign { field, expr } => write!(f, "Assign({field},{expr})"),
            Instruction::CreateTag { name, value } => write!(f, "CreateTag(\"{name}\",{value})"),
            Instruction::DestroyTag { name } => write!(f, "DestroyTag(\"{name}\")"),
            Instruction::Constrain(cond) => write!(f, "Constrain({cond})"),
            Instruction::Fail(msg) => write!(f, "Fail(\"{msg}\")"),
            Instruction::If {
                cond,
                then_branch,
                else_branch,
            } => write!(f, "If({cond}, {then_branch}, {else_branch})"),
            Instruction::For { var, pattern, body } => {
                write!(f, "For({var} in \"{pattern}\", {body})")
            }
            Instruction::Forward(port) => write!(f, "Forward(OutputPort({port}))"),
            Instruction::Fork(ports) => {
                write!(f, "Fork(")?;
                for (i, p) in ports.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "OutputPort({p})")?;
                }
                write!(f, ")")
            }
            Instruction::Block(instrs) => {
                write!(f, "InstructionBlock(")?;
                for (i, instr) in instrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{instr}")?;
                }
                write!(f, ")")
            }
            Instruction::NoOp => write!(f, "NoOp"),
            Instruction::Abort(msg) => write!(f, "Abort(\"{msg}\")"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::Condition;
    use crate::field::FieldRef;

    #[test]
    fn builders_produce_expected_variants() {
        let i = Instruction::allocate_local_meta("orig-ip", 32);
        match i {
            Instruction::Allocate {
                visibility: Visibility::Local,
                width: Some(32),
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(Instruction::forward(1), Instruction::Forward(1)));
        assert!(Instruction::NoOp.is_empty());
        assert!(!Instruction::fail("x").is_empty());
    }

    #[test]
    fn len_counts_nested_instructions() {
        let block = Instruction::block(vec![
            Instruction::NoOp,
            Instruction::if_else(
                Condition::True,
                Instruction::NoOp,
                Instruction::block(vec![Instruction::NoOp, Instruction::NoOp]),
            ),
        ]);
        // outer block(1) + NoOp(1) + If(1) + then NoOp(1) + else block(1) + 2*NoOp(2) = 7
        assert_eq!(block.len(), 7);
    }

    #[test]
    fn branching_factor_of_paper_models() {
        // Constrain-based filtering does not branch.
        let constrain = Instruction::block(vec![
            Instruction::constrain(Condition::eq(FieldRef::meta("TcpDst"), 80u64)),
            Instruction::forward(0),
        ]);
        assert_eq!(constrain.max_branching(), 1);
        // The egress switch model forks once per output port.
        let egress = Instruction::fork(vec![0, 1, 2, 3]);
        assert_eq!(egress.max_branching(), 4);
        // The ingress model's nested Ifs produce one path per port too.
        let ingress = Instruction::if_else(
            Condition::True,
            Instruction::forward(0),
            Instruction::if_else(
                Condition::True,
                Instruction::forward(1),
                Instruction::fail("unknown"),
            ),
        );
        assert_eq!(ingress.max_branching(), 3);
    }

    #[test]
    fn display_matches_paper_syntax() {
        let i = Instruction::constrain(Condition::eq(FieldRef::meta("TcpDst"), 80u64));
        assert_eq!(i.to_string(), "Constrain(\"TcpDst\" == 80)");
        let fwd = Instruction::forward(2);
        assert_eq!(fwd.to_string(), "Forward(OutputPort(2))");
        let fork = Instruction::fork(vec![0, 1]);
        assert_eq!(fork.to_string(), "Fork(OutputPort(0),OutputPort(1))");
    }
}
