//! The SEFL expression language.
//!
//! SEFL deliberately keeps expressions minimal — "referencing, subtraction,
//! addition, negation" (§5) — which is what keeps the symbolic state small
//! enough to verify whole networks. [`Expr::Symbolic`] introduces a fresh,
//! unconstrained symbolic value, which the paper's models use for NAT port
//! assignment and for the ciphertext produced by encryption.

use crate::field::FieldRef;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An SEFL expression.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Expr {
    /// A constant value (`ConstantValue(..)` in the paper's notation).
    Const(u64),
    /// The current value of a header field or metadata entry.
    Ref(FieldRef),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// A fresh, unconstrained symbolic value (`SymbolicValue()` in the paper).
    /// The optional width (in bits) defaults to the width of the assigned
    /// field.
    Symbolic {
        /// Optional bit width of the fresh symbol.
        width: Option<u16>,
    },
}

impl Expr {
    /// A constant expression.
    pub fn constant(value: u64) -> Self {
        Expr::Const(value)
    }

    /// A reference to a field or metadata entry.
    pub fn reference(field: impl Into<FieldRef>) -> Self {
        Expr::Ref(field.into())
    }

    /// A fresh symbolic value with the width of the assigned field.
    pub fn symbolic() -> Self {
        Expr::Symbolic { width: None }
    }

    /// A fresh symbolic value with an explicit bit width.
    pub fn symbolic_with_width(width: u16) -> Self {
        Expr::Symbolic { width: Some(width) }
    }

    /// `self + other`. (A builder method mirroring SEFL syntax; SEFL
    /// expressions deliberately do not implement the `std::ops` traits, whose
    /// `Output` machinery would obscure the tiny DSL.)
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Self {
        Expr::Add(Box::new(self), Box::new(other))
    }

    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Self {
        Expr::Sub(Box::new(self), Box::new(other))
    }

    /// `-self`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Self {
        Expr::Neg(Box::new(self))
    }

    /// `self + constant`.
    pub fn plus(self, delta: u64) -> Self {
        self.add(Expr::Const(delta))
    }

    /// `self - constant`.
    pub fn minus(self, delta: u64) -> Self {
        self.sub(Expr::Const(delta))
    }

    /// Returns true if the expression introduces a fresh symbolic value
    /// anywhere.
    pub fn has_symbolic(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Ref(_) => false,
            Expr::Symbolic { .. } => true,
            Expr::Add(a, b) | Expr::Sub(a, b) => a.has_symbolic() || b.has_symbolic(),
            Expr::Neg(a) => a.has_symbolic(),
        }
    }

    /// Collects every field/metadata reference in the expression.
    pub fn references(&self) -> Vec<&FieldRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a FieldRef>) {
        match self {
            Expr::Const(_) | Expr::Symbolic { .. } => {}
            Expr::Ref(f) => out.push(f),
            Expr::Add(a, b) | Expr::Sub(a, b) => {
                a.collect_refs(out);
                b.collect_refs(out);
            }
            Expr::Neg(a) => a.collect_refs(out),
        }
    }
}

impl From<u64> for Expr {
    fn from(value: u64) -> Self {
        Expr::Const(value)
    }
}

impl From<FieldRef> for Expr {
    fn from(field: FieldRef) -> Self {
        Expr::Ref(field)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Ref(r) => write!(f, "{r}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Neg(a) => write!(f, "-({a})"),
            Expr::Symbolic { width: None } => write!(f, "SymbolicValue()"),
            Expr::Symbolic { width: Some(w) } => write!(f, "SymbolicValue({w})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldRef;

    #[test]
    fn builders_compose() {
        let f = FieldRef::meta("x");
        let e = Expr::reference(f.clone()).plus(5).minus(2);
        assert!(matches!(e, Expr::Sub(_, _)));
        assert_eq!(e.references(), vec![&f]);
        assert!(!e.has_symbolic());
    }

    #[test]
    fn symbolic_detection() {
        let e = Expr::reference(FieldRef::meta("x")).add(Expr::symbolic());
        assert!(e.has_symbolic());
        assert!(Expr::symbolic_with_width(16).has_symbolic());
        assert!(!Expr::constant(3).has_symbolic());
    }

    #[test]
    fn display_is_readable() {
        let e = Expr::reference(FieldRef::meta("len")).plus(20);
        assert_eq!(e.to_string(), "(\"len\" + 20)");
        assert_eq!(Expr::constant(7).neg().to_string(), "-(7)");
        assert_eq!(Expr::symbolic().to_string(), "SymbolicValue()");
    }

    #[test]
    fn conversions() {
        let from_u64: Expr = 9u64.into();
        assert_eq!(from_u64, Expr::Const(9));
        let from_field: Expr = FieldRef::meta("k").into();
        assert_eq!(from_field, Expr::Ref(FieldRef::meta("k")));
    }
}
