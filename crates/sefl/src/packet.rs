//! Instruction blocks that build symbolic packets.
//!
//! SymNet "starts execution by creating an initial empty packet, with no
//! header fields or metadata, and then executes code to create a symbolic
//! packet of the given type (e.g. TCP)" (§5). The builders here produce those
//! construction blocks: they create the layer tags of Figure 6 and allocate
//! every header field with a fresh symbolic value, which callers can then
//! specialise with extra `Constrain` or `Assign` instructions.

use crate::expr::Expr;
use crate::field::HeaderAddr;
use crate::fields::{
    self, ethernet_fields, ipv4_fields, tcp_fields, udp_fields, ETHERNET_HEADER_BITS,
    IPV4_HEADER_BITS, TAG_END, TAG_L2, TAG_L3, TAG_L4, TAG_START, TCP_HEADER_BITS,
};
use crate::instr::Instruction;

/// Builder for symbolic packet construction blocks.
#[derive(Clone, Debug, Default)]
pub struct PacketBuilder {
    instructions: Vec<Instruction>,
    end_offset: i64,
}

impl PacketBuilder {
    /// Starts a new packet: creates the `Start` tag at address 0.
    pub fn new() -> Self {
        PacketBuilder {
            instructions: vec![Instruction::create_tag(TAG_START, HeaderAddr::absolute(0))],
            end_offset: 0,
        }
    }

    /// Adds an Ethernet header with symbolic addresses and the given EtherType
    /// (symbolic if `None`).
    pub fn ethernet(mut self, ether_type: Option<u64>) -> Self {
        self.instructions
            .push(Instruction::create_tag(TAG_L2, HeaderAddr::tag(TAG_START)));
        for f in ethernet_fields() {
            self.instructions
                .push(Instruction::allocate_header(f.addr.clone(), f.width));
            let value = if f.name == "EtherType" {
                match ether_type {
                    Some(v) => Expr::constant(v),
                    None => Expr::symbolic(),
                }
            } else {
                Expr::symbolic()
            };
            self.instructions
                .push(Instruction::assign(f.field(), value));
        }
        self.end_offset = self.end_offset.max(ETHERNET_HEADER_BITS);
        self
    }

    /// Adds an IPv4 header (after Ethernet if present) with every field
    /// symbolic except the protocol, which is set if given.
    pub fn ipv4(mut self, protocol: Option<u64>) -> Self {
        let l3_addr = if self.has_tag(TAG_L2) {
            HeaderAddr::tag_offset(TAG_L2, ETHERNET_HEADER_BITS)
        } else {
            HeaderAddr::tag(TAG_START)
        };
        self.instructions
            .push(Instruction::create_tag(TAG_L3, l3_addr));
        for f in ipv4_fields() {
            self.instructions
                .push(Instruction::allocate_header(f.addr.clone(), f.width));
            let value = if f.name == "IpProto" {
                match protocol {
                    Some(v) => Expr::constant(v),
                    None => Expr::symbolic(),
                }
            } else {
                Expr::symbolic()
            };
            self.instructions
                .push(Instruction::assign(f.field(), value));
        }
        self.end_offset += IPV4_HEADER_BITS;
        self
    }

    /// Adds a TCP header with all fields symbolic.
    pub fn tcp(mut self) -> Self {
        self.instructions.push(Instruction::create_tag(
            TAG_L4,
            HeaderAddr::tag_offset(TAG_L3, IPV4_HEADER_BITS),
        ));
        for f in tcp_fields() {
            self.instructions
                .push(Instruction::allocate_header(f.addr.clone(), f.width));
            self.instructions
                .push(Instruction::assign(f.field(), Expr::symbolic()));
        }
        self.end_offset += TCP_HEADER_BITS;
        self
    }

    /// Adds a UDP header with all fields symbolic.
    pub fn udp(mut self) -> Self {
        self.instructions.push(Instruction::create_tag(
            TAG_L4,
            HeaderAddr::tag_offset(TAG_L3, IPV4_HEADER_BITS),
        ));
        for f in udp_fields() {
            self.instructions
                .push(Instruction::allocate_header(f.addr.clone(), f.width));
            self.instructions
                .push(Instruction::assign(f.field(), Expr::symbolic()));
        }
        self.end_offset += fields::UDP_HEADER_BITS;
        self
    }

    /// Appends an arbitrary instruction (e.g. a `Constrain` specialising the
    /// packet).
    pub fn with(mut self, instruction: Instruction) -> Self {
        self.instructions.push(instruction);
        self
    }

    /// Finishes the packet: creates the `End` tag after the last added layer
    /// and returns the construction block.
    pub fn build(mut self) -> Instruction {
        self.instructions.push(Instruction::create_tag(
            TAG_END,
            HeaderAddr::absolute(self.end_offset),
        ));
        Instruction::block(self.instructions)
    }

    fn has_tag(&self, tag: &str) -> bool {
        self.instructions.iter().any(|i| match i {
            Instruction::CreateTag { name, .. } => name == tag,
            _ => false,
        })
    }
}

/// A fully symbolic Ethernet + IPv4 + TCP packet — the packet SymNet injects
/// for most of the paper's experiments.
pub fn symbolic_tcp_packet() -> Instruction {
    PacketBuilder::new()
        .ethernet(Some(fields::ethertype::IPV4))
        .ipv4(Some(fields::ipproto::TCP))
        .tcp()
        .build()
}

/// A fully symbolic Ethernet + IPv4 + UDP packet.
pub fn symbolic_udp_packet() -> Instruction {
    PacketBuilder::new()
        .ethernet(Some(fields::ethertype::IPV4))
        .ipv4(Some(fields::ipproto::UDP))
        .udp()
        .build()
}

/// A fully symbolic Ethernet + IPv4 packet with a symbolic protocol field
/// ("purely symbolic packet" in §8.5).
pub fn symbolic_ip_packet() -> Instruction {
    PacketBuilder::new()
        .ethernet(Some(fields::ethertype::IPV4))
        .ipv4(None)
        .build()
}

/// A symbolic IPv4 + TCP packet without an Ethernet header (used when the
/// injection point is a layer-3 port, e.g. the router experiments of §8.1).
pub fn symbolic_l3_tcp_packet() -> Instruction {
    PacketBuilder::new()
        .ipv4(Some(fields::ipproto::TCP))
        .tcp()
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldRef;

    fn count_kind(instr: &Instruction, pred: &dyn Fn(&Instruction) -> bool) -> usize {
        match instr {
            Instruction::Block(instrs) => instrs.iter().map(|i| count_kind(i, pred)).sum(),
            other => usize::from(pred(other)),
        }
    }

    #[test]
    fn tcp_packet_creates_all_layer_tags() {
        let pkt = symbolic_tcp_packet();
        let tags = count_kind(&pkt, &|i| matches!(i, Instruction::CreateTag { .. }));
        // Start, L2, L3, L4, End.
        assert_eq!(tags, 5);
    }

    #[test]
    fn tcp_packet_allocates_every_field_before_assigning() {
        let pkt = symbolic_tcp_packet();
        let Instruction::Block(instrs) = &pkt else {
            panic!("expected a block")
        };
        let mut allocated: Vec<FieldRef> = Vec::new();
        for i in instrs {
            match i {
                Instruction::Allocate { field, .. } => allocated.push(field.clone()),
                Instruction::Assign { field, .. } => {
                    assert!(allocated.contains(field), "assign before allocate: {field}")
                }
                _ => {}
            }
        }
        // 3 Ethernet + 10 IPv4 + 9 TCP fields.
        assert_eq!(allocated.len(), 22);
    }

    #[test]
    fn ip_packet_has_no_l4_tag() {
        let pkt = symbolic_ip_packet();
        let l4_tags = count_kind(
            &pkt,
            &|i| matches!(i, Instruction::CreateTag { name, .. } if name == TAG_L4),
        );
        assert_eq!(l4_tags, 0);
    }

    #[test]
    fn l3_packet_skips_ethernet() {
        let pkt = symbolic_l3_tcp_packet();
        let l2_tags = count_kind(
            &pkt,
            &|i| matches!(i, Instruction::CreateTag { name, .. } if name == TAG_L2),
        );
        assert_eq!(l2_tags, 0);
        let l3_tags = count_kind(
            &pkt,
            &|i| matches!(i, Instruction::CreateTag { name, .. } if name == TAG_L3),
        );
        assert_eq!(l3_tags, 1);
    }

    #[test]
    fn packet_construction_never_branches() {
        for pkt in [
            symbolic_tcp_packet(),
            symbolic_udp_packet(),
            symbolic_ip_packet(),
            symbolic_l3_tcp_packet(),
        ] {
            assert_eq!(pkt.max_branching(), 1);
        }
    }
}
