//! Boolean conditions used by `Constrain` and `If`.

use crate::expr::Expr;
use crate::field::FieldRef;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Relational operators usable in SEFL conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl RelOp {
    /// The complementary operator.
    pub fn negate(self) -> RelOp {
        match self {
            RelOp::Eq => RelOp::Ne,
            RelOp::Ne => RelOp::Eq,
            RelOp::Lt => RelOp::Ge,
            RelOp::Le => RelOp::Gt,
            RelOp::Gt => RelOp::Le,
            RelOp::Ge => RelOp::Lt,
        }
    }
}

impl fmt::Display for RelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RelOp::Eq => "==",
            RelOp::Ne => "!=",
            RelOp::Lt => "<",
            RelOp::Le => "<=",
            RelOp::Gt => ">",
            RelOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean condition over packet fields and metadata.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Condition {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison between two expressions.
    Cmp {
        /// Operator.
        op: RelOp,
        /// Left-hand side.
        lhs: Expr,
        /// Right-hand side.
        rhs: Expr,
    },
    /// Longest-prefix match: the top `prefix_len` bits of the field equal the
    /// top bits of `value`. `width` is the field width the prefix refers to
    /// (32 for IPv4 prefixes, 48 for MAC prefixes, ...).
    Match {
        /// The matched field.
        field: FieldRef,
        /// Prefix value.
        value: u64,
        /// Number of leading bits that must match.
        prefix_len: u8,
        /// Width of the field the prefix refers to.
        width: u8,
    },
    /// Conjunction.
    And(Vec<Condition>),
    /// Disjunction.
    Or(Vec<Condition>),
    /// Negation.
    Not(Box<Condition>),
}

impl Condition {
    /// `lhs op rhs` on arbitrary expressions.
    pub fn cmp(op: RelOp, lhs: impl Into<Expr>, rhs: impl Into<Expr>) -> Condition {
        Condition::Cmp {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// `field == value`.
    pub fn eq(field: impl Into<FieldRef>, value: impl Into<Expr>) -> Condition {
        Condition::cmp(RelOp::Eq, Expr::Ref(field.into()), value)
    }

    /// `field != value`.
    pub fn ne(field: impl Into<FieldRef>, value: impl Into<Expr>) -> Condition {
        Condition::cmp(RelOp::Ne, Expr::Ref(field.into()), value)
    }

    /// `field < value`.
    pub fn lt(field: impl Into<FieldRef>, value: impl Into<Expr>) -> Condition {
        Condition::cmp(RelOp::Lt, Expr::Ref(field.into()), value)
    }

    /// `field <= value`.
    pub fn le(field: impl Into<FieldRef>, value: impl Into<Expr>) -> Condition {
        Condition::cmp(RelOp::Le, Expr::Ref(field.into()), value)
    }

    /// `field > value`.
    pub fn gt(field: impl Into<FieldRef>, value: impl Into<Expr>) -> Condition {
        Condition::cmp(RelOp::Gt, Expr::Ref(field.into()), value)
    }

    /// `field >= value`.
    pub fn ge(field: impl Into<FieldRef>, value: impl Into<Expr>) -> Condition {
        Condition::cmp(RelOp::Ge, Expr::Ref(field.into()), value)
    }

    /// Longest-prefix match on an IPv4 destination-style 32-bit field.
    pub fn matches_ipv4_prefix(
        field: impl Into<FieldRef>,
        prefix: u64,
        prefix_len: u8,
    ) -> Condition {
        Condition::Match {
            field: field.into(),
            value: prefix,
            prefix_len,
            width: 32,
        }
    }

    /// Prefix match with an explicit field width.
    pub fn matches_prefix(
        field: impl Into<FieldRef>,
        value: u64,
        prefix_len: u8,
        width: u8,
    ) -> Condition {
        Condition::Match {
            field: field.into(),
            value,
            prefix_len,
            width,
        }
    }

    /// Conjunction with flattening and constant folding.
    pub fn and(parts: Vec<Condition>) -> Condition {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Condition::True => {}
                Condition::False => return Condition::False,
                Condition::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Condition::True,
            1 => out.pop().unwrap(),
            _ => Condition::And(out),
        }
    }

    /// Disjunction with flattening and constant folding.
    pub fn or(parts: Vec<Condition>) -> Condition {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Condition::False => {}
                Condition::True => return Condition::True,
                Condition::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Condition::False,
            1 => out.pop().unwrap(),
            _ => Condition::Or(out),
        }
    }

    /// Negation with folding of comparisons and double negations.
    /// (An associated constructor mirroring SEFL's `Not(...)`, not `std::ops::Not`.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(cond: Condition) -> Condition {
        match cond {
            Condition::True => Condition::False,
            Condition::False => Condition::True,
            Condition::Not(inner) => *inner,
            Condition::Cmp { op, lhs, rhs } => Condition::Cmp {
                op: op.negate(),
                lhs,
                rhs,
            },
            other => Condition::Not(Box::new(other)),
        }
    }

    /// Collects every field/metadata reference mentioned by the condition.
    pub fn references(&self) -> Vec<&FieldRef> {
        let mut out = Vec::new();
        self.collect_refs(&mut out);
        out
    }

    fn collect_refs<'a>(&'a self, out: &mut Vec<&'a FieldRef>) {
        match self {
            Condition::True | Condition::False => {}
            Condition::Cmp { lhs, rhs, .. } => {
                out.extend(lhs.references());
                out.extend(rhs.references());
            }
            Condition::Match { field, .. } => out.push(field),
            Condition::And(parts) | Condition::Or(parts) => {
                for p in parts {
                    p.collect_refs(out);
                }
            }
            Condition::Not(inner) => inner.collect_refs(out),
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::True => write!(f, "true"),
            Condition::False => write!(f, "false"),
            Condition::Cmp { op, lhs, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Condition::Match {
                field,
                value,
                prefix_len,
                ..
            } => write!(f, "{field} in {value}/{prefix_len}"),
            Condition::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Condition::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Condition::Not(inner) => write!(f, "!({inner})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relop_negation_is_involutive() {
        for op in [
            RelOp::Eq,
            RelOp::Ne,
            RelOp::Lt,
            RelOp::Le,
            RelOp::Gt,
            RelOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn builders_produce_expected_shape() {
        let c = Condition::eq(FieldRef::meta("TcpDst"), 80u64);
        match &c {
            Condition::Cmp { op, lhs, rhs } => {
                assert_eq!(*op, RelOp::Eq);
                assert_eq!(*lhs, Expr::Ref(FieldRef::meta("TcpDst")));
                assert_eq!(*rhs, Expr::Const(80));
            }
            _ => panic!("expected comparison"),
        }
        assert_eq!(c.references().len(), 1);
    }

    #[test]
    fn and_or_folding() {
        let a = Condition::eq(FieldRef::meta("a"), 1u64);
        assert_eq!(Condition::and(vec![]), Condition::True);
        assert_eq!(Condition::or(vec![]), Condition::False);
        assert_eq!(Condition::and(vec![Condition::True, a.clone()]), a);
        assert_eq!(
            Condition::and(vec![a.clone(), Condition::False]),
            Condition::False
        );
        assert_eq!(
            Condition::or(vec![Condition::True, a.clone()]),
            Condition::True
        );
    }

    #[test]
    fn negation_folds_comparisons() {
        let c = Condition::lt(FieldRef::meta("ttl"), 1u64);
        let n = Condition::not(c);
        match n {
            Condition::Cmp { op, .. } => assert_eq!(op, RelOp::Ge),
            _ => panic!("expected comparison"),
        }
        let m = Condition::matches_ipv4_prefix(FieldRef::meta("IpDst"), 0x0a000000, 8);
        assert!(matches!(Condition::not(m.clone()), Condition::Not(_)));
        assert_eq!(Condition::not(Condition::not(m.clone())), m);
    }

    #[test]
    fn display_is_readable() {
        let c = Condition::and(vec![
            Condition::eq(FieldRef::meta("IPProto"), 6u64),
            Condition::matches_ipv4_prefix(FieldRef::meta("IpDst"), 167772160, 8),
        ]);
        let s = c.to_string();
        assert!(s.contains("=="));
        assert!(s.contains("/8"));
    }
}
