//! # symnet-store
//!
//! The disk layer of the persistent solver cache: a dependency-free
//! append-only record log with CRC-checked framing, crash-tolerant opening,
//! and a single-writer lockfile. The store knows nothing about solver
//! semantics — records are opaque byte payloads; the index over them lives in
//! memory on the caller's side and is rebuilt from the log on every open
//! (there is no separate index file to corrupt).
//!
//! ## Record framing
//!
//! Every record is framed as
//!
//! ```text
//! [payload length: u32 LE] [CRC-32 of payload: u32 LE] [payload bytes]
//! ```
//!
//! On open the log is scanned front to back. The first frame that fails
//! validation — header extending past end-of-file, payload extending past
//! end-of-file, or CRC mismatch — marks the *torn tail*: everything from that
//! frame on is truncated away (a crash mid-append or a flipped bit can only
//! damage a suffix of an append-only file, and every record before the damage
//! is still CRC-verified). A store can therefore always be opened; the worst
//! outcome of corruption is fewer recovered records, never a bad payload.
//!
//! ## Single-writer locking
//!
//! A `<log>.lock` file created with `create_new` holds the writer's PID.
//! A second open while the owner is alive (its `/proc/<pid>` entry exists)
//! fails with [`StoreError::Busy`], which callers treat as "run with a cold
//! cache". A lockfile whose owner is gone is stale — crashed writers must not
//! brick the cache directory — and is silently replaced. The lock exists to
//! serialise *writers*; corrupt data is impossible either way thanks to the
//! CRC scan, the lock merely avoids interleaved appends producing torn frames
//! for one another.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Bytes of frame header preceding every payload (length + CRC).
const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    const fn table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB8_8320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    }
    const TABLE: [u32; 256] = table();
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Why a store could not be opened.
#[derive(Debug)]
pub enum StoreError {
    /// Another live process (or this process, through another handle) holds
    /// the writer lock. Callers degrade to a cold cache.
    Busy {
        /// PID recorded in the lockfile.
        pid: u32,
    },
    /// An I/O error outside the torn-tail recovery path (recoverable
    /// corruption never surfaces as an error).
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Busy { pid } => {
                write!(f, "store is locked by live process {pid}")
            }
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// True when a process with this PID is currently alive (Linux: its `/proc`
/// entry exists; elsewhere the check degrades to "not alive", which at worst
/// lets a second writer replace a lock — still safe, see the module docs).
fn pid_alive(pid: u32) -> bool {
    Path::new(&format!("/proc/{pid}")).exists()
}

/// An open append-only record log holding the writer lock.
///
/// Dropping the store releases the lock. Records recovered by the opening
/// scan are taken with [`LogStore::take_records`].
#[derive(Debug)]
pub struct LogStore {
    file: File,
    lock_path: PathBuf,
    /// Payloads recovered by the opening scan, oldest first.
    recovered: Vec<Vec<u8>>,
    /// Bytes of validated frames (the append position).
    len: u64,
}

impl LogStore {
    /// Opens (creating if absent) the log at `path`, acquiring the writer
    /// lock and scanning existing records. A torn or corrupt tail is
    /// truncated; every payload before it is recovered.
    pub fn open(path: &Path) -> Result<LogStore, StoreError> {
        let lock_path = path.with_extension("lock");
        acquire_lock(&lock_path)?;
        // From here on the lock must be released on any failure path.
        match Self::open_locked(path) {
            Ok((file, recovered, len)) => Ok(LogStore {
                file,
                lock_path,
                recovered,
                len,
            }),
            Err(e) => {
                let _ = std::fs::remove_file(&lock_path);
                Err(StoreError::Io(e))
            }
        }
    }

    fn open_locked(path: &Path) -> io::Result<(File, Vec<Vec<u8>>, u64)> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false) // existing records are recovered below, never discarded here
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut recovered = Vec::new();
        let mut offset = 0usize;
        while bytes.len() - offset >= FRAME_HEADER {
            let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
            let start = offset + FRAME_HEADER;
            let Some(end) = start.checked_add(len).filter(|&e| e <= bytes.len()) else {
                break; // payload extends past EOF: torn tail
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // flipped bit: everything from here is suspect
            }
            recovered.push(payload.to_vec());
            offset = end;
        }
        if offset < bytes.len() {
            // Drop the torn/corrupt tail so the next append starts on a
            // frame boundary.
            file.set_len(offset as u64)?;
        }
        file.seek(SeekFrom::Start(offset as u64))?;
        Ok((file, recovered, offset as u64))
    }

    /// Takes the payloads recovered when the store was opened, oldest first.
    pub fn take_records(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.recovered)
    }

    /// Appends one record. Buffered by the OS; call [`LogStore::sync`] to
    /// force it to disk.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.len += frame.len() as u64;
        Ok(())
    }

    /// Flushes appended records to stable storage.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()
    }

    /// Discards every record (used when the on-disk format version does not
    /// match the running binary's).
    pub fn truncate_all(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.len = 0;
        self.recovered.clear();
        Ok(())
    }

    /// Bytes of validated frames currently in the log.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

impl Drop for LogStore {
    fn drop(&mut self) {
        let _ = self.file.sync_data();
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

/// Creates the lockfile, replacing it if its recorded owner is dead.
fn acquire_lock(lock_path: &Path) -> Result<(), StoreError> {
    for attempt in 0..2 {
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(lock_path)
        {
            Ok(mut f) => {
                let _ = f.write_all(std::process::id().to_string().as_bytes());
                return Ok(());
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let pid = std::fs::read_to_string(lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok())
                    .unwrap_or(0);
                if pid != 0 && pid_alive(pid) {
                    return Err(StoreError::Busy { pid });
                }
                if attempt == 0 {
                    // Stale (or unreadable) lock: remove and retry once. A
                    // concurrent racer beating us to the re-create surfaces
                    // as Busy on the second attempt.
                    let _ = std::fs::remove_file(lock_path);
                }
            }
            Err(e) => return Err(StoreError::Io(e)),
        }
    }
    Err(StoreError::Busy { pid: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_log(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "symnet-store-test-{}-{tag}-{n}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("records.log")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn roundtrips_records_across_reopen() {
        let path = temp_log("roundtrip");
        {
            let mut store = LogStore::open(&path).unwrap();
            assert!(store.take_records().is_empty());
            store.append(b"alpha").unwrap();
            store.append(b"").unwrap();
            store.append(b"gamma gamma").unwrap();
            store.sync().unwrap();
        }
        let mut store = LogStore::open(&path).unwrap();
        assert_eq!(
            store.take_records(),
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma gamma".to_vec()]
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_appendable() {
        let path = temp_log("torn");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.append(b"keep me").unwrap();
            store.append(b"torn").unwrap();
            store.sync().unwrap();
        }
        // Simulate a crash mid-append: chop 2 bytes off the last frame.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 2).unwrap();
        drop(f);
        let mut store = LogStore::open(&path).unwrap();
        assert_eq!(store.take_records(), vec![b"keep me".to_vec()]);
        // The log is usable again: the torn frame was removed entirely.
        store.append(b"after recovery").unwrap();
        store.sync().unwrap();
        drop(store);
        let mut store = LogStore::open(&path).unwrap();
        assert_eq!(
            store.take_records(),
            vec![b"keep me".to_vec(), b"after recovery".to_vec()]
        );
    }

    #[test]
    fn bit_flip_invalidates_the_suffix_only() {
        let path = temp_log("bitflip");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.append(b"first").unwrap();
            store.append(b"second").unwrap();
            store.append(b"third").unwrap();
            store.sync().unwrap();
        }
        // Flip one payload bit in the middle record ("second" starts after
        // the first frame: 8 header bytes + 5 payload bytes + 8 header).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8 + 5 + 8] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        let mut store = LogStore::open(&path).unwrap();
        // "first" still validates; "second" fails its CRC, so it and
        // everything after are dropped — corrupt payloads are never returned.
        assert_eq!(store.take_records(), vec![b"first".to_vec()]);
    }

    #[test]
    fn second_open_is_busy_while_lock_held() {
        let path = temp_log("busy");
        let store = LogStore::open(&path).unwrap();
        match LogStore::open(&path) {
            Err(StoreError::Busy { pid }) => assert_eq!(pid, std::process::id()),
            other => panic!("expected Busy, got {other:?}"),
        }
        drop(store);
        // Dropping releases the lock.
        LogStore::open(&path).unwrap();
    }

    #[test]
    fn stale_lock_from_dead_process_is_replaced() {
        let path = temp_log("stale");
        // A PID that cannot be alive (kernel pid_max is far below 2^31-ish
        // values, and this one is not ours).
        std::fs::write(path.with_extension("lock"), "999999999").unwrap();
        let mut store = LogStore::open(&path).unwrap();
        store.append(b"works").unwrap();
    }

    #[test]
    fn truncate_all_empties_the_log() {
        let path = temp_log("truncate");
        {
            let mut store = LogStore::open(&path).unwrap();
            store.append(b"old-format record").unwrap();
            store.sync().unwrap();
            store.truncate_all().unwrap();
            store.append(b"new-format record").unwrap();
            store.sync().unwrap();
        }
        let mut store = LogStore::open(&path).unwrap();
        assert_eq!(store.take_records(), vec![b"new-format record".to_vec()]);
    }
}
