//! Property-based tests for the solver's core data structures, the soundness
//! of its satisfiability answers, and the agreement of the incremental
//! prefix-cached procedure with from-scratch solving.

use proptest::prelude::*;
use symnet_solver::{CmpOp, Formula, IntervalSet, PathCond, Solver, SolverConfig, SymVar, Term};

/// Strategy producing small interval sets inside a bounded universe.
fn interval_set(universe: i128) -> impl Strategy<Value = IntervalSet> {
    prop::collection::vec((0..universe, 0..universe), 0..8).prop_map(|pairs| {
        IntervalSet::from_ranges(pairs.into_iter().map(|(a, b)| (a.min(b), a.max(b))))
    })
}

proptest! {
    #[test]
    fn union_contains_both_operands(a in interval_set(1000), b in interval_set(1000), x in 0i128..1000) {
        let u = a.union(&b);
        prop_assert_eq!(u.contains(x), a.contains(x) || b.contains(x));
    }

    #[test]
    fn intersection_is_conjunction(a in interval_set(1000), b in interval_set(1000), x in 0i128..1000) {
        let i = a.intersect(&b);
        prop_assert_eq!(i.contains(x), a.contains(x) && b.contains(x));
    }

    #[test]
    fn complement_flips_membership(a in interval_set(1000), x in 0i128..1000) {
        let c = a.complement(0, 999);
        prop_assert_eq!(c.contains(x), !a.contains(x));
    }

    #[test]
    fn difference_removes_exactly(a in interval_set(1000), b in interval_set(1000), x in 0i128..1000) {
        let d = a.difference(&b);
        prop_assert_eq!(d.contains(x), a.contains(x) && !b.contains(x));
    }

    #[test]
    fn shift_translates_membership(a in interval_set(1000), delta in -500i128..500, x in 0i128..1000) {
        let s = a.shift(delta);
        prop_assert_eq!(s.contains(x + delta), a.contains(x));
    }

    #[test]
    fn cardinality_matches_membership_count(a in interval_set(200)) {
        let count = (0i128..200).filter(|x| a.contains(*x)).count() as u128;
        prop_assert_eq!(a.cardinality(), count);
    }

    /// Every `Sat` answer must come with a model that actually satisfies the
    /// formula (the solver re-checks witnesses, so this must always hold).
    #[test]
    fn sat_answers_carry_valid_models(
        ops in prop::collection::vec((0usize..6, 0u64..4, 0u64..256), 1..6),
    ) {
        let mut solver = Solver::default();
        let parts: Vec<Formula> = ops
            .iter()
            .map(|(op, var, value)| {
                let v = SymVar::new(*var, 8);
                let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][*op];
                Formula::cmp_const(op, v, *value)
            })
            .collect();
        let f = Formula::and(parts);
        if let Some(model) = solver.model(&f) {
            prop_assert!(model.satisfies(&f));
        }
    }

    /// Brute-force cross-check on 8-bit single-variable formulas: the solver's
    /// sat/unsat answer must agree with exhaustive enumeration.
    #[test]
    fn single_var_agrees_with_bruteforce(
        ops in prop::collection::vec((0usize..6, 0u64..256, prop::bool::ANY), 1..8),
    ) {
        let v = SymVar::new(0, 8);
        let atoms: Vec<Formula> = ops
            .iter()
            .map(|(op, value, _)| {
                let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][*op];
                Formula::cmp_const(op, v, *value)
            })
            .collect();
        // Alternate and/or nesting driven by the boolean flags.
        let mut f = atoms[0].clone();
        for (atom, (_, _, use_or)) in atoms.iter().skip(1).zip(ops.iter().skip(1)) {
            f = if *use_or {
                Formula::or(vec![f, atom.clone()])
            } else {
                Formula::and(vec![f, atom.clone()])
            };
        }
        let brute = (0u64..256).any(|x| f.eval(&|_| Some(x)) == Some(true));
        let mut solver = Solver::default();
        let result = solver.check(&f);
        prop_assert_eq!(result.is_sat(), brute);
        prop_assert_eq!(result.is_unsat(), !brute);
    }

    /// The incremental prefix-cached solver must agree with a fresh
    /// from-scratch `Solver` at every step of a random conjunct chain: same
    /// SAT/UNSAT verdicts and identical feasible-value intervals.
    #[test]
    fn incremental_agrees_with_scratch_on_chains(
        ops in prop::collection::vec((0usize..8, 0u64..3, 0u64..3, 0u64..64), 1..10),
    ) {
        let vars: Vec<SymVar> = (0..3).map(|i| SymVar::new(i, 6)).collect();
        let mut incremental = Solver::default();
        let mut cond = PathCond::empty();
        for (kind, a, b, value) in &ops {
            let (va, vb) = (vars[*a as usize], vars[*b as usize]);
            let conjunct = match kind {
                0 => Formula::eq_const(va, *value),
                1 => Formula::ne_const(va, *value),
                2 => Formula::cmp_const(CmpOp::Le, va, *value),
                3 => Formula::cmp_const(CmpOp::Ge, va, *value),
                4 => Formula::cmp(CmpOp::Eq, Term::var(va), Term::var(vb).plus((*value as i128) % 8)),
                5 => Formula::cmp(CmpOp::Lt, Term::var(va), Term::var(vb)),
                6 => Formula::prefix_match(va, *value, (*value % 7) as u8),
                _ => Formula::or(vec![
                    Formula::eq_const(va, *value),
                    Formula::cmp_const(CmpOp::Ge, vb, *value),
                ]),
            };
            cond = cond.push(conjunct);
            // Verdict agreement at every prefix of the chain, against a fresh
            // from-scratch solver (no shared caches).
            let mut scratch = Solver::default();
            let materialised = cond.to_formula();
            let inc = incremental.check_path(&cond);
            let scr = scratch.check(&materialised);
            prop_assert_eq!(inc.is_sat(), scr.is_sat());
            prop_assert_eq!(inc.is_unsat(), scr.is_unsat());
            // Feasible-value projections must be identical sets.
            for var in &vars {
                let a = incremental.feasible_values_path(&cond, *var);
                let b = scratch.feasible_values(&materialised, *var);
                prop_assert_eq!(a, b);
            }
        }
        // Re-checking the full chain is answered from the caches with the
        // same verdict.
        let mut scratch = Solver::default();
        let again = incremental.check_path(&cond);
        prop_assert_eq!(again.is_sat(), scratch.check(&cond.to_formula()).is_sat());
        prop_assert!(incremental.stats().prefix_hits > 0);
    }

    /// Interning is invisible to answers: rebuilding the same conjunct chain
    /// from scratch produces fresh path nodes but identical interned content
    /// ids, so the second pass is answered by the process-wide content memos —
    /// and must agree, verdict for verdict and interval for interval, with
    /// both its own first pass and the uninterned `incremental = false`
    /// baseline that re-solves the materialised formula every time.
    #[test]
    fn interned_warm_rerun_agrees_with_uninterned(
        ops in prop::collection::vec((0usize..8, 0u64..3, 0u64..3, 0u64..64), 1..10),
    ) {
        let vars: Vec<SymVar> = (0..3).map(|i| SymVar::new(i, 6)).collect();
        let conjuncts: Vec<Formula> = ops
            .iter()
            .map(|(kind, a, b, value)| {
                let (va, vb) = (vars[*a as usize], vars[*b as usize]);
                match kind {
                    0 => Formula::eq_const(va, *value),
                    1 => Formula::ne_const(va, *value),
                    2 => Formula::cmp_const(CmpOp::Le, va, *value),
                    3 => Formula::cmp_const(CmpOp::Ge, va, *value),
                    4 => Formula::cmp(CmpOp::Eq, Term::var(va), Term::var(vb).plus((*value as i128) % 8)),
                    5 => Formula::cmp(CmpOp::Lt, Term::var(va), Term::var(vb)),
                    6 => Formula::prefix_match(va, *value, (*value % 7) as u8),
                    _ => Formula::or(vec![
                        Formula::eq_const(va, *value),
                        Formula::cmp_const(CmpOp::Ge, vb, *value),
                    ]),
                }
            })
            .collect();
        let run = |solver: &mut Solver| {
            let mut cond = PathCond::empty();
            let mut verdicts = Vec::new();
            for conjunct in &conjuncts {
                cond = cond.push(conjunct.clone());
                let verdict = solver.check_path(&cond);
                let projections: Vec<_> = vars
                    .iter()
                    .map(|v| solver.feasible_values_path(&cond, *v))
                    .collect();
                verdicts.push((verdict.is_sat(), verdict.is_unsat(), projections));
            }
            verdicts
        };
        let mut cold = Solver::default();
        let first = run(&mut cold);
        // Fresh solver, fresh nodes: only interned content survives between
        // the passes, so agreement here is agreement through the memo tables.
        let mut warm = Solver::default();
        let second = run(&mut warm);
        prop_assert_eq!(&first, &second);
        let mut uninterned = Solver::with_config(SolverConfig {
            incremental: false,
            ..SolverConfig::default()
        });
        let third = run(&mut uninterned);
        prop_assert_eq!(&first, &third);
    }

    /// Two-variable conjunctions of constant comparisons and one cross
    /// equality, cross-checked by brute force over 6-bit domains.
    #[test]
    fn cross_equality_agrees_with_bruteforce(
        xa in 0u64..64, xb in 0u64..64, offset in -8i128..8,
    ) {
        let x = SymVar::new(0, 6);
        let y = SymVar::new(1, 6);
        let f = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, xa),
            Formula::cmp_const(CmpOp::Le, y, xb),
            Formula::cmp(CmpOp::Eq, Term::var(y), Term::var(x).plus(offset)),
        ]);
        let brute = (0u64..64).any(|xv| {
            (0u64..64).any(|yv| {
                f.eval(&|id| if id.0 == 0 { Some(xv) } else { Some(yv) }) == Some(true)
            })
        });
        let mut solver = Solver::default();
        prop_assert_eq!(solver.check(&f).is_sat(), brute);
    }
}
