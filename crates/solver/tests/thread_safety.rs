//! Solver thread-safety: the engine gives each worker thread its own
//! [`Solver`] and merges the per-worker [`SolverStats`] at the end of a run.
//! These tests pin down the contract that makes that sound: `Solver` is
//! `Send + Sync`, answers are identical no matter which thread asks, and
//! merged per-worker statistics equal the totals of an equivalent sequential
//! run.

use std::sync::Mutex;
use symnet_solver::{CmpOp, Formula, Solver, SolverStats, SymVar, Term};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn solver_types_are_send_and_sync() {
    assert_send_sync::<Solver>();
    assert_send_sync::<SolverStats>();
    assert_send_sync::<Formula>();
}

/// A deterministic batch of mixed sat/unsat/cross-variable queries.
fn query_batch(salt: u64) -> Vec<Formula> {
    let x = SymVar::new(0, 16);
    let y = SymVar::new(1, 16);
    (0..20u64)
        .map(|i| {
            let k = salt.wrapping_add(i) % 7;
            match k {
                0 => Formula::eq_const(x, i),
                1 => Formula::and(vec![Formula::eq_const(x, i), Formula::eq_const(x, i + 1)]),
                2 => Formula::and(vec![
                    Formula::cmp_const(CmpOp::Ge, x, 100),
                    Formula::cmp_const(CmpOp::Lt, x, 100 + i),
                ]),
                3 => Formula::cmp(CmpOp::Eq, Term::var(y), Term::var(x).plus(i as i128)),
                4 => Formula::prefix_match(x, 0x1200, 8),
                5 => Formula::or(vec![Formula::eq_const(x, i), Formula::eq_const(y, i)]),
                _ => Formula::not(Formula::eq_const(x, i)),
            }
        })
        .collect()
}

#[test]
fn per_thread_solvers_agree_with_sequential_answers() {
    // Sequential reference: one solver answers every batch.
    let mut reference = Solver::default();
    let batches: Vec<Vec<Formula>> = (0..8u64).map(query_batch).collect();
    let expected: Vec<Vec<bool>> = batches
        .iter()
        .map(|batch| batch.iter().map(|f| reference.is_sat(f)).collect())
        .collect();

    // Concurrent: one worker per batch, each with its own solver.
    let answers: Vec<(usize, Vec<bool>, SolverStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = batches
            .iter()
            .enumerate()
            .map(|(i, batch)| {
                scope.spawn(move || {
                    let mut solver = Solver::default();
                    let answers = batch.iter().map(|f| solver.is_sat(f)).collect();
                    (i, answers, solver.into_stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    // Answers are identical regardless of the thread that computed them.
    for (i, got, _) in &answers {
        assert_eq!(got, &expected[*i], "batch {i} diverged across threads");
    }

    // Merged per-worker stats equal the sequential run's totals (modulo wall
    // time, which is the only nondeterministic counter).
    let mut merged = SolverStats::default();
    for (_, _, stats) in &answers {
        merged.merge(stats);
    }
    let seq = reference.stats();
    assert_eq!(merged.calls, seq.calls);
    assert_eq!(merged.sat, seq.sat);
    assert_eq!(merged.unsat, seq.unsat);
    assert_eq!(merged.unknown, seq.unknown);
    assert_eq!(merged.cubes_examined, seq.cubes_examined);
}

#[test]
fn shared_solver_behind_a_mutex_is_usable_from_many_threads() {
    let solver = Mutex::new(Solver::default());
    let x = SymVar::new(0, 32);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let solver = &solver;
            scope.spawn(move || {
                for i in 0..16u64 {
                    let f = Formula::and(vec![
                        Formula::cmp_const(CmpOp::Ge, x, t * 100),
                        Formula::eq_const(x, t * 100 + i),
                    ]);
                    assert!(solver.lock().unwrap().is_sat(&f));
                }
            });
        }
    });
    assert_eq!(solver.into_inner().unwrap().stats().calls, 8 * 16);
}

#[test]
fn into_stats_and_merge_fold_worker_counters() {
    let mut a = Solver::default();
    let mut b = Solver::default();
    let x = SymVar::new(0, 8);
    a.is_sat(&Formula::eq_const(x, 1));
    b.is_unsat(&Formula::and(vec![
        Formula::eq_const(x, 1),
        Formula::eq_const(x, 2),
    ]));
    let mut totals = a.into_stats();
    totals.merge(&b.into_stats());
    assert_eq!(totals.calls, 2);
    assert_eq!(totals.sat, 1);
    assert_eq!(totals.unsat, 1);
}
