//! Persistent, disk-backed solver cache.
//!
//! The in-process memo tables ([`crate::intern`], the content memos in
//! [`crate::solve`]) make re-solving free *within* a run; this module makes it
//! cheap *across* runs. It layers three pieces on top of the
//! [`symnet_store::LogStore`] record log:
//!
//! 1. **In-memory index** — sharded maps from stable 128-bit fingerprints
//!    (see [`crate::fingerprint`]) to decoded verdicts and projections,
//!    rebuilt from the log on [`configure`]. There is no on-disk index file:
//!    the log *is* the store, so there is nothing to get out of sync.
//! 2. **Write-behind flusher** — stores enqueue an encoded record on an
//!    unbounded channel and return immediately; a dedicated flusher thread
//!    owns the `LogStore` and drains the channel in batches. The solver hot
//!    path never blocks on I/O, and [`flush`] provides a durability barrier
//!    for process exit and tests.
//! 3. **Counterexample cache** — KLEE-style: satisfying [`Model`]s keyed by
//!    the *set* of conjunct fingerprints they satisfy. A query whose conjunct
//!    set is a subset of a cached satisfying entry is satisfiable (the model
//!    carries over); a query whose conjunct set is a superset of a cached
//!    unsatisfiable entry is unsatisfiable. Since this suite's solver is
//!    deliberately incomplete on the Unsat side, callers are expected to
//!    *verify* Sat models before trusting them and to ignore
//!    [`CexDecision::SubsetUnsat`] when soundness matters more than speed
//!    (see [`crate::Solver::model_path_cached`]).
//!
//! ## Lifecycle and degradation
//!
//! The cache is process-global and off by default; [`configure`] points it at
//! a directory and returns `Ok(false)` — *degrading to a cold cache, never an
//! error* — when another live process holds the store lock. A log whose
//! header does not match [`FORMAT_VERSION`] is wiped and restarted; records
//! whose keys were produced by a different `SolverConfig` or fingerprint
//! version simply never match (the config fingerprint is mixed into every
//! key). Torn or bit-flipped tails are truncated by the store layer on open.
//! Every failure mode therefore converges to "fewer warm hits", never to a
//! wrong verdict.

use crate::fingerprint;
use crate::interval::IntervalSet;
use crate::model::Model;
use crate::solve::SolverResult;
use crate::term::VarId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Sender};
use std::sync::{Mutex, OnceLock, PoisonError};
use symnet_store::{LogStore, StoreError};

/// Version of the on-disk record encoding. A log whose header carries a
/// different version is wiped on open (the fingerprint scheme has its own
/// version, [`fingerprint::FP_VERSION`], which invalidates by key mismatch
/// instead).
pub const FORMAT_VERSION: u32 = 1;

/// File name of the record log inside the cache directory.
const LOG_NAME: &str = "solver-cache.log";

/// Shard count of the in-memory index maps.
const SHARDS: usize = 16;

fn shard(key: u128) -> usize {
    (key as usize) % SHARDS
}

type VerdictMap = HashMap<u128, (SolverResult, u64)>;
type ProjectionMap = HashMap<u128, (Option<IntervalSet>, u64)>;

struct Maps {
    verdicts: Vec<Mutex<VerdictMap>>,
    projections: Vec<Mutex<ProjectionMap>>,
}

fn maps() -> &'static Maps {
    static MAPS: OnceLock<Maps> = OnceLock::new();
    MAPS.get_or_init(|| Maps {
        verdicts: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        projections: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
    })
}

/// One counterexample-cache entry: the sorted set of conjunct fingerprints it
/// decides, the verdict, and (for Sat) the witness assignment.
struct CexEntry {
    atoms: Vec<u128>,
    sat: bool,
    model: Vec<(u64, u64)>,
}

#[derive(Default)]
struct CexEntries {
    /// Exact-set index: `combine(DOMAIN_CEX, atoms)` → entry position.
    exact: HashMap<u128, usize>,
    entries: Vec<CexEntry>,
}

fn cex() -> &'static Mutex<CexEntries> {
    static CEX: OnceLock<Mutex<CexEntries>> = OnceLock::new();
    CEX.get_or_init(|| Mutex::new(CexEntries::default()))
}

enum FlushMsg {
    Record(Vec<u8>),
    Flush(Sender<()>),
    Shutdown,
}

struct Flusher {
    tx: Sender<FlushMsg>,
    handle: Option<std::thread::JoinHandle<()>>,
}

static FLUSHER: Mutex<Option<Flusher>> = Mutex::new(None);
static ACTIVE: AtomicBool = AtomicBool::new(false);

static VERDICT_HITS: AtomicU64 = AtomicU64::new(0);
static VERDICT_MISSES: AtomicU64 = AtomicU64::new(0);
static VERDICT_STORES: AtomicU64 = AtomicU64::new(0);
static PROJECTION_HITS: AtomicU64 = AtomicU64::new(0);
static PROJECTION_MISSES: AtomicU64 = AtomicU64::new(0);
static PROJECTION_STORES: AtomicU64 = AtomicU64::new(0);
static CEX_HITS: AtomicU64 = AtomicU64::new(0);
static CEX_STORES: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime counters of the persistent cache (all queries by all
/// solvers since the last [`reset_counters`]).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    /// Verdict lookups answered from the store.
    pub verdict_hits: u64,
    /// Verdict lookups that fell through to the solver.
    pub verdict_misses: u64,
    /// Verdicts written to the store.
    pub verdict_stores: u64,
    /// Projection lookups answered from the store.
    pub projection_hits: u64,
    /// Projection lookups that fell through to the solver.
    pub projection_misses: u64,
    /// Projections written to the store.
    pub projection_stores: u64,
    /// Queries decided by a cached counterexample/witness.
    pub cex_hits: u64,
    /// Counterexample entries recorded.
    pub cex_stores: u64,
}

/// Snapshot of the global cache counters.
pub fn counters() -> CacheCounters {
    CacheCounters {
        verdict_hits: VERDICT_HITS.load(Ordering::Relaxed),
        verdict_misses: VERDICT_MISSES.load(Ordering::Relaxed),
        verdict_stores: VERDICT_STORES.load(Ordering::Relaxed),
        projection_hits: PROJECTION_HITS.load(Ordering::Relaxed),
        projection_misses: PROJECTION_MISSES.load(Ordering::Relaxed),
        projection_stores: PROJECTION_STORES.load(Ordering::Relaxed),
        cex_hits: CEX_HITS.load(Ordering::Relaxed),
        cex_stores: CEX_STORES.load(Ordering::Relaxed),
    }
}

/// Resets the global cache counters to zero (bench/test isolation).
pub fn reset_counters() {
    VERDICT_HITS.store(0, Ordering::Relaxed);
    VERDICT_MISSES.store(0, Ordering::Relaxed);
    VERDICT_STORES.store(0, Ordering::Relaxed);
    PROJECTION_HITS.store(0, Ordering::Relaxed);
    PROJECTION_MISSES.store(0, Ordering::Relaxed);
    PROJECTION_STORES.store(0, Ordering::Relaxed);
    CEX_HITS.store(0, Ordering::Relaxed);
    CEX_STORES.store(0, Ordering::Relaxed);
}

/// True when a disk-backed cache is configured and accepting queries.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// One record of the append-only log. Keys are 128-bit fingerprints split
/// into `(hi, lo)` word pairs (the serde shim has no 128-bit unsigned
/// deserialization), models are `(variable id, value)` pairs.
#[derive(Debug, Serialize, Deserialize)]
enum CacheRecord {
    /// First record of every log: the encoding version.
    Header { version: u32 },
    Verdict {
        key_hi: u64,
        key_lo: u64,
        /// 0 = Unsat, 1 = Unknown, 2 = Sat (with `model`).
        verdict: u8,
        examined: u64,
        model: Vec<(u64, u64)>,
    },
    Projection {
        key_hi: u64,
        key_lo: u64,
        examined: u64,
        /// False when the projection itself was unanswerable (e.g. a cube
        /// budget overflow on the prefix) — a cachable "no answer".
        known: bool,
        ranges: Vec<(i128, i128)>,
    },
    Cex {
        atoms: Vec<(u64, u64)>,
        sat: bool,
        model: Vec<(u64, u64)>,
    },
}

fn split_key(key: u128) -> (u64, u64) {
    ((key >> 64) as u64, key as u64)
}

fn join_key(hi: u64, lo: u64) -> u128 {
    ((hi as u128) << 64) | lo as u128
}

fn encode(record: &CacheRecord) -> Option<Vec<u8>> {
    serde_json::to_string(record).ok().map(String::into_bytes)
}

fn decode(bytes: &[u8]) -> Option<CacheRecord> {
    serde_json::from_str(std::str::from_utf8(bytes).ok()?).ok()
}

fn model_to_pairs(model: &Model) -> Vec<(u64, u64)> {
    model.iter().map(|(id, v)| (id.0, v)).collect()
}

fn pairs_to_model(pairs: &[(u64, u64)]) -> Model {
    pairs.iter().map(|&(id, v)| (VarId(id), v)).collect()
}

fn verdict_to_record(key: u128, result: &SolverResult, examined: u64) -> CacheRecord {
    let (key_hi, key_lo) = split_key(key);
    let (verdict, model) = match result {
        SolverResult::Unsat => (0u8, Vec::new()),
        SolverResult::Unknown => (1, Vec::new()),
        SolverResult::Sat(m) => (2, model_to_pairs(m)),
    };
    CacheRecord::Verdict {
        key_hi,
        key_lo,
        verdict,
        examined,
        model,
    }
}

fn record_to_verdict(verdict: u8, model: &[(u64, u64)]) -> Option<SolverResult> {
    match verdict {
        0 => Some(SolverResult::Unsat),
        1 => Some(SolverResult::Unknown),
        2 => Some(SolverResult::Sat(pairs_to_model(model))),
        _ => None,
    }
}

/// Loads one decoded record into the in-memory index (warm start).
fn load_record(record: CacheRecord) {
    match record {
        CacheRecord::Header { .. } => {}
        CacheRecord::Verdict {
            key_hi,
            key_lo,
            verdict,
            examined,
            model,
        } => {
            if let Some(result) = record_to_verdict(verdict, &model) {
                let key = join_key(key_hi, key_lo);
                let mut guard = maps().verdicts[shard(key)]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                guard.entry(key).or_insert((result, examined));
            }
        }
        CacheRecord::Projection {
            key_hi,
            key_lo,
            examined,
            known,
            ranges,
        } => {
            let key = join_key(key_hi, key_lo);
            let set = known.then(|| IntervalSet::from_ranges(ranges.iter().copied()));
            let mut guard = maps().projections[shard(key)]
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            guard.entry(key).or_insert((set, examined));
        }
        CacheRecord::Cex { atoms, sat, model } => {
            let atoms: Vec<u128> = atoms.iter().map(|&(hi, lo)| join_key(hi, lo)).collect();
            insert_cex(atoms, sat, model);
        }
    }
}

/// Points the process-wide cache at `dir`, loading any existing records.
///
/// Returns `Ok(true)` when the cache is active, `Ok(false)` when the store is
/// locked by another live process (the cache stays off — cold, not wrong).
/// Replaces any previously configured cache (flushing it first).
pub fn configure(dir: &Path) -> io::Result<bool> {
    deactivate();
    std::fs::create_dir_all(dir)?;
    let mut store = match LogStore::open(&dir.join(LOG_NAME)) {
        Ok(store) => store,
        Err(StoreError::Busy { .. }) => return Ok(false),
        Err(StoreError::Io(e)) => return Err(e),
    };
    let records = store.take_records();
    let header_ok = matches!(
        records.first().map(|r| decode(r)),
        Some(Some(CacheRecord::Header { version })) if version == FORMAT_VERSION
    );
    if header_ok {
        for bytes in &records[1..] {
            if let Some(record) = decode(bytes) {
                load_record(record);
            }
        }
    } else {
        // Fresh log, foreign format, or stale version: start over. (An
        // *empty* log is the common fresh-directory case.)
        store.truncate_all()?;
        if let Some(bytes) = encode(&CacheRecord::Header {
            version: FORMAT_VERSION,
        }) {
            store.append(&bytes)?;
        }
        store.sync()?;
    }
    let (tx, rx) = mpsc::channel::<FlushMsg>();
    let handle = std::thread::Builder::new()
        .name("symnet-cache-flusher".into())
        .spawn(move || flusher_loop(store, rx))?;
    *FLUSHER.lock().unwrap_or_else(PoisonError::into_inner) = Some(Flusher {
        tx,
        handle: Some(handle),
    });
    ACTIVE.store(true, Ordering::SeqCst);
    Ok(true)
}

/// The write-behind thread: owns the store, drains the channel in batches,
/// syncs on explicit flushes and on shutdown. Append errors are swallowed —
/// a full disk degrades the *next* open to fewer records, never this run's
/// correctness.
fn flusher_loop(mut store: LogStore, rx: mpsc::Receiver<FlushMsg>) {
    loop {
        let Ok(mut msg) = rx.recv() else { break };
        loop {
            match msg {
                FlushMsg::Record(bytes) => {
                    let _ = store.append(&bytes);
                }
                FlushMsg::Flush(ack) => {
                    let _ = store.sync();
                    let _ = ack.send(());
                }
                FlushMsg::Shutdown => return,
            }
            // Batch: drain whatever queued up while appending.
            match rx.try_recv() {
                Ok(next) => msg = next,
                Err(_) => break,
            }
        }
    }
}

/// Shuts the cache down: drains and syncs pending writes, releases the store
/// lock, clears the in-memory index. Queries degrade to cold immediately.
pub fn deactivate() {
    ACTIVE.store(false, Ordering::SeqCst);
    let flusher = FLUSHER
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    if let Some(mut flusher) = flusher {
        let _ = flusher.tx.send(FlushMsg::Shutdown);
        if let Some(handle) = flusher.handle.take() {
            let _ = handle.join();
        }
    }
    let maps = maps();
    for shard in &maps.verdicts {
        shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }
    for shard in &maps.projections {
        shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
    }
    let mut guard = cex().lock().unwrap_or_else(PoisonError::into_inner);
    guard.exact.clear();
    guard.entries.clear();
}

/// Blocks until every record enqueued so far is on disk. No-op when the
/// cache is inactive.
pub fn flush() {
    let tx = {
        let guard = FLUSHER.lock().unwrap_or_else(PoisonError::into_inner);
        guard.as_ref().map(|f| f.tx.clone())
    };
    let Some(tx) = tx else { return };
    let (ack_tx, ack_rx) = mpsc::channel();
    if tx.send(FlushMsg::Flush(ack_tx)).is_ok() {
        let _ = ack_rx.recv();
    }
}

fn send_record(record: &CacheRecord) {
    let tx = {
        let guard = FLUSHER.lock().unwrap_or_else(PoisonError::into_inner);
        guard.as_ref().map(|f| f.tx.clone())
    };
    if let (Some(tx), Some(bytes)) = (tx, encode(record)) {
        let _ = tx.send(FlushMsg::Record(bytes));
    }
}

/// Looks up a persisted verdict. Counts a hit or miss.
pub(crate) fn lookup_verdict(key: u128) -> Option<(SolverResult, u64)> {
    if !active() {
        return None;
    }
    let guard = maps().verdicts[shard(key)]
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match guard.get(&key) {
        Some(entry) => {
            VERDICT_HITS.fetch_add(1, Ordering::Relaxed);
            Some(entry.clone())
        }
        None => {
            VERDICT_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Persists a verdict (idempotent: a key already present is left untouched,
/// so racing workers never duplicate disk records for the maps they share).
pub(crate) fn store_verdict(key: u128, result: &SolverResult, examined: u64) {
    if !active() {
        return;
    }
    {
        let mut guard = maps().verdicts[shard(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.contains_key(&key) {
            return;
        }
        guard.insert(key, (result.clone(), examined));
    }
    VERDICT_STORES.fetch_add(1, Ordering::Relaxed);
    send_record(&verdict_to_record(key, result, examined));
}

/// Looks up a persisted projection. Counts a hit or miss.
pub(crate) fn lookup_projection(key: u128) -> Option<(Option<IntervalSet>, u64)> {
    if !active() {
        return None;
    }
    let guard = maps().projections[shard(key)]
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    match guard.get(&key) {
        Some(entry) => {
            PROJECTION_HITS.fetch_add(1, Ordering::Relaxed);
            Some(entry.clone())
        }
        None => {
            PROJECTION_MISSES.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// Persists a projection result (idempotent, like [`store_verdict`]).
pub(crate) fn store_projection(key: u128, set: &Option<IntervalSet>, examined: u64) {
    if !active() {
        return;
    }
    {
        let mut guard = maps().projections[shard(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.contains_key(&key) {
            return;
        }
        guard.insert(key, (set.clone(), examined));
    }
    PROJECTION_STORES.fetch_add(1, Ordering::Relaxed);
    let (key_hi, key_lo) = split_key(key);
    send_record(&CacheRecord::Projection {
        key_hi,
        key_lo,
        examined,
        known: set.is_some(),
        ranges: set
            .as_ref()
            .map(|s| s.as_slice().to_vec())
            .unwrap_or_default(),
    });
}

/// How the counterexample cache can decide a query over a conjunct set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CexDecision {
    /// An entry for exactly this conjunct set.
    Exact {
        /// The cached verdict.
        sat: bool,
        /// The cached witness (empty unless `sat`).
        model: Model,
    },
    /// A satisfying model cached for a *superset* of these conjuncts: it
    /// satisfies every conjunct of the query too. Callers should still verify
    /// the model before reporting Sat.
    SupersetSat {
        /// The carried-over witness.
        model: Model,
    },
    /// A *subset* of these conjuncts is already unsatisfiable, so adding more
    /// conjuncts cannot help. Only sound if the cached Unsat was sound —
    /// callers using an incomplete solver should treat this as advisory.
    SubsetUnsat,
}

fn sorted_atoms(atoms: &[u128]) -> Vec<u128> {
    let mut sorted = atoms.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted
}

/// True when sorted `sup` contains every element of sorted `sub`.
fn contains_all(sup: &[u128], sub: &[u128]) -> bool {
    let mut it = sup.iter();
    sub.iter()
        .all(|needle| it.by_ref().any(|have| have == needle))
}

/// Consults the counterexample cache for a query over `atoms` (conjunct
/// fingerprints, order-insensitive). Exact entries win; otherwise the first
/// superset-Sat entry, then the first subset-Unsat entry.
pub fn cex_decide(atoms: &[u128]) -> Option<CexDecision> {
    if !active() {
        return None;
    }
    let sorted = sorted_atoms(atoms);
    let key = fingerprint::combine(fingerprint::DOMAIN_CEX, &sorted);
    let guard = cex().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(&index) = guard.exact.get(&key) {
        let entry = &guard.entries[index];
        return Some(CexDecision::Exact {
            sat: entry.sat,
            model: pairs_to_model(&entry.model),
        });
    }
    for entry in &guard.entries {
        if entry.sat && contains_all(&entry.atoms, &sorted) {
            return Some(CexDecision::SupersetSat {
                model: pairs_to_model(&entry.model),
            });
        }
    }
    for entry in &guard.entries {
        if !entry.sat && contains_all(&sorted, &entry.atoms) {
            return Some(CexDecision::SubsetUnsat);
        }
    }
    None
}

fn insert_cex(sorted: Vec<u128>, sat: bool, model: Vec<(u64, u64)>) -> bool {
    let key = fingerprint::combine(fingerprint::DOMAIN_CEX, &sorted);
    let mut guard = cex().lock().unwrap_or_else(PoisonError::into_inner);
    if guard.exact.contains_key(&key) {
        return false;
    }
    let index = guard.entries.len();
    guard.entries.push(CexEntry {
        atoms: sorted,
        sat,
        model,
    });
    guard.exact.insert(key, index);
    true
}

/// Records a decided query in the counterexample cache (and on disk).
pub fn cex_store(atoms: &[u128], sat: bool, model: &Model) {
    if !active() {
        return;
    }
    let sorted = sorted_atoms(atoms);
    let pairs = if sat {
        model_to_pairs(model)
    } else {
        Vec::new()
    };
    if !insert_cex(sorted.clone(), sat, pairs.clone()) {
        return;
    }
    CEX_STORES.fetch_add(1, Ordering::Relaxed);
    send_record(&CacheRecord::Cex {
        atoms: sorted.iter().map(|&a| split_key(a)).collect(),
        sat,
        model: pairs,
    });
}

/// Counts one query decided by the counterexample cache (called by the solver
/// after it has *verified* the carried-over model).
pub(crate) fn record_cex_hit() {
    CEX_HITS.fetch_add(1, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestCounter;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        static N: TestCounter = TestCounter::new(0);
        let dir = std::env::temp_dir().join(format!(
            "symnet-cache-mod-{}-{tag}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The cache is process-global, so tests touching it serialize on this.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn record_encoding_roundtrips() {
        let model: Model = [(VarId(3), 9u64), (VarId(7), 0)].into_iter().collect();
        let records = [
            CacheRecord::Header {
                version: FORMAT_VERSION,
            },
            verdict_to_record(0xDEAD_BEEF, &SolverResult::Sat(model.clone()), 4),
            verdict_to_record(1, &SolverResult::Unsat, 0),
            verdict_to_record(2, &SolverResult::Unknown, 0),
            CacheRecord::Projection {
                key_hi: 1,
                key_lo: 2,
                examined: 3,
                known: true,
                ranges: vec![(0, 5), (10, 20)],
            },
            CacheRecord::Cex {
                atoms: vec![(0, 1), (2, 3)],
                sat: true,
                model: model_to_pairs(&model),
            },
        ];
        for record in &records {
            let bytes = encode(record).expect("encodable");
            let back = decode(&bytes).expect("decodable");
            // Debug equality is enough: the enum has no custom Eq.
            assert_eq!(format!("{record:?}"), format!("{back:?}"));
        }
        assert!(decode(b"not json").is_none());
        assert!(decode(&[0xFF, 0xFE]).is_none());
    }

    #[test]
    fn verdicts_survive_configure_cycles() {
        let _gate = lock();
        let dir = temp_dir("verdict-cycle");
        assert!(configure(&dir).unwrap());
        let model: Model = [(VarId(1), 5u64)].into_iter().collect();
        store_verdict(42, &SolverResult::Sat(model.clone()), 7);
        store_verdict(43, &SolverResult::Unsat, 2);
        assert_eq!(lookup_verdict(42), Some((SolverResult::Sat(model), 7)));
        flush();
        deactivate();
        assert!(
            lookup_verdict(42).is_none(),
            "inactive cache answers nothing"
        );
        // Re-open warm from disk.
        assert!(configure(&dir).unwrap());
        assert_eq!(lookup_verdict(43), Some((SolverResult::Unsat, 2)));
        deactivate();
    }

    #[test]
    fn projections_roundtrip_through_disk() {
        let _gate = lock();
        let dir = temp_dir("projection");
        assert!(configure(&dir).unwrap());
        let set = IntervalSet::from_ranges([(0, 9), (20, 29)]);
        store_projection(7, &Some(set.clone()), 11);
        store_projection(8, &None, 0);
        flush();
        deactivate();
        assert!(configure(&dir).unwrap());
        assert_eq!(lookup_projection(7), Some((Some(set), 11)));
        assert_eq!(lookup_projection(8), Some((None, 0)));
        deactivate();
    }

    #[test]
    fn cex_subset_superset_logic() {
        let _gate = lock();
        let dir = temp_dir("cex");
        assert!(configure(&dir).unwrap());
        let model: Model = [(VarId(2), 1u64)].into_iter().collect();
        // A model satisfying {a, b, c}.
        cex_store(&[10, 20, 30], true, &model);
        // An unsatisfiable pair {d, e}.
        cex_store(&[40, 50], false, &Model::new());
        // Exact hit.
        match cex_decide(&[30, 10, 20]) {
            Some(CexDecision::Exact {
                sat: true,
                model: m,
            }) => assert_eq!(m, model),
            other => panic!("expected exact sat, got {other:?}"),
        }
        // Subset of the satisfying set → the model carries over.
        match cex_decide(&[10, 30]) {
            Some(CexDecision::SupersetSat { model: m }) => assert_eq!(m, model),
            other => panic!("expected superset-sat, got {other:?}"),
        }
        // Superset of the unsat set → advisory unsat.
        assert_eq!(cex_decide(&[40, 50, 60]), Some(CexDecision::SubsetUnsat));
        // Unrelated set → no decision.
        assert!(cex_decide(&[70]).is_none());
        // Entries survive a reopen.
        flush();
        deactivate();
        assert!(configure(&dir).unwrap());
        assert!(matches!(
            cex_decide(&[10, 20, 30]),
            Some(CexDecision::Exact { sat: true, .. })
        ));
        deactivate();
    }

    #[test]
    fn stale_format_version_wipes_the_log() {
        let _gate = lock();
        let dir = temp_dir("stale-format");
        // Hand-craft a log whose header claims a future version.
        {
            let mut store = LogStore::open(&dir.join(LOG_NAME)).unwrap();
            let header = encode(&CacheRecord::Header {
                version: FORMAT_VERSION + 1,
            })
            .unwrap();
            store.append(&header).unwrap();
            let bogus = encode(&verdict_to_record(99, &SolverResult::Unsat, 0)).unwrap();
            store.append(&bogus).unwrap();
            store.sync().unwrap();
        }
        assert!(configure(&dir).unwrap());
        // The future-format record was discarded, not loaded.
        assert!(lookup_verdict(99).is_none());
        deactivate();
    }

    #[test]
    fn busy_store_degrades_to_inactive() {
        let _gate = lock();
        let dir = temp_dir("busy");
        // Hold the lock the way a second process would.
        let holder = LogStore::open(&dir.join(LOG_NAME)).unwrap();
        assert!(!configure(&dir).unwrap(), "busy store must not activate");
        assert!(!active());
        store_verdict(7, &SolverResult::Unsat, 0);
        assert!(lookup_verdict(7).is_none(), "inactive cache stores nothing");
        drop(holder);
        assert!(configure(&dir).unwrap());
        deactivate();
    }
}
