//! Hash-consed interning of solver terms.
//!
//! The solver's incremental interface keys its memo tables on *what* a prefix
//! says, not on *which node* says it. This module provides the identity layer
//! that makes such keys sound and cheap:
//!
//! * [`Interned<T>`] — an `Arc`-shared, hash-consed value with a precomputed
//!   structural hash and a process-unique `u64` id. Two `Interned` handles
//!   obtained from the same interner are equal exactly when their values are
//!   structurally equal, and the common case is decided by pointer comparison.
//! * [`Interner<T>`] — a sharded, mutex-guarded hash-cons table. Process-wide
//!   instances for [`Formula`] and [`IntervalSet`] are exposed through
//!   [`formulas`], [`intervals`], [`intern_formula`] and [`canonical_interval`].
//! * [`content_id`] — interning of `(parent content, conjunct)` pairs, giving
//!   every distinct path-condition *content* a process-unique id. Two
//!   [`PathCond`](crate::path::PathCond)s built independently from the same
//!   conjunct sequence map to the same content id, which is what lets a
//!   re-injected scenario hit the cross-run solve memos instead of re-solving
//!   every prefix (see [`crate::Solver::check_path`]).
//!
//! # Lifecycle and eviction
//!
//! Interners hold *strong* references to their canonical values: an interned
//! formula stays resident after the last path referencing it dies, so the next
//! injection of the same scenario re-derives identical ids and hits the memos.
//! To bound memory, every shard clears itself once it reaches capacity
//! (mirroring the solver's own memo eviction). Ids are never reused — after a
//! clear, re-interning a value yields a *fresh* id, so stale memo entries keyed
//! on evicted ids can never be confused with new content; they simply stop
//! matching and age out with their own table's eviction.
//!
//! `Arc` rather than `Rc` because interned values cross threads: the engine's
//! work-stealing workers push and steal paths (whose nodes hold `Interned<
//! Formula>`) freely, and the global memo tables are shared by every worker.

use crate::formula::Formula;
use crate::interval::IntervalSet;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Process-wide id allocator shared by every interner (formulas, interval
/// sets, content pairs), so any two interned objects — of any type — have
/// distinct ids. Starts at 1; 0 is reserved for [`EMPTY_CONTENT_ID`].
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Content id of the empty path condition (no conjuncts).
pub const EMPTY_CONTENT_ID: u64 = 0;

/// Number of independently locked shards per interner.
const SHARD_COUNT: usize = 16;
/// Distinct values a shard holds before it clears itself.
const SHARD_CAP: usize = 8192;
/// Distinct `(parent, formula)` pairs the content-id table holds before
/// clearing.
const CONTENT_CAP: usize = 1 << 17;

struct Entry<T> {
    hash: u64,
    id: u64,
    value: T,
}

/// A hash-consed, `Arc`-shared value with precomputed hash and unique id.
///
/// Obtained from an [`Interner`]; see the module docs for the equality and
/// lifecycle guarantees.
pub struct Interned<T>(Arc<Entry<T>>);

impl<T> Interned<T> {
    /// The process-unique id of this canonical value.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The precomputed structural hash of the value.
    pub fn precomputed_hash(&self) -> u64 {
        self.0.hash
    }

    /// True when both handles point at the same canonical allocation.
    pub fn ptr_eq(a: &Interned<T>, b: &Interned<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }
}

impl<T> Clone for Interned<T> {
    fn clone(&self) -> Self {
        Interned(Arc::clone(&self.0))
    }
}

impl<T> Deref for Interned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0.value
    }
}

impl<T: PartialEq> PartialEq for Interned<T> {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality decides the common case; the structural fallback
        // covers handles that straddle a shard eviction (same value interned
        // twice into distinct canonical allocations).
        Interned::ptr_eq(self, other)
            || (self.0.hash == other.0.hash && self.0.value == other.0.value)
    }
}

impl<T: Eq> Eq for Interned<T> {}

impl<T: Hash> Hash for Interned<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Interned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: std::fmt::Display> std::fmt::Display for Interned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.value.fmt(f)
    }
}

struct Shard<T> {
    /// Hash → canonical entries with that hash (almost always one).
    entries: HashMap<u64, Vec<Interned<T>>>,
    /// Total canonical values across all buckets.
    live: usize,
}

/// A sharded hash-cons table. See the module docs.
pub struct Interner<T> {
    shards: Vec<Mutex<Shard<T>>>,
}

fn structural_hash<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

impl<T: Hash + Eq> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        live: 0,
                    })
                })
                .collect(),
        }
    }

    /// Returns the canonical [`Interned`] handle for `value`, creating it if
    /// this value has not been seen (since the last shard eviction).
    pub fn intern(&self, value: T) -> Interned<T> {
        let hash = structural_hash(&value);
        let shard = &self.shards[(hash as usize) % SHARD_COUNT];
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(bucket) = guard.entries.get(&hash) {
            if let Some(found) = bucket.iter().find(|e| e.0.value == value) {
                return found.clone();
            }
        }
        if guard.live >= SHARD_CAP {
            guard.entries.clear();
            guard.live = 0;
        }
        let interned = Interned(Arc::new(Entry {
            hash,
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            value,
        }));
        guard
            .entries
            .entry(hash)
            .or_default()
            .push(interned.clone());
        guard.live += 1;
        interned
    }

    /// Number of canonical values currently resident (for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).live)
            .sum()
    }

    /// True when no value is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Hash + Eq> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

/// The process-wide [`Formula`] interner.
pub fn formulas() -> &'static Interner<Formula> {
    static FORMULAS: OnceLock<Interner<Formula>> = OnceLock::new();
    FORMULAS.get_or_init(Interner::new)
}

/// The process-wide [`IntervalSet`] interner.
pub fn intervals() -> &'static Interner<IntervalSet> {
    static INTERVALS: OnceLock<Interner<IntervalSet>> = OnceLock::new();
    INTERVALS.get_or_init(Interner::new)
}

/// Interns a formula in the process-wide table.
pub fn intern_formula(formula: Formula) -> Interned<Formula> {
    formulas().intern(formula)
}

/// Returns the canonical copy of an interval set, so structurally equal big
/// sets share one `Arc`-backed allocation (making their equality O(1) and
/// their clones reference bumps). Sets small enough to live inline (≤ 2
/// ranges) are returned unchanged — interning them would only add lookup cost.
pub fn canonical_interval(set: IntervalSet) -> IntervalSet {
    if set.interval_count() <= 2 {
        return set;
    }
    let interned = intervals().intern(set);
    interned.deref().clone()
}

/// Interns the `(parent content, formula)` pair and returns the content id of
/// the extended prefix. Pass [`EMPTY_CONTENT_ID`] as `parent` for the first
/// conjunct; `formula` is the id of an [`Interned<Formula>`].
pub fn content_id(parent: u64, formula: u64) -> u64 {
    static CONTENT: OnceLock<Mutex<HashMap<(u64, u64), u64>>> = OnceLock::new();
    let map = CONTENT.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = map.lock().unwrap_or_else(PoisonError::into_inner);
    if guard.len() >= CONTENT_CAP && !guard.contains_key(&(parent, formula)) {
        guard.clear();
    }
    *guard
        .entry((parent, formula))
        .or_insert_with(|| NEXT_ID.fetch_add(1, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::SymVar;

    fn v(id: u64) -> SymVar {
        SymVar::new(id, 16)
    }

    #[test]
    fn interning_the_same_formula_yields_the_same_id_and_pointer() {
        // Use constants unlikely to collide with other tests sharing the
        // process-wide interner.
        let f = Formula::eq_const(v(70_001), 12_345);
        let a = intern_formula(f.clone());
        let b = intern_formula(f.clone());
        assert!(Interned::ptr_eq(&a, &b));
        assert_eq!(a.id(), b.id());
        assert_eq!(a.precomputed_hash(), b.precomputed_hash());
        assert_eq!(*a, f);
        let other = intern_formula(Formula::eq_const(v(70_001), 12_346));
        assert!(!Interned::ptr_eq(&a, &other));
        assert_ne!(a.id(), other.id());
        assert_ne!(a, other);
    }

    #[test]
    fn content_ids_depend_only_on_content() {
        let f1 = intern_formula(Formula::eq_const(v(70_002), 7));
        let f2 = intern_formula(Formula::ne_const(v(70_003), 8));
        let a = content_id(EMPTY_CONTENT_ID, f1.id());
        let b = content_id(a, f2.id());
        // Rebuilding the same chain reproduces the same ids.
        assert_eq!(content_id(EMPTY_CONTENT_ID, f1.id()), a);
        assert_eq!(content_id(a, f2.id()), b);
        // Different chains get different ids.
        assert_ne!(content_id(EMPTY_CONTENT_ID, f2.id()), a);
        assert_ne!(a, EMPTY_CONTENT_ID);
        assert_ne!(b, a);
    }

    #[test]
    fn canonical_interval_shares_big_storage_and_skips_small() {
        let big = IntervalSet::from_ranges((0..40i128).map(|i| (3 * i + 900_000, 3 * i + 900_000)));
        let a = canonical_interval(big.clone());
        let b = canonical_interval(big.clone());
        assert!(a.ptr_eq(&b), "canonical big sets share one allocation");
        assert_eq!(a, big);
        let small = IntervalSet::range(0, 5);
        let s = canonical_interval(small.clone());
        assert_eq!(s, small);
        assert!(!s.ptr_eq(&small), "small sets are inline, never Arc-backed");
    }

    #[test]
    fn interned_equality_survives_distinct_allocations() {
        // Simulate the post-eviction case: equal values behind different Arcs.
        let local: Interner<Formula> = Interner::new();
        let a = local.intern(Formula::eq_const(v(70_004), 1));
        let other: Interner<Formula> = Interner::new();
        let b = other.intern(Formula::eq_const(v(70_004), 1));
        assert!(!Interned::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
