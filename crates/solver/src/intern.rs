//! Hash-consed interning of solver terms.
//!
//! The solver's incremental interface keys its memo tables on *what* a prefix
//! says, not on *which node* says it. This module provides the identity layer
//! that makes such keys sound and cheap:
//!
//! * [`Interned<T>`] — an `Arc`-shared, hash-consed value with a precomputed
//!   structural hash and a process-unique `u64` id. Two `Interned` handles
//!   obtained from the same interner are equal exactly when their values are
//!   structurally equal, and the common case is decided by pointer comparison.
//! * [`Interner<T>`] — a sharded, mutex-guarded hash-cons table. Process-wide
//!   instances for [`Formula`] and [`IntervalSet`] are exposed through
//!   [`formulas`], [`intervals`], [`intern_formula`] and [`canonical_interval`].
//! * [`content_id`] — interning of `(parent content, conjunct)` pairs, giving
//!   every distinct path-condition *content* a process-unique id. Two
//!   [`PathCond`](crate::path::PathCond)s built independently from the same
//!   conjunct sequence map to the same content id, which is what lets a
//!   re-injected scenario hit the cross-run solve memos instead of re-solving
//!   every prefix (see [`crate::Solver::check_path`]).
//!
//! # Lifecycle and eviction
//!
//! Interners hold *strong* references to their canonical values: an interned
//! formula stays resident after the last path referencing it dies, so the next
//! injection of the same scenario re-derives identical ids and hits the memos.
//! To bound memory, every shard runs a **second-chance sweep** once it reaches
//! capacity: entries hit since the previous sweep keep their slot (their
//! reference bit is cleared, arming them for the next round), one-shot entries
//! are evicted. A working set that genuinely exceeds capacity degrades to the
//! old clear-at-capacity behaviour — the sweep falls back to a full clear when
//! it frees nothing — so memory stays bounded either way, but a hot working
//! set (the memo-backing formulas of a long `--full`-scale chain) survives
//! instead of being thrashed out by cold traffic. [`eviction_stats`] exposes
//! the per-table eviction and sweep counters. Ids are never reused — after an
//! eviction, re-interning a value yields a *fresh* id, so stale memo entries
//! keyed on evicted ids can never be confused with new content; they simply
//! stop matching and age out with their own table's eviction.
//!
//! `Arc` rather than `Rc` because interned values cross threads: the engine's
//! work-stealing workers push and steal paths (whose nodes hold `Interned<
//! Formula>`) freely, and the global memo tables are shared by every worker.

use crate::formula::Formula;
use crate::interval::IntervalSet;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// Process-wide id allocator shared by every interner (formulas, interval
/// sets, content pairs), so any two interned objects — of any type — have
/// distinct ids. Starts at 1; 0 is reserved for [`EMPTY_CONTENT_ID`].
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Content id of the empty path condition (no conjuncts).
pub const EMPTY_CONTENT_ID: u64 = 0;

/// Number of independently locked shards per interner.
const SHARD_COUNT: usize = 16;
/// Distinct values a shard holds before it runs a second-chance sweep.
const SHARD_CAP: usize = 8192;
/// Distinct `(parent, formula)` pairs the content-id table holds before it
/// runs a second-chance sweep.
const CONTENT_CAP: usize = 1 << 17;

/// Values evicted from the content-id table over the process lifetime.
static CONTENT_EVICTED: AtomicU64 = AtomicU64::new(0);
/// Second-chance sweeps run on the content-id table.
static CONTENT_SWEEPS: AtomicU64 = AtomicU64::new(0);

/// Lifetime eviction counters of one interning table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EvictionStats {
    /// Canonical values dropped by second-chance sweeps (including full-clear
    /// fallbacks).
    pub evicted: u64,
    /// Sweeps run.
    pub sweeps: u64,
}

/// Eviction counters of every process-wide interning table.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MemoEvictionStats {
    /// The [`formulas`] interner.
    pub formulas: EvictionStats,
    /// The [`intervals`] interner.
    pub intervals: EvictionStats,
    /// The [`content_id`] table.
    pub content: EvictionStats,
}

/// Snapshot of the eviction and sweep counters of the process-wide tables.
///
/// `evicted == 0` after a long run means the hot working set (memo-backing
/// formulas, content chains) fit in the tables and no memo layer was thrashed;
/// a large count with few sweeps means mostly one-shot traffic aged out, which
/// is the intended behaviour.
pub fn eviction_stats() -> MemoEvictionStats {
    MemoEvictionStats {
        formulas: formulas().eviction_stats(),
        intervals: intervals().eviction_stats(),
        content: EvictionStats {
            evicted: CONTENT_EVICTED.load(Ordering::Relaxed),
            sweeps: CONTENT_SWEEPS.load(Ordering::Relaxed),
        },
    }
}

struct Entry<T> {
    hash: u64,
    id: u64,
    /// Stable structural fingerprint (see [`crate::fingerprint`]), computed
    /// lazily on first use and cached for the canonical allocation's lifetime
    /// — every path node and persistent-cache key sharing this entry reuses
    /// the one traversal.
    fp: OnceLock<u128>,
    value: T,
}

/// A hash-consed, `Arc`-shared value with precomputed hash and unique id.
///
/// Obtained from an [`Interner`]; see the module docs for the equality and
/// lifecycle guarantees.
pub struct Interned<T>(Arc<Entry<T>>);

impl<T> Interned<T> {
    /// The process-unique id of this canonical value.
    pub fn id(&self) -> u64 {
        self.0.id
    }

    /// The precomputed structural hash of the value.
    pub fn precomputed_hash(&self) -> u64 {
        self.0.hash
    }

    /// True when both handles point at the same canonical allocation.
    pub fn ptr_eq(a: &Interned<T>, b: &Interned<T>) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// The stable structural fingerprint of this value, computing it with
    /// `compute` on first call and caching it on the canonical allocation.
    ///
    /// `compute` must be a pure function of the value's structure (see
    /// [`crate::fingerprint`]); every caller for a given `T` must pass the
    /// same function, since whichever call arrives first wins the cache slot.
    pub fn fingerprint_or(&self, compute: impl FnOnce(&T) -> u128) -> u128 {
        *self.0.fp.get_or_init(|| compute(&self.0.value))
    }
}

impl<T> Clone for Interned<T> {
    fn clone(&self) -> Self {
        Interned(Arc::clone(&self.0))
    }
}

impl<T> Deref for Interned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0.value
    }
}

impl<T: PartialEq> PartialEq for Interned<T> {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality decides the common case; the structural fallback
        // covers handles that straddle a shard eviction (same value interned
        // twice into distinct canonical allocations).
        Interned::ptr_eq(self, other)
            || (self.0.hash == other.0.hash && self.0.value == other.0.value)
    }
}

impl<T: Eq> Eq for Interned<T> {}

impl<T: Hash> Hash for Interned<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.0.hash);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Interned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.value.fmt(f)
    }
}

impl<T: std::fmt::Display> std::fmt::Display for Interned<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.value.fmt(f)
    }
}

/// One resident canonical value plus its second-chance reference bit (set on
/// every hit, cleared by a sweep — an entry survives a sweep iff it was hit
/// since the previous one).
struct Slot<T> {
    handle: Interned<T>,
    touched: bool,
}

struct Shard<T> {
    /// Hash → canonical entries with that hash (almost always one).
    entries: HashMap<u64, Vec<Slot<T>>>,
    /// Total canonical values across all buckets.
    live: usize,
    /// Values evicted by sweeps over this shard's lifetime.
    evicted: u64,
    /// Second-chance sweeps run on this shard.
    sweeps: u64,
}

impl<T> Shard<T> {
    /// The second-chance eviction pass: keep entries whose reference bit is
    /// set (clearing it, so surviving another round requires another hit),
    /// evict the rest. When everything is hot — the working set genuinely
    /// exceeds capacity — fall back to a full clear so memory stays bounded.
    fn sweep(&mut self) {
        let mut freed = 0usize;
        self.entries.retain(|_, bucket| {
            bucket.retain_mut(|slot| {
                if slot.touched {
                    slot.touched = false;
                    true
                } else {
                    freed += 1;
                    false
                }
            });
            !bucket.is_empty()
        });
        self.live -= freed;
        self.evicted += freed as u64;
        self.sweeps += 1;
        if self.live >= SHARD_CAP {
            self.evicted += self.live as u64;
            self.entries.clear();
            self.live = 0;
        }
    }
}

/// A sharded hash-cons table. See the module docs.
pub struct Interner<T> {
    shards: Vec<Mutex<Shard<T>>>,
}

fn structural_hash<T: Hash>(value: &T) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

impl<T: Hash + Eq> Interner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner {
            shards: (0..SHARD_COUNT)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        live: 0,
                        evicted: 0,
                        sweeps: 0,
                    })
                })
                .collect(),
        }
    }

    /// Returns the canonical [`Interned`] handle for `value`, creating it if
    /// this value has not been seen (since the last shard eviction).
    pub fn intern(&self, value: T) -> Interned<T> {
        let hash = structural_hash(&value);
        let shard = &self.shards[(hash as usize) % SHARD_COUNT];
        let mut guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(bucket) = guard.entries.get_mut(&hash) {
            if let Some(found) = bucket.iter_mut().find(|s| s.handle.0.value == value) {
                // A hit sets the reference bit: this entry survives the next
                // sweep.
                found.touched = true;
                return found.handle.clone();
            }
        }
        if guard.live >= SHARD_CAP {
            guard.sweep();
        }
        let interned = Interned(Arc::new(Entry {
            hash,
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            fp: OnceLock::new(),
            value,
        }));
        // New entries start cold: a value never hit again is evicted by the
        // next sweep, so one-shot traffic cannot thrash the hot working set.
        guard.entries.entry(hash).or_default().push(Slot {
            handle: interned.clone(),
            touched: false,
        });
        guard.live += 1;
        interned
    }

    /// Number of canonical values currently resident (for tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).live)
            .sum()
    }

    /// Lifetime eviction counters of this interner, summed over its shards.
    pub fn eviction_stats(&self) -> EvictionStats {
        let mut stats = EvictionStats::default();
        for shard in &self.shards {
            let guard = shard.lock().unwrap_or_else(PoisonError::into_inner);
            stats.evicted += guard.evicted;
            stats.sweeps += guard.sweeps;
        }
        stats
    }

    /// True when no value is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Hash + Eq> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

/// The process-wide [`Formula`] interner.
pub fn formulas() -> &'static Interner<Formula> {
    static FORMULAS: OnceLock<Interner<Formula>> = OnceLock::new();
    FORMULAS.get_or_init(Interner::new)
}

/// The process-wide [`IntervalSet`] interner.
pub fn intervals() -> &'static Interner<IntervalSet> {
    static INTERVALS: OnceLock<Interner<IntervalSet>> = OnceLock::new();
    INTERVALS.get_or_init(Interner::new)
}

/// Interns a formula in the process-wide table.
pub fn intern_formula(formula: Formula) -> Interned<Formula> {
    formulas().intern(formula)
}

/// Returns the canonical copy of an interval set, so structurally equal big
/// sets share one `Arc`-backed allocation (making their equality O(1) and
/// their clones reference bumps). Sets small enough to live inline (≤ 2
/// ranges) are returned unchanged — interning them would only add lookup cost.
pub fn canonical_interval(set: IntervalSet) -> IntervalSet {
    if set.interval_count() <= 2 {
        return set;
    }
    let interned = intervals().intern(set);
    interned.deref().clone()
}

/// Interns the `(parent content, formula)` pair and returns the content id of
/// the extended prefix. Pass [`EMPTY_CONTENT_ID`] as `parent` for the first
/// conjunct; `formula` is the id of an [`Interned<Formula>`].
pub fn content_id(parent: u64, formula: u64) -> u64 {
    /// Content id plus the second-chance reference bit of one `(parent,
    /// formula)` pair.
    type ContentSlot = (u64, bool);
    static CONTENT: OnceLock<Mutex<HashMap<(u64, u64), ContentSlot>>> = OnceLock::new();
    let map = CONTENT.get_or_init(|| Mutex::new(HashMap::new()));
    let mut guard = map.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(slot) = guard.get_mut(&(parent, formula)) {
        slot.1 = true;
        return slot.0;
    }
    if guard.len() >= CONTENT_CAP {
        // Same second-chance discipline as the shard sweep: keep pairs looked
        // up since the previous sweep (clearing their bit), evict the rest,
        // and fall back to a full clear when everything is hot.
        let before = guard.len();
        guard.retain(|_, slot| std::mem::replace(&mut slot.1, false));
        if guard.len() >= CONTENT_CAP {
            guard.clear();
        }
        CONTENT_EVICTED.fetch_add((before - guard.len()) as u64, Ordering::Relaxed);
        CONTENT_SWEEPS.fetch_add(1, Ordering::Relaxed);
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    guard.insert((parent, formula), (id, false));
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::SymVar;

    fn v(id: u64) -> SymVar {
        SymVar::new(id, 16)
    }

    #[test]
    fn interning_the_same_formula_yields_the_same_id_and_pointer() {
        // Use constants unlikely to collide with other tests sharing the
        // process-wide interner.
        let f = Formula::eq_const(v(70_001), 12_345);
        let a = intern_formula(f.clone());
        let b = intern_formula(f.clone());
        assert!(Interned::ptr_eq(&a, &b));
        assert_eq!(a.id(), b.id());
        assert_eq!(a.precomputed_hash(), b.precomputed_hash());
        assert_eq!(*a, f);
        let other = intern_formula(Formula::eq_const(v(70_001), 12_346));
        assert!(!Interned::ptr_eq(&a, &other));
        assert_ne!(a.id(), other.id());
        assert_ne!(a, other);
    }

    #[test]
    fn content_ids_depend_only_on_content() {
        let f1 = intern_formula(Formula::eq_const(v(70_002), 7));
        let f2 = intern_formula(Formula::ne_const(v(70_003), 8));
        let a = content_id(EMPTY_CONTENT_ID, f1.id());
        let b = content_id(a, f2.id());
        // Rebuilding the same chain reproduces the same ids.
        assert_eq!(content_id(EMPTY_CONTENT_ID, f1.id()), a);
        assert_eq!(content_id(a, f2.id()), b);
        // Different chains get different ids.
        assert_ne!(content_id(EMPTY_CONTENT_ID, f2.id()), a);
        assert_ne!(a, EMPTY_CONTENT_ID);
        assert_ne!(b, a);
    }

    #[test]
    fn canonical_interval_shares_big_storage_and_skips_small() {
        let big = IntervalSet::from_ranges((0..40i128).map(|i| (3 * i + 900_000, 3 * i + 900_000)));
        let a = canonical_interval(big.clone());
        let b = canonical_interval(big.clone());
        assert!(a.ptr_eq(&b), "canonical big sets share one allocation");
        assert_eq!(a, big);
        let small = IntervalSet::range(0, 5);
        let s = canonical_interval(small.clone());
        assert_eq!(s, small);
        assert!(!s.ptr_eq(&small), "small sets are inline, never Arc-backed");
    }

    #[test]
    fn hot_values_survive_sweeps_while_cold_traffic_is_evicted() {
        let local: Interner<Formula> = Interner::new();
        let hot = Formula::eq_const(v(70_010), 42);
        let hot_handle = local.intern(hot.clone());
        // Enough distinct cold values to drive every shard past capacity
        // (twice over, so variance in hash distribution cannot save a shard
        // from sweeping), re-touching the hot value often enough that its
        // reference bit is always set when its shard sweeps.
        let total = SHARD_COUNT * SHARD_CAP * 2;
        for i in 0..total {
            local.intern(Formula::eq_const(v(80_000 + (i as u64 % 64)), i as u64));
            if i % 1024 == 0 {
                let again = local.intern(hot.clone());
                assert!(Interned::ptr_eq(&hot_handle, &again));
            }
        }
        let stats = local.eviction_stats();
        assert!(stats.sweeps > 0, "cold traffic must trigger sweeps");
        assert!(stats.evicted > 0, "one-shot values must be evicted");
        assert!(
            local.len() < total,
            "table stays bounded: {} resident after {} inserts",
            local.len(),
            total
        );
        // The hot value kept its slot — same canonical allocation, same id —
        // so memo entries keyed on it never went stale.
        let again = local.intern(hot);
        assert!(Interned::ptr_eq(&hot_handle, &again));
        assert_eq!(again.id(), hot_handle.id());
    }

    #[test]
    fn process_wide_eviction_stats_are_readable() {
        let stats = eviction_stats();
        // Counters are monotone and only move together: an eviction implies at
        // least one sweep on that table.
        assert!(stats.formulas.evicted == 0 || stats.formulas.sweeps > 0);
        assert!(stats.intervals.evicted == 0 || stats.intervals.sweeps > 0);
        assert!(stats.content.evicted == 0 || stats.content.sweeps > 0);
    }

    #[test]
    fn interned_equality_survives_distinct_allocations() {
        // Simulate the post-eviction case: equal values behind different Arcs.
        let local: Interner<Formula> = Interner::new();
        let a = local.intern(Formula::eq_const(v(70_004), 1));
        let other: Interner<Formula> = Interner::new();
        let b = other.intern(Formula::eq_const(v(70_004), 1));
        assert!(!Interned::ptr_eq(&a, &b));
        assert_eq!(a, b);
        let mut ha = DefaultHasher::new();
        let mut hb = DefaultHasher::new();
        a.hash(&mut ha);
        b.hash(&mut hb);
        assert_eq!(ha.finish(), hb.finish());
    }
}
