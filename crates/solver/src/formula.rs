//! Constraint formulas.
//!
//! A [`Formula`] is the solver-facing representation of an SEFL path
//! condition: atoms are comparisons between [`Term`]s or prefix matches on a
//! single variable, composed with `and` / `or` / `not`. The execution engine
//! lowers SEFL `Constrain` / `If` conditions into this type.

use crate::term::{SymVar, Term, VarId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Comparison operators supported by SEFL conditions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The operator accepting exactly the complement set of value pairs.
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with both sides swapped (`a op b` ⇔ `b op.swap() a`).
    pub fn swap(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Evaluates the comparison on concrete values.
    pub fn eval(self, lhs: i128, rhs: i128) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean formula over comparison and prefix-match atoms.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Formula {
    /// Always true.
    True,
    /// Always false.
    False,
    /// Comparison between two terms.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Left-hand side.
        lhs: Term,
        /// Right-hand side.
        rhs: Term,
    },
    /// Longest-prefix / bit-mask match on a single variable: the top
    /// `prefix_len` bits of the variable equal the top bits of `value`.
    PrefixMatch {
        /// The matched variable.
        var: SymVar,
        /// Prefix value, aligned to the variable width (host bits ignored).
        value: u64,
        /// Number of leading bits that must match.
        prefix_len: u8,
    },
    /// Conjunction. Children are `Arc`-shared so cloning an `And` (which the
    /// engine does every time a path condition is materialized or memoized)
    /// is a reference-count bump, not a deep copy.
    And(Arc<Vec<Formula>>),
    /// Disjunction. `Arc`-shared for the same reason — the `--full` paper
    /// workloads build disjunctions with hundreds of thousands of children.
    Or(Arc<Vec<Formula>>),
    /// Negation.
    Not(Arc<Formula>),
}

/// Appends `f` to `out` unless a structurally identical child is already
/// present. Small lists use a plain linear scan (no allocation); larger ones
/// lazily build a hash index over the accumulated children.
fn push_unique(out: &mut Vec<Formula>, index: &mut Option<HashMap<u64, Vec<u32>>>, f: Formula) {
    // Threshold below which a linear equality scan beats building an index.
    const LINEAR_MAX: usize = 8;
    fn hash_of(f: &Formula) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        f.hash(&mut h);
        h.finish()
    }
    if index.is_none() {
        if out.len() < LINEAR_MAX {
            if !out.contains(&f) {
                out.push(f);
            }
            return;
        }
        // Crossing the threshold: index everything accumulated so far.
        let mut map: HashMap<u64, Vec<u32>> = HashMap::with_capacity(out.len() * 2);
        for (i, existing) in out.iter().enumerate() {
            map.entry(hash_of(existing)).or_default().push(i as u32);
        }
        *index = Some(map);
    }
    let map = index.as_mut().expect("index built above");
    let bucket = map.entry(hash_of(&f)).or_default();
    if bucket.iter().any(|&i| out[i as usize] == f) {
        return;
    }
    bucket.push(out.len() as u32);
    out.push(f);
}

impl Formula {
    /// Comparison between arbitrary terms.
    pub fn cmp(op: CmpOp, lhs: impl Into<Term>, rhs: impl Into<Term>) -> Formula {
        Formula::Cmp {
            op,
            lhs: lhs.into(),
            rhs: rhs.into(),
        }
    }

    /// `var op constant`.
    pub fn cmp_const(op: CmpOp, var: SymVar, value: u64) -> Formula {
        Formula::cmp(op, Term::var(var), Term::constant(value as i128))
    }

    /// `var == constant`.
    pub fn eq_const(var: SymVar, value: u64) -> Formula {
        Formula::cmp_const(CmpOp::Eq, var, value)
    }

    /// `var != constant`.
    pub fn ne_const(var: SymVar, value: u64) -> Formula {
        Formula::cmp_const(CmpOp::Ne, var, value)
    }

    /// `a == b` between two variables.
    pub fn vars_equal(a: SymVar, b: SymVar) -> Formula {
        Formula::cmp(CmpOp::Eq, Term::var(a), Term::var(b))
    }

    /// Prefix match on a variable: the top `prefix_len` bits of `var` equal the
    /// top bits of `value`.
    pub fn prefix_match(var: SymVar, value: u64, prefix_len: u8) -> Formula {
        Formula::PrefixMatch {
            var,
            value,
            prefix_len: prefix_len.min(var.width),
        }
    }

    /// Conjunction with flattening, constant folding, and deduplication of
    /// structurally identical children (first occurrence wins).
    pub fn and(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::with_capacity(parts.len());
        let mut index = None;
        for p in parts {
            match p {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => match Arc::try_unwrap(inner) {
                    Ok(inner) => {
                        for q in inner {
                            push_unique(&mut out, &mut index, q);
                        }
                    }
                    Err(shared) => {
                        for q in shared.iter() {
                            push_unique(&mut out, &mut index, q.clone());
                        }
                    }
                },
                other => push_unique(&mut out, &mut index, other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.pop().unwrap(),
            _ => Formula::And(Arc::new(out)),
        }
    }

    /// Disjunction with flattening, constant folding, and deduplication of
    /// structurally identical children (first occurrence wins).
    pub fn or(parts: Vec<Formula>) -> Formula {
        let mut out = Vec::with_capacity(parts.len());
        let mut index = None;
        for p in parts {
            match p {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => match Arc::try_unwrap(inner) {
                    Ok(inner) => {
                        for q in inner {
                            push_unique(&mut out, &mut index, q);
                        }
                    }
                    Err(shared) => {
                        for q in shared.iter() {
                            push_unique(&mut out, &mut index, q.clone());
                        }
                    }
                },
                other => push_unique(&mut out, &mut index, other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.pop().unwrap(),
            _ => Formula::Or(Arc::new(out)),
        }
    }

    /// Negation with constant folding and double-negation elimination.
    /// (Deliberately an associated constructor, not `std::ops::Not`: it takes
    /// the formula by value and mirrors the paper's `Not(...)` syntax.)
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => Arc::try_unwrap(inner).unwrap_or_else(|a| (*a).clone()),
            Formula::Cmp { op, lhs, rhs } => Formula::Cmp {
                op: op.negate(),
                lhs,
                rhs,
            },
            other => Formula::Not(Arc::new(other)),
        }
    }

    /// Collects every variable mentioned in the formula.
    pub fn variables(&self) -> BTreeSet<SymVar> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<SymVar>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Cmp { lhs, rhs, .. } => {
                if let Some(v) = lhs.as_var() {
                    out.insert(v);
                }
                if let Some(v) = rhs.as_var() {
                    out.insert(v);
                }
            }
            Formula::PrefixMatch { var, .. } => {
                out.insert(*var);
            }
            Formula::And(parts) | Formula::Or(parts) => {
                for p in parts.iter() {
                    p.collect_vars(out);
                }
            }
            Formula::Not(inner) => inner.collect_vars(out),
        }
    }

    /// Returns the number of atoms (comparisons and prefix matches) in the
    /// formula. Used by the evaluation harness to report constraint counts the
    /// way §8.1 of the paper does.
    pub fn atom_count(&self) -> usize {
        match self {
            Formula::True | Formula::False => 0,
            Formula::Cmp { .. } | Formula::PrefixMatch { .. } => 1,
            Formula::And(parts) | Formula::Or(parts) => parts.iter().map(Formula::atom_count).sum(),
            Formula::Not(inner) => inner.atom_count(),
        }
    }

    /// Evaluates the formula under a concrete assignment. Returns `None` if a
    /// referenced variable has no value in the assignment.
    pub fn eval(&self, lookup: &impl Fn(VarId) -> Option<u64>) -> Option<bool> {
        match self {
            Formula::True => Some(true),
            Formula::False => Some(false),
            Formula::Cmp { op, lhs, rhs } => {
                let l = lhs.eval(lookup)?;
                let r = rhs.eval(lookup)?;
                Some(op.eval(l, r))
            }
            Formula::PrefixMatch {
                var,
                value,
                prefix_len,
            } => {
                let x = lookup(var.id)?;
                let shift = var.width.saturating_sub(*prefix_len);
                Some((x >> shift) == (*value & var.max_value()) >> shift)
            }
            Formula::And(parts) => {
                let mut all = true;
                for p in parts.iter() {
                    match p.eval(lookup) {
                        Some(true) => {}
                        Some(false) => all = false,
                        None => return None,
                    }
                }
                Some(all)
            }
            Formula::Or(parts) => {
                let mut any = false;
                for p in parts.iter() {
                    match p.eval(lookup) {
                        Some(true) => any = true,
                        Some(false) => {}
                        None => return None,
                    }
                }
                Some(any)
            }
            Formula::Not(inner) => inner.eval(lookup).map(|b| !b),
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Cmp { op, lhs, rhs } => write!(f, "({lhs} {op} {rhs})"),
            Formula::PrefixMatch {
                var,
                value,
                prefix_len,
            } => write!(f, "({var} in {value}/{prefix_len})"),
            Formula::And(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Or(parts) => {
                write!(f, "(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, ")")
            }
            Formula::Not(inner) => write!(f, "!{inner}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(id: u64, w: u8) -> SymVar {
        SymVar::new(id, w)
    }

    #[test]
    fn cmp_op_negate_and_swap() {
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Lt.swap(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swap(), CmpOp::Eq);
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negate().negate(), op);
        }
    }

    #[test]
    fn and_or_fold_constants() {
        let a = Formula::eq_const(v(0, 8), 1);
        assert_eq!(Formula::and(vec![]), Formula::True);
        assert_eq!(Formula::and(vec![Formula::True, a.clone()]), a);
        assert_eq!(
            Formula::and(vec![a.clone(), Formula::False]),
            Formula::False
        );
        assert_eq!(Formula::or(vec![]), Formula::False);
        assert_eq!(Formula::or(vec![Formula::False, a.clone()]), a);
        assert_eq!(Formula::or(vec![a.clone(), Formula::True]), Formula::True);
    }

    #[test]
    fn and_or_flatten_nested() {
        let a = Formula::eq_const(v(0, 8), 1);
        let b = Formula::eq_const(v(1, 8), 2);
        let c = Formula::eq_const(v(2, 8), 3);
        let nested = Formula::and(vec![a.clone(), Formula::and(vec![b.clone(), c.clone()])]);
        assert_eq!(nested, Formula::And(Arc::new(vec![a, b, c])));
    }

    #[test]
    fn and_or_dedup_identical_children() {
        let a = Formula::eq_const(v(0, 8), 1);
        let b = Formula::eq_const(v(1, 8), 2);
        // Duplicates collapse, first occurrence order is preserved.
        assert_eq!(
            Formula::and(vec![a.clone(), b.clone(), a.clone()]),
            Formula::And(Arc::new(vec![a.clone(), b.clone()]))
        );
        // A fully duplicated list collapses to the single child.
        assert_eq!(Formula::or(vec![a.clone(), a.clone(), a.clone()]), a);
        // Dedup also applies across flattened nesting and past the linear
        // threshold (more than 8 accumulated children).
        let many: Vec<Formula> = (0..20)
            .map(|i| Formula::eq_const(v(i % 10, 8), i % 10))
            .collect();
        let deduped = Formula::or(many);
        match &deduped {
            Formula::Or(parts) => assert_eq!(parts.len(), 10),
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn not_pushes_into_comparisons() {
        let a = Formula::cmp_const(CmpOp::Lt, v(0, 8), 10);
        assert_eq!(Formula::not(a), Formula::cmp_const(CmpOp::Ge, v(0, 8), 10));
        let b = Formula::or(vec![
            Formula::eq_const(v(0, 8), 1),
            Formula::eq_const(v(1, 8), 2),
        ]);
        assert_eq!(Formula::not(Formula::not(b.clone())), b);
        assert_eq!(Formula::not(Formula::True), Formula::False);
    }

    #[test]
    fn variables_are_collected() {
        let f = Formula::and(vec![
            Formula::eq_const(v(3, 8), 1),
            Formula::cmp(CmpOp::Ne, Term::var(v(5, 16)), Term::var(v(3, 8))),
            Formula::prefix_match(v(9, 32), 0x0a000000, 8),
        ]);
        let vars: Vec<u64> = f.variables().iter().map(|s| s.id.0).collect();
        assert_eq!(vars, vec![3, 5, 9]);
        assert_eq!(f.atom_count(), 3);
    }

    #[test]
    fn eval_concrete() {
        let x = v(0, 16);
        let y = v(1, 16);
        let f = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, 10),
            Formula::cmp(CmpOp::Eq, Term::var(y), Term::var(x).plus(5)),
        ]);
        let lookup = |id: VarId| -> Option<u64> {
            match id.0 {
                0 => Some(20),
                1 => Some(25),
                _ => None,
            }
        };
        assert_eq!(f.eval(&lookup), Some(true));
        let lookup2 = |id: VarId| -> Option<u64> {
            match id.0 {
                0 => Some(20),
                1 => Some(26),
                _ => None,
            }
        };
        assert_eq!(f.eval(&lookup2), Some(false));
        let partial = |id: VarId| -> Option<u64> { (id.0 == 0).then_some(20) };
        assert_eq!(f.eval(&partial), None);
    }

    #[test]
    fn eval_prefix_match() {
        let ip = v(0, 32);
        // 10.0.0.0/8
        let f = Formula::prefix_match(ip, 0x0a000000, 8);
        let in_prefix = |_: VarId| Some(0x0a0a0001u64);
        let out_prefix = |_: VarId| Some(0x0b000001u64);
        assert_eq!(f.eval(&in_prefix), Some(true));
        assert_eq!(f.eval(&out_prefix), Some(false));
        // /0 matches everything.
        let any = Formula::prefix_match(ip, 0, 0);
        assert_eq!(any.eval(&out_prefix), Some(true));
    }

    #[test]
    fn display_round_trips_structure() {
        let x = v(0, 16);
        let f = Formula::or(vec![Formula::eq_const(x, 80), Formula::eq_const(x, 443)]);
        let s = f.to_string();
        assert!(s.contains("=="));
        assert!(s.contains('|'));
    }
}
