//! Solver instrumentation.
//!
//! §8.1 of the paper reports that "more than 90% of time is spent in Z3" and
//! measures the number of solver calls per experiment; [`SolverStats`] records
//! the equivalent counters for this solver so the benchmark harness can report
//! the same breakdown.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters accumulated by a [`crate::Solver`] across queries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Number of satisfiability queries issued.
    pub calls: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown` (cube budget exceeded).
    pub unknown: u64,
    /// Total number of cubes examined.
    pub cubes_examined: u64,
    /// Prefix-cache hits: queries (or sub-steps of queries) answered from the
    /// analysis cached on a shared [`crate::PathCond`] node — either a whole
    /// cached verdict or the cached cube normalisation of the prefix that only
    /// the newest conjunct was folded into. Deterministic across thread
    /// counts: the cache lives on the shared node, not on the worker.
    pub prefix_hits: u64,
    /// Prefix-cache misses: path-condition nodes whose analysis had to be
    /// computed (each node is analysed at most once, process-wide).
    pub prefix_misses: u64,
    /// Per-worker memo-cache hits (formula→result and projection memos).
    /// Excluded from serialized reports: which worker answers a query — and
    /// therefore which per-worker memo it hits — is scheduling-dependent.
    #[serde(skip)]
    pub memo_hits: u64,
    /// Per-worker memo-cache misses (excluded from serialized reports, see
    /// [`SolverStats::memo_hits`]).
    #[serde(skip)]
    pub memo_misses: u64,
    /// Process-wide content-memo hits: path queries answered from the global
    /// memo keyed on interned content ids (see [`crate::intern`]), which is
    /// what a re-injected scenario hits instead of re-solving. Excluded from
    /// serialized reports: warm-vs-cold memo state must not change report
    /// bytes (hits replay the counter pattern of a real computation).
    #[serde(skip)]
    pub content_hits: u64,
    /// Process-wide content-memo misses (excluded from serialized reports,
    /// see [`SolverStats::content_hits`]).
    #[serde(skip)]
    pub content_misses: u64,
    /// Persistent-cache hits: queries answered by replaying a verdict or
    /// projection from the disk-backed store (see [`crate::cache`]). Excluded
    /// from serialized reports: warm-vs-cold disk state must not change
    /// report bytes (hits replay the exact counters of a real computation).
    #[serde(skip)]
    pub persisted_hits: u64,
    /// Persistent-cache misses: consultable queries the store could not
    /// answer (excluded from serialized reports, see
    /// [`SolverStats::persisted_hits`]).
    #[serde(skip)]
    pub persisted_misses: u64,
    /// Verdicts/projections written to the persistent store (excluded from
    /// serialized reports, see [`SolverStats::persisted_hits`]).
    #[serde(skip)]
    pub persisted_stores: u64,
    /// Counterexample-cache hits: witness requests satisfied by a cached
    /// (and re-verified) model or exact cached `Unsat` (excluded from
    /// serialized reports, see [`SolverStats::persisted_hits`]).
    #[serde(skip)]
    pub cex_hits: u64,
    /// Cumulative wall-clock time spent inside the solver.
    #[serde(with = "duration_micros")]
    pub time_in_solver: Duration,
}

impl SolverStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.calls += other.calls;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.cubes_examined += other.cubes_examined;
        self.prefix_hits += other.prefix_hits;
        self.prefix_misses += other.prefix_misses;
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
        self.content_hits += other.content_hits;
        self.content_misses += other.content_misses;
        self.persisted_hits += other.persisted_hits;
        self.persisted_misses += other.persisted_misses;
        self.persisted_stores += other.persisted_stores;
        self.cex_hits += other.cex_hits;
        self.time_in_solver += other.time_in_solver;
    }
}

mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = SolverStats {
            calls: 2,
            sat: 1,
            unsat: 1,
            unknown: 0,
            cubes_examined: 5,
            prefix_hits: 4,
            prefix_misses: 2,
            memo_hits: 1,
            memo_misses: 3,
            content_hits: 2,
            content_misses: 1,
            persisted_hits: 3,
            persisted_misses: 2,
            persisted_stores: 2,
            cex_hits: 1,
            time_in_solver: Duration::from_millis(10),
        };
        let b = SolverStats {
            calls: 3,
            sat: 2,
            unsat: 0,
            unknown: 1,
            cubes_examined: 7,
            prefix_hits: 1,
            prefix_misses: 1,
            memo_hits: 2,
            memo_misses: 1,
            content_hits: 1,
            content_misses: 4,
            persisted_hits: 1,
            persisted_misses: 1,
            persisted_stores: 1,
            cex_hits: 2,
            time_in_solver: Duration::from_millis(5),
        };
        a.merge(&b);
        assert_eq!(a.calls, 5);
        assert_eq!(a.sat, 3);
        assert_eq!(a.unsat, 1);
        assert_eq!(a.unknown, 1);
        assert_eq!(a.cubes_examined, 12);
        assert_eq!(a.prefix_hits, 5);
        assert_eq!(a.prefix_misses, 3);
        assert_eq!(a.memo_hits, 3);
        assert_eq!(a.memo_misses, 4);
        assert_eq!(a.content_hits, 3);
        assert_eq!(a.content_misses, 5);
        assert_eq!(a.persisted_hits, 4);
        assert_eq!(a.persisted_misses, 3);
        assert_eq!(a.persisted_stores, 3);
        assert_eq!(a.cex_hits, 3);
        assert_eq!(a.time_in_solver, Duration::from_millis(15));
        a.reset();
        assert_eq!(a, SolverStats::default());
    }

    #[test]
    fn default_stats_are_zero() {
        let s = SolverStats::default();
        assert_eq!(s.calls, 0);
        assert_eq!(s.time_in_solver, Duration::ZERO);
    }
}
