//! Solver instrumentation.
//!
//! §8.1 of the paper reports that "more than 90% of time is spent in Z3" and
//! measures the number of solver calls per experiment; [`SolverStats`] records
//! the equivalent counters for this solver so the benchmark harness can report
//! the same breakdown.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters accumulated by a [`crate::Solver`] across queries.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Number of satisfiability queries issued.
    pub calls: u64,
    /// Queries answered `Sat`.
    pub sat: u64,
    /// Queries answered `Unsat`.
    pub unsat: u64,
    /// Queries answered `Unknown` (cube budget exceeded).
    pub unknown: u64,
    /// Total number of cubes examined.
    pub cubes_examined: u64,
    /// Cumulative wall-clock time spent inside the solver.
    #[serde(with = "duration_micros")]
    pub time_in_solver: Duration,
}

impl SolverStats {
    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = SolverStats::default();
    }

    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.calls += other.calls;
        self.sat += other.sat;
        self.unsat += other.unsat;
        self.unknown += other.unknown;
        self.cubes_examined += other.cubes_examined;
        self.time_in_solver += other.time_in_solver;
    }
}

mod duration_micros {
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::time::Duration;

    pub fn serialize<S: Serializer>(d: &Duration, s: S) -> Result<S::Ok, S::Error> {
        (d.as_micros() as u64).serialize(s)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(d: D) -> Result<Duration, D::Error> {
        Ok(Duration::from_micros(u64::deserialize(d)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counters() {
        let mut a = SolverStats {
            calls: 2,
            sat: 1,
            unsat: 1,
            unknown: 0,
            cubes_examined: 5,
            time_in_solver: Duration::from_millis(10),
        };
        let b = SolverStats {
            calls: 3,
            sat: 2,
            unsat: 0,
            unknown: 1,
            cubes_examined: 7,
            time_in_solver: Duration::from_millis(5),
        };
        a.merge(&b);
        assert_eq!(a.calls, 5);
        assert_eq!(a.sat, 3);
        assert_eq!(a.unsat, 1);
        assert_eq!(a.unknown, 1);
        assert_eq!(a.cubes_examined, 12);
        assert_eq!(a.time_in_solver, Duration::from_millis(15));
        a.reset();
        assert_eq!(a, SolverStats::default());
    }

    #[test]
    fn default_stats_are_zero() {
        let s = SolverStats::default();
        assert_eq!(s.calls, 0);
        assert_eq!(s.time_in_solver, Duration::ZERO);
    }
}
