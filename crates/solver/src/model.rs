//! Concrete models (satisfying assignments).

use crate::formula::Formula;
use crate::term::VarId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A concrete assignment of values to symbolic variables, produced by the
/// solver as a witness of satisfiability. The automated-testing framework
/// (§8.3 of the paper) turns these models into concrete test packets.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Model {
    values: BTreeMap<VarId, u64>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Model::default()
    }

    /// Sets the value of a variable.
    pub fn set(&mut self, var: VarId, value: u64) {
        self.values.insert(var, value);
    }

    /// Returns the value assigned to `var`, if any.
    pub fn value(&self, var: VarId) -> Option<u64> {
        self.values.get(&var).copied()
    }

    /// Number of assigned variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true if no variable is assigned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.values.iter().map(|(k, v)| (*k, *v))
    }

    /// Checks that this model satisfies `formula`; variables missing from the
    /// model make the check fail (the solver always assigns every variable the
    /// formula mentions).
    pub fn satisfies(&self, formula: &Formula) -> bool {
        formula.eval(&|id| self.value(id)).unwrap_or(false)
    }
}

impl FromIterator<(VarId, u64)> for Model {
    fn from_iter<T: IntoIterator<Item = (VarId, u64)>>(iter: T) -> Self {
        Model {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::{CmpOp, Formula};
    use crate::term::SymVar;

    #[test]
    fn model_set_and_get() {
        let mut m = Model::new();
        assert!(m.is_empty());
        m.set(VarId(3), 42);
        assert_eq!(m.value(VarId(3)), Some(42));
        assert_eq!(m.value(VarId(4)), None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn model_satisfies_checks_formula() {
        let x = SymVar::new(0, 16);
        let f = Formula::cmp_const(CmpOp::Ge, x, 100);
        let good: Model = [(VarId(0), 150u64)].into_iter().collect();
        let bad: Model = [(VarId(0), 50u64)].into_iter().collect();
        let missing = Model::new();
        assert!(good.satisfies(&f));
        assert!(!bad.satisfies(&f));
        assert!(!missing.satisfies(&f));
    }
}
