//! Persistent path conditions.
//!
//! A [`PathCond`] is the solver-facing representation of an execution path's
//! accumulated constraints: an immutable cons-list of conjuncts in which every
//! extension shares its entire prefix with the condition it extends. Forking a
//! path therefore costs one `Arc` clone (O(1)) instead of a deep copy of the
//! constraint vector, and the solver can key its per-prefix analysis on the
//! shared list node: checking `P ∧ c` reuses the cube normalisation of `P`
//! (cached on `P`'s node, shared by every path that forked from it) and only
//! folds in the new conjunct `c` (see [`crate::Solver::check_path`]).
//!
//! The cached analysis lives *on the node*, guarded by a mutex that is held
//! while the analysis is computed. Two workers racing for the same prefix
//! therefore never duplicate work, and — just as importantly — the hit/miss
//! statistics are a function of the explored paths alone, never of worker
//! scheduling, which keeps execution reports byte-identical across thread
//! counts.

use crate::cube::{Cube, CubeOverflow};
use crate::fingerprint;
use crate::formula::Formula;
use crate::intern::{self, Interned};
use crate::solve::SolverResult;
use serde::{Content, Deserialize, Deserializer, Error, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-wide allocator of node identities (used only as cache keys in
/// per-worker memo tables; the values never influence solver answers).
static NEXT_NODE_ID: AtomicU64 = AtomicU64::new(1);

/// The solver analysis cached on one prefix node.
#[derive(Debug, Default)]
pub(crate) struct NodeCache {
    /// Cube normalisation of the conjunction up to and including this node
    /// (shared with every query that extends this prefix), or the budget
    /// overflow that aborted it.
    pub(crate) cubes: Option<Result<Arc<Vec<Cube>>, CubeOverflow>>,
    /// The satisfiability verdict of exactly this prefix.
    pub(crate) result: Option<SolverResult>,
}

/// One node of a persistent path condition: the conjunct added at this point
/// plus the shared prefix it extends.
pub struct PathNode {
    id: u64,
    formula: Interned<Formula>,
    content: u64,
    /// Stable structural fingerprint of the whole prefix ending here — the
    /// cross-*process* analogue of `content`: equal conjunct sequences produce
    /// equal fingerprints in every run (see [`crate::fingerprint`]), which is
    /// what keys the persistent solver cache.
    fp: u128,
    parent: PathCond,
    len: usize,
    pub(crate) cache: Mutex<NodeCache>,
}

impl PathNode {
    /// The node's process-unique identity (stable for the node's lifetime;
    /// used as a memo key).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The conjunct added at this node.
    pub fn formula(&self) -> &Formula {
        &self.formula
    }

    /// The interned handle of the conjunct added at this node.
    pub fn interned_formula(&self) -> &Interned<Formula> {
        &self.formula
    }

    /// The content id of the whole prefix ending at this node: a
    /// process-unique id of the conjunct *sequence*, independent of which
    /// nodes carry it (see [`crate::intern::content_id`]). Two nodes with the
    /// same content id are structurally equal prefixes, even across
    /// independently built paths — this is the cross-run memo key.
    pub fn content_id(&self) -> u64 {
        self.content
    }

    /// The stable structural fingerprint of the whole prefix ending at this
    /// node. Like [`PathNode::content_id`] it identifies the conjunct
    /// *sequence* independent of which nodes carry it, but unlike a content id
    /// it is reproduced bit-identically by every process that builds the same
    /// sequence — this is the persistent-cache key.
    pub fn fingerprint(&self) -> u128 {
        self.fp
    }

    /// The shared prefix this node extends.
    pub fn parent(&self) -> &PathCond {
        &self.parent
    }
}

impl fmt::Debug for PathNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PathNode")
            .field("id", &self.id)
            .field("formula", &self.formula)
            .field("len", &self.len)
            .finish_non_exhaustive()
    }
}

/// A persistent (structurally shared) conjunction of formulas. Cloning and
/// extending are O(1); two conditions that forked from a common ancestor share
/// that ancestor's nodes — and the solver analyses cached on them.
#[derive(Clone, Debug, Default)]
pub struct PathCond(Option<Arc<PathNode>>);

impl PathCond {
    /// The empty (always-true) condition.
    pub fn empty() -> Self {
        PathCond(None)
    }

    /// True if no conjunct has been added.
    pub fn is_empty(&self) -> bool {
        self.0.is_none()
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |n| n.len)
    }

    /// The newest node, if any.
    pub fn node(&self) -> Option<&Arc<PathNode>> {
        self.0.as_ref()
    }

    /// Returns this condition extended with one conjunct. `Formula::True` is
    /// absorbed (the condition is returned unchanged). O(1): the receiver
    /// becomes the shared prefix of the result.
    #[must_use]
    pub fn push(&self, formula: Formula) -> PathCond {
        if formula == Formula::True {
            return self.clone();
        }
        let formula = intern::intern_formula(formula);
        let content = intern::content_id(self.content_id(), formula.id());
        let conjunct_fp = formula.fingerprint_or(fingerprint::formula_fp);
        let fp = fingerprint::combine(
            fingerprint::DOMAIN_PATH_NODE,
            &[self.fingerprint(), conjunct_fp],
        );
        PathCond(Some(Arc::new(PathNode {
            id: NEXT_NODE_ID.fetch_add(1, Ordering::Relaxed),
            formula,
            content,
            fp,
            parent: self.clone(),
            len: self.len() + 1,
            cache: Mutex::new(NodeCache::default()),
        })))
    }

    /// The content id of the whole conjunct sequence
    /// ([`intern::EMPTY_CONTENT_ID`] for the empty condition). Equal content
    /// ids imply structurally equal conditions, across independently built
    /// paths and across injections.
    pub fn content_id(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(intern::EMPTY_CONTENT_ID, |n| n.content)
    }

    /// The stable structural fingerprint of the conjunct sequence
    /// ([`fingerprint::EMPTY_PATH_FP`] for the empty condition). Equal across
    /// independently built paths *and across processes* — see
    /// [`PathNode::fingerprint`].
    pub fn fingerprint(&self) -> u128 {
        self.0.as_ref().map_or(fingerprint::EMPTY_PATH_FP, |n| n.fp)
    }

    /// Iterates over the conjuncts, newest first.
    pub fn iter(&self) -> PathIter<'_> {
        PathIter(self.0.as_deref())
    }

    /// The conjuncts oldest-first (insertion order), as used by reports and by
    /// the materialised formula.
    pub fn conjuncts(&self) -> Vec<&Formula> {
        let mut out: Vec<&Formula> = self.iter().collect();
        out.reverse();
        out
    }

    /// Materialises the condition as a single [`Formula`] conjunction, in
    /// insertion order. O(n) — intended for reports and for from-scratch
    /// baselines, not for the solving hot path.
    pub fn to_formula(&self) -> Formula {
        Formula::and(self.conjuncts().into_iter().cloned().collect())
    }

    /// Total number of comparison/prefix-match atoms across the conjuncts.
    pub fn atom_count(&self) -> usize {
        self.iter().map(Formula::atom_count).sum()
    }

    /// Clears the solver analyses cached on every node of this condition
    /// strictly deeper than `keep_len` conjuncts, returning how many nodes
    /// had a cached analysis to clear.
    ///
    /// This is the delta-invalidation hook of the resident verification
    /// service: when a rule delta replaces an element program, the conjuncts
    /// pushed while executing the *old* program — every node deeper than the
    /// element-entry checkpoint the service re-explores from — must not
    /// contribute cached cube normalisations or verdicts to any later query.
    /// The checkpoint prefix itself (`keep_len` nodes) is untouched: its
    /// formulas predate the changed element, so its cached analyses stay
    /// valid and keep being shared.
    ///
    /// Nodes are immutable, so a node that is *only* reachable from dropped
    /// states dies with them anyway; the explicit clear covers stale nodes
    /// kept alive by lingering result snapshots. Per-worker solver memos keyed
    /// on node ids are not affected — the service never reuses a `Solver`
    /// across a delta, which this hook's contract documents.
    pub fn invalidate_deeper_than(&self, keep_len: usize) -> usize {
        let mut cleared = 0;
        let mut cur = self.0.as_deref();
        while let Some(node) = cur {
            if node.len <= keep_len {
                break;
            }
            {
                let mut cache = node
                    .cache
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                if cache.cubes.is_some() || cache.result.is_some() {
                    cleared += 1;
                }
                *cache = NodeCache::default();
            }
            cur = node.parent.0.as_deref();
        }
        cleared
    }
}

/// Iterator over a path condition's conjuncts, newest first.
pub struct PathIter<'a>(Option<&'a PathNode>);

impl<'a> Iterator for PathIter<'a> {
    type Item = &'a Formula;

    fn next(&mut self) -> Option<&'a Formula> {
        let node = self.0?;
        self.0 = node.parent.0.as_deref();
        Some(&node.formula)
    }
}

impl Drop for PathCond {
    /// Unlinks the chain iteratively: the naive recursive drop of a long
    /// cons-list (one `Drop` frame per node) overflows the stack on the
    /// thousand-conjunct conditions produced by basic switch/router models.
    fn drop(&mut self) {
        let mut cur = self.0.take();
        while let Some(node) = cur {
            match Arc::try_unwrap(node) {
                // Sole owner: steal the parent link and keep unlinking.
                Ok(mut owned) => cur = owned.parent.0.take(),
                // Still shared: the other owners keep the rest alive.
                Err(_) => break,
            }
        }
    }
}

impl PartialEq for PathCond {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        let (mut a, mut b) = (self.0.as_deref(), other.0.as_deref());
        while let (Some(x), Some(y)) = (a, b) {
            // Shared suffix (common fork ancestor): equal by construction.
            if std::ptr::eq(x, y) {
                return true;
            }
            // Same interned content ⇒ same conjunct sequence, even across
            // independently built chains.
            if x.content == y.content {
                return true;
            }
            if x.formula != y.formula {
                return false;
            }
            a = x.parent.0.as_deref();
            b = y.parent.0.as_deref();
        }
        true
    }
}

impl Serialize for PathCond {
    fn to_content(&self) -> Content {
        Content::Seq(
            self.conjuncts()
                .into_iter()
                .map(Serialize::to_content)
                .collect(),
        )
    }
}

impl<'de> Deserialize<'de> for PathCond {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let formulas = Vec::<Formula>::deserialize(deserializer)?;
        let mut cond = PathCond::empty();
        for f in formulas {
            if f == Formula::True {
                return Err(D::Error::custom("path condition may not contain `true`"));
            }
            cond = cond.push(f);
        }
        Ok(cond)
    }
}

impl FromIterator<Formula> for PathCond {
    fn from_iter<T: IntoIterator<Item = Formula>>(iter: T) -> Self {
        iter.into_iter()
            .fold(PathCond::empty(), |cond, f| cond.push(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::CmpOp;
    use crate::term::SymVar;

    fn v(id: u64) -> SymVar {
        SymVar::new(id, 8)
    }

    #[test]
    fn push_shares_the_prefix() {
        let base = PathCond::empty().push(Formula::eq_const(v(0), 1));
        let a = base.push(Formula::eq_const(v(1), 2));
        let b = base.push(Formula::eq_const(v(1), 3));
        assert_eq!(base.len(), 1);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        // Both extensions share the base node.
        assert!(std::ptr::eq(
            Arc::as_ptr(a.node().unwrap().parent().node().unwrap()),
            Arc::as_ptr(b.node().unwrap().parent().node().unwrap()),
        ));
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn true_is_absorbed_and_materialisation_preserves_order() {
        let cond = PathCond::empty()
            .push(Formula::eq_const(v(0), 1))
            .push(Formula::True)
            .push(Formula::cmp_const(CmpOp::Ge, v(1), 5));
        assert_eq!(cond.len(), 2);
        assert_eq!(cond.atom_count(), 2);
        assert_eq!(
            cond.to_formula(),
            Formula::and(vec![
                Formula::eq_const(v(0), 1),
                Formula::cmp_const(CmpOp::Ge, v(1), 5),
            ])
        );
        assert_eq!(PathCond::empty().to_formula(), Formula::True);
    }

    #[test]
    fn fingerprints_depend_only_on_content() {
        let parts = [
            Formula::eq_const(v(40), 1),
            Formula::cmp_const(CmpOp::Lt, v(41), 9),
        ];
        let a: PathCond = parts.iter().cloned().collect();
        let b: PathCond = parts.iter().cloned().collect();
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), PathCond::empty().fingerprint());
        assert_eq!(PathCond::empty().fingerprint(), fingerprint::EMPTY_PATH_FP);
        // Order is significant: swapped conjuncts are a different sequence.
        let swapped: PathCond = parts.iter().rev().cloned().collect();
        assert_ne!(a.fingerprint(), swapped.fingerprint());
        // The prefix fingerprint is the parent node's fingerprint.
        assert_eq!(
            a.node().unwrap().parent().fingerprint(),
            PathCond::empty().push(parts[0].clone()).fingerprint()
        );
    }

    #[test]
    fn equality_is_structural() {
        let parts = [
            Formula::eq_const(v(0), 1),
            Formula::cmp_const(CmpOp::Lt, v(1), 9),
        ];
        let a: PathCond = parts.iter().cloned().collect();
        let b: PathCond = parts.iter().cloned().collect();
        assert_eq!(a, b); // distinct nodes, equal content
        assert_ne!(a, PathCond::empty());
        assert_ne!(a, PathCond::empty().push(parts[0].clone()));
    }

    #[test]
    fn serde_roundtrips_in_insertion_order() {
        let cond = PathCond::empty()
            .push(Formula::eq_const(v(0), 1))
            .push(Formula::ne_const(v(1), 2));
        let content = cond.to_content();
        let back: PathCond = serde::from_content(content.clone()).unwrap();
        assert_eq!(back, cond);
        assert_eq!(back.to_content(), content);
    }

    #[test]
    fn invalidate_deeper_than_clears_only_deep_caches() {
        let base = PathCond::empty().push(Formula::eq_const(v(0), 1));
        let deep = base
            .push(Formula::eq_const(v(1), 2))
            .push(Formula::eq_const(v(2), 3));
        // Simulate a solver having cached an analysis on every node.
        let mut cur = deep.node().map(|n| n.as_ref());
        while let Some(node) = cur {
            node.cache.lock().unwrap().result = Some(SolverResult::Unsat);
            cur = node.parent().node().map(|n| n.as_ref());
        }
        // Keeping the one-conjunct prefix clears the two deeper nodes only.
        assert_eq!(deep.invalidate_deeper_than(1), 2);
        assert!(base.node().unwrap().cache.lock().unwrap().result.is_some());
        assert!(deep.node().unwrap().cache.lock().unwrap().result.is_none());
        // A second sweep finds nothing left to clear.
        assert_eq!(deep.invalidate_deeper_than(1), 0);
        // Clearing everything reaches the base node too.
        assert_eq!(deep.invalidate_deeper_than(0), 1);
        assert!(base.node().unwrap().cache.lock().unwrap().result.is_none());
    }

    #[test]
    fn long_chains_drop_without_overflowing() {
        let mut cond = PathCond::empty();
        for i in 0..200_000u64 {
            cond = cond.push(Formula::ne_const(v(i % 4), i));
        }
        assert_eq!(cond.len(), 200_000);
        drop(cond);
    }
}
