//! Stable structural fingerprints of solver values.
//!
//! The interning layer ([`crate::intern`]) hands out process-local ids: fast,
//! compact, and meaningless outside the process that allocated them. The
//! persistent cache ([`crate::cache`]) needs the opposite — a key that names
//! the *content* of a formula, path condition, or interval set the same way in
//! every run, forever. This module computes that key: a canonical recursive
//! 128-bit hash over the value's structure, with every variant, operator, and
//! field length tagged so that distinct shapes can never collide by
//! concatenation ambiguity (`And[a, b]` vs `And[ab]`, `Cmp` vs `PrefixMatch`,
//! and so on).
//!
//! # Stability argument
//!
//! A fingerprint is a pure function of:
//!
//! * fixed integer tags chosen in this file (one per enum variant / domain),
//! * the literal field values of the hashed structure (`VarId` numbers,
//!   widths, constants, interval endpoints), written in a fixed order, and
//! * [`FP_VERSION`], bumped whenever the traversal or the tag assignment
//!   changes.
//!
//! Nothing process-local — interner ids, `Arc` addresses, hash-map iteration
//! order — ever enters the stream (`Cube::domains` is a `BTreeMap`, so its
//! iteration order is value-determined). Two processes that build structurally
//! equal values therefore compute bit-identical fingerprints, which is what
//! lets a verdict stored by yesterday's run answer today's query. Keys that
//! must also depend on solver behaviour mix in [`config_fp`], so changing any
//! verdict-affecting `SolverConfig` knob silently invalidates every stored
//! entry (old keys simply stop matching).
//!
//! Fingerprints are 128 bits from two independently seeded 64-bit streams:
//! with ~2^64 distinct values stored a collision has probability ~2^-64 —
//! negligible against the store sizes this suite produces (millions of
//! records).
//!
//! The expensive traversal runs once per interned node:
//! [`Interned::fingerprint_or`](crate::intern::Interned::fingerprint_or)
//! caches the result next to the process-local id, and
//! [`PathCond`](crate::path::PathCond) chains node fingerprints incrementally
//! (`fp(P ∧ c) = combine(NODE, fp(P), fp(c))`), so extending a path costs one
//! constant-time mix, not a re-walk of the prefix.

use crate::cube::{Cube, Literal};
use crate::formula::{CmpOp, Formula};
use crate::interval::IntervalSet;
use crate::term::{SymVar, Term};

/// Version of the fingerprint scheme. Mixed into [`config_fp`] (and therefore
/// into every on-disk key): bump it whenever the traversal order, the tags, or
/// the mixing function change, and every stale record degrades to a miss.
pub const FP_VERSION: u64 = 1;

/// Fingerprint of the empty path condition (no conjuncts). An arbitrary fixed
/// constant — it only needs to be stable and distinct from real chain values,
/// which all pass through the [`combine`] finalizer.
pub const EMPTY_PATH_FP: u128 = 0x5106_79a1_04f2_93d7_8ba4_6e0c_21d5_37fb;

/// Domain tag: extending a path-condition chain by one conjunct.
pub const DOMAIN_PATH_NODE: u64 = 1;
/// Domain tag: `check` verdicts on a materialised formula.
pub const DOMAIN_CHECK: u64 = 2;
/// Domain tag: `check_path` verdicts on a whole path condition.
pub const DOMAIN_PATH: u64 = 3;
/// Domain tag: `check_assuming` verdicts (path condition plus one extra
/// conjunct).
pub const DOMAIN_ASSUMING: u64 = 4;
/// Domain tag: `feasible_values_path` projections (path condition plus the
/// projected variable).
pub const DOMAIN_PROJECTION: u64 = 5;
/// Domain tag: counterexample-cache entries (sets of conjunct fingerprints).
pub const DOMAIN_CEX: u64 = 6;

// Seeds and multipliers of the two streams: the 64-bit FNV offset basis /
// prime for stream A, an odd golden-ratio constant for stream B.
const SEED_A: u64 = 0xcbf2_9ce4_8422_2325;
const SEED_B: u64 = 0x6c62_272e_07bb_0142;
const PRIME_A: u64 = 0x0000_0100_0000_01b3;
const PRIME_B: u64 = 0x9e37_79b9_7f4a_7c15;

/// SplitMix64 finalizer: a fixed bijective scrambler with good avalanche,
/// used to decorrelate the accumulator states at the end of a hash.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Incremental fingerprint hasher: two independently seeded 64-bit streams
/// folded into a `u128` by [`FpHasher::finish`]. Deterministic across
/// processes and platforms — no randomized state, no pointer-derived input.
#[derive(Clone, Copy, Debug)]
pub struct FpHasher {
    a: u64,
    b: u64,
}

impl FpHasher {
    /// A hasher seeded with a domain `tag`, so values hashed under different
    /// domains occupy disjoint key spaces.
    pub fn new(tag: u64) -> FpHasher {
        let mut h = FpHasher {
            a: SEED_A,
            b: SEED_B,
        };
        h.write_u64(tag);
        h
    }

    /// Mixes one 64-bit word into both streams.
    pub fn write_u64(&mut self, x: u64) {
        self.a = (self.a ^ x).wrapping_mul(PRIME_A).rotate_left(27);
        self.b = (self.b ^ x.rotate_left(32))
            .wrapping_mul(PRIME_B)
            .rotate_left(31);
    }

    /// Mixes a signed 128-bit value (as two words, low then high).
    pub fn write_i128(&mut self, x: i128) {
        let u = x as u128;
        self.write_u64(u as u64);
        self.write_u64((u >> 64) as u64);
    }

    /// Mixes a 128-bit fingerprint produced by another hasher.
    pub fn write_fp(&mut self, fp: u128) {
        self.write_u64(fp as u64);
        self.write_u64((fp >> 64) as u64);
    }

    /// Finalizes both streams into a 128-bit fingerprint.
    pub fn finish(&self) -> u128 {
        let hi = splitmix64(self.a ^ self.b.rotate_left(32));
        let lo = splitmix64(self.b.wrapping_add(splitmix64(self.a)));
        ((hi as u128) << 64) | lo as u128
    }
}

fn cmp_op_tag(op: CmpOp) -> u64 {
    match op {
        CmpOp::Eq => 1,
        CmpOp::Ne => 2,
        CmpOp::Lt => 3,
        CmpOp::Le => 4,
        CmpOp::Gt => 5,
        CmpOp::Ge => 6,
    }
}

fn write_var(h: &mut FpHasher, var: SymVar) {
    h.write_u64(var.id.0);
    h.write_u64(var.width as u64);
}

fn write_term(h: &mut FpHasher, term: &Term) {
    match term {
        Term::Const(c) => {
            h.write_u64(1);
            h.write_i128(*c);
        }
        Term::Var { var, offset } => {
            h.write_u64(2);
            write_var(h, *var);
            h.write_i128(*offset);
        }
    }
}

fn write_formula(h: &mut FpHasher, formula: &Formula) {
    match formula {
        Formula::True => h.write_u64(1),
        Formula::False => h.write_u64(2),
        Formula::Cmp { op, lhs, rhs } => {
            h.write_u64(3);
            h.write_u64(cmp_op_tag(*op));
            write_term(h, lhs);
            write_term(h, rhs);
        }
        Formula::PrefixMatch {
            var,
            value,
            prefix_len,
        } => {
            h.write_u64(4);
            write_var(h, *var);
            h.write_u64(*value);
            h.write_u64(*prefix_len as u64);
        }
        Formula::And(children) => {
            h.write_u64(5);
            h.write_u64(children.len() as u64);
            for child in children.iter() {
                write_formula(h, child);
            }
        }
        Formula::Or(children) => {
            h.write_u64(6);
            h.write_u64(children.len() as u64);
            for child in children.iter() {
                write_formula(h, child);
            }
        }
        Formula::Not(inner) => {
            h.write_u64(7);
            write_formula(h, inner);
        }
    }
}

fn write_interval(h: &mut FpHasher, set: &IntervalSet) {
    let ranges = set.as_slice();
    h.write_u64(ranges.len() as u64);
    for (lo, hi) in ranges {
        h.write_i128(*lo);
        h.write_i128(*hi);
    }
}

/// Canonical recursive fingerprint of a formula. Stable across processes;
/// child order is significant (the engine's constructors already canonicalise
/// child order, so structurally equal formulas hash equal).
pub fn formula_fp(formula: &Formula) -> u128 {
    let mut h = FpHasher::new(0x10);
    write_formula(&mut h, formula);
    h.finish()
}

/// Fingerprint of a symbolic variable (id plus width).
pub fn var_fp(var: SymVar) -> u128 {
    let mut h = FpHasher::new(0x11);
    write_var(&mut h, var);
    h.finish()
}

/// Fingerprint of a canonical interval set, over its sorted range slice.
pub fn interval_fp(set: &IntervalSet) -> u128 {
    let mut h = FpHasher::new(0x12);
    write_interval(&mut h, set);
    h.finish()
}

/// Fingerprint of a cube: its per-variable domains (in `BTreeMap` order, i.e.
/// value order) followed by its cross-variable literals in insertion order.
pub fn cube_fp(cube: &Cube) -> u128 {
    let mut h = FpHasher::new(0x13);
    h.write_u64(cube.domains.len() as u64);
    for (var, set) in &cube.domains {
        write_var(&mut h, *var);
        write_interval(&mut h, set);
    }
    h.write_u64(cube.cross.len() as u64);
    for literal in &cube.cross {
        match literal {
            Literal::Domain { var, set } => {
                h.write_u64(1);
                write_var(&mut h, *var);
                write_interval(&mut h, set);
            }
            Literal::Cross { op, lhs, rhs } => {
                h.write_u64(2);
                h.write_u64(cmp_op_tag(*op));
                write_var(&mut h, lhs.0);
                h.write_i128(lhs.1);
                write_var(&mut h, rhs.0);
                h.write_i128(rhs.1);
            }
        }
    }
    h.finish()
}

/// Fingerprint of the verdict-affecting `SolverConfig` knobs plus
/// [`FP_VERSION`]. Mixed into every persistent key, so a config change (or a
/// fingerprint-scheme bump) invalidates stored entries by key mismatch rather
/// than by any explicit migration.
pub fn config_fp(
    max_cubes: usize,
    max_model_attempts: usize,
    max_propagation_rounds: usize,
    samples_per_var: usize,
) -> u128 {
    let mut h = FpHasher::new(0x14);
    h.write_u64(FP_VERSION);
    h.write_u64(max_cubes as u64);
    h.write_u64(max_model_attempts as u64);
    h.write_u64(max_propagation_rounds as u64);
    h.write_u64(samples_per_var as u64);
    h.finish()
}

/// Combines already-computed fingerprints under a domain tag. This is the one
/// way compound keys are built (path-node chaining, store keys), so the same
/// parts under different domains never collide.
pub fn combine(domain: u64, parts: &[u128]) -> u128 {
    let mut h = FpHasher::new(domain);
    h.write_u64(parts.len() as u64);
    for part in parts {
        h.write_fp(*part);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn v(id: u64) -> SymVar {
        SymVar::new(id, 16)
    }

    #[test]
    fn equal_structures_hash_equal_distinct_structures_differ() {
        let a = Formula::and(vec![
            Formula::eq_const(v(1), 10),
            Formula::cmp_const(CmpOp::Lt, v(2), 99),
        ]);
        let b = Formula::and(vec![
            Formula::eq_const(v(1), 10),
            Formula::cmp_const(CmpOp::Lt, v(2), 99),
        ]);
        assert_eq!(formula_fp(&a), formula_fp(&b));
        let c = Formula::and(vec![
            Formula::eq_const(v(1), 10),
            Formula::cmp_const(CmpOp::Le, v(2), 99),
        ]);
        assert_ne!(formula_fp(&a), formula_fp(&c));
        assert_ne!(formula_fp(&Formula::True), formula_fp(&Formula::False));
    }

    #[test]
    fn variant_tags_prevent_shape_confusion() {
        // An `And` of one child must not hash like the child itself.
        let child = Formula::eq_const(v(3), 7);
        let wrapped = Formula::And(std::sync::Arc::new(vec![child.clone()]));
        assert_ne!(formula_fp(&child), formula_fp(&wrapped));
        // A raw `Not` node differs from the `Ne` it is logically equivalent
        // to (the `Formula::not` smart constructor would fold the former into
        // the latter, but fingerprints are structural, not semantic).
        let not_eq = Formula::Not(std::sync::Arc::new(Formula::eq_const(v(3), 7)));
        let ne = Formula::ne_const(v(3), 7);
        assert_ne!(formula_fp(&not_eq), formula_fp(&ne));
    }

    #[test]
    fn terms_and_vars_are_fully_hashed() {
        // Same variable id, different width ⇒ different fingerprint.
        let narrow = Formula::eq_const(SymVar::new(5, 8), 1);
        let wide = Formula::eq_const(SymVar::new(5, 32), 1);
        assert_ne!(formula_fp(&narrow), formula_fp(&wide));
        // Offsets matter.
        let base = Formula::Cmp {
            op: CmpOp::Eq,
            lhs: Term::var(v(6)),
            rhs: Term::Const(0),
        };
        let offset = Formula::Cmp {
            op: CmpOp::Eq,
            lhs: Term::var(v(6)).plus(1),
            rhs: Term::Const(0),
        };
        assert_ne!(formula_fp(&base), formula_fp(&offset));
    }

    #[test]
    fn interval_fingerprints_follow_canonical_ranges() {
        let a = IntervalSet::from_ranges([(0, 5), (10, 20)]);
        let b = IntervalSet::from_ranges([(10, 20), (0, 5)]);
        // from_ranges normalises, so both sets are canonical and equal.
        assert_eq!(interval_fp(&a), interval_fp(&b));
        let c = IntervalSet::from_ranges([(0, 5), (10, 21)]);
        assert_ne!(interval_fp(&a), interval_fp(&c));
    }

    #[test]
    fn config_fp_covers_every_knob() {
        let base = config_fp(1 << 14, 4096, 64, 6);
        assert_ne!(base, config_fp(1 << 13, 4096, 64, 6));
        assert_ne!(base, config_fp(1 << 14, 4095, 64, 6));
        assert_ne!(base, config_fp(1 << 14, 4096, 63, 6));
        assert_ne!(base, config_fp(1 << 14, 4096, 64, 7));
        assert_eq!(base, config_fp(1 << 14, 4096, 64, 6));
    }

    #[test]
    fn combine_separates_domains_and_arity() {
        let x = formula_fp(&Formula::True);
        let y = formula_fp(&Formula::False);
        assert_ne!(
            combine(DOMAIN_PATH, &[x, y]),
            combine(DOMAIN_CHECK, &[x, y])
        );
        assert_ne!(
            combine(DOMAIN_PATH, &[x, y]),
            combine(DOMAIN_PATH, &[y, x]),
            "order is significant"
        );
        assert_ne!(
            combine(DOMAIN_PATH, &[x]),
            combine(DOMAIN_PATH, &[x, x]),
            "arity is significant"
        );
    }

    #[test]
    fn cube_fingerprints_cover_domains_and_cross_literals() {
        let mut a = Cube::default();
        a.restrict(v(1), IntervalSet::range(0, 9));
        let mut b = Cube::default();
        b.restrict(v(1), IntervalSet::range(0, 9));
        assert_eq!(cube_fp(&a), cube_fp(&b));
        b.add_cross(CmpOp::Lt, (v(1), 0), (v(2), 3));
        assert_ne!(cube_fp(&a), cube_fp(&b));
    }
}
