//! Interval sets over signed 128-bit integers.
//!
//! An [`IntervalSet`] is a finite union of disjoint, inclusive integer
//! intervals kept in sorted order. Boolean formulas over a *single* variable
//! are evaluated exactly into an interval set (equalities become points,
//! orderings become half-lines clipped to the variable domain, prefix matches
//! become aligned ranges), and conjunction / disjunction / negation of such
//! formulas become intersection / union / complement of the sets. This is what
//! lets the solver handle the enormous same-variable disjunctions produced by
//! switch MAC tables and router FIBs without any case splitting.
//!
//! # Memory layout
//!
//! The overwhelming majority of sets on the solver hot path come from
//! [`cmp_to_set`](crate::cube)-style lowering: a single point, a half-line, or
//! the two ranges of a `!=` — never more than two intervals. Those are stored
//! inline (no heap allocation at all). Sets with more than two intervals — the
//! 480k-point MAC disjunctions and 188.5k-prefix FIBs of the paper's `--full`
//! workloads — are stored behind an `Arc`, so cloning a cube that carries one
//! is a reference-count bump instead of a multi-megabyte `memcpy`.

use serde::{Content, Deserialize, Deserializer, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A set of integers represented as sorted, disjoint, inclusive intervals.
///
/// Up to two intervals are stored inline; larger sets share an `Arc`-backed
/// vector so clones are O(1). Equality, hashing and serialization all operate
/// on the logical range list, so the two representations are interchangeable
/// (a canonical set with ≤ 2 ranges is always stored inline).
#[derive(Clone)]
pub struct IntervalSet {
    repr: Repr,
}

#[derive(Clone)]
enum Repr {
    /// `len` live ranges in `ranges[..len]` (0, 1 or 2).
    Small {
        /// Number of live inline ranges.
        len: u8,
        /// Inline storage; slots at `len..` are `(0, 0)` padding.
        ranges: [(i128, i128); 2],
    },
    /// More than two ranges, shared so that clones are reference bumps.
    Big(Arc<Vec<(i128, i128)>>),
}

impl IntervalSet {
    /// Wraps a **sorted, disjoint, non-adjacent** range list in the canonical
    /// representation: inline when it fits, `Arc`-shared otherwise.
    fn from_sorted(ranges: Vec<(i128, i128)>) -> Self {
        match ranges.len() {
            0 => IntervalSet {
                repr: Repr::Small {
                    len: 0,
                    ranges: [(0, 0); 2],
                },
            },
            1 => IntervalSet {
                repr: Repr::Small {
                    len: 1,
                    ranges: [ranges[0], (0, 0)],
                },
            },
            2 => IntervalSet {
                repr: Repr::Small {
                    len: 2,
                    ranges: [ranges[0], ranges[1]],
                },
            },
            _ => IntervalSet {
                repr: Repr::Big(Arc::new(ranges)),
            },
        }
    }

    /// The sorted, disjoint range list as a slice (the logical value).
    pub fn as_slice(&self) -> &[(i128, i128)] {
        match &self.repr {
            Repr::Small { len, ranges } => &ranges[..*len as usize],
            Repr::Big(v) => v,
        }
    }

    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet::from_sorted(Vec::new())
    }

    /// The set containing every integer in `lo..=hi`. Returns the empty set if
    /// `lo > hi`.
    pub fn range(lo: i128, hi: i128) -> Self {
        if lo > hi {
            IntervalSet::empty()
        } else {
            IntervalSet::from_sorted(vec![(lo, hi)])
        }
    }

    /// The singleton set `{value}`.
    pub fn point(value: i128) -> Self {
        IntervalSet::range(value, value)
    }

    /// Builds a set from an arbitrary iterator of inclusive ranges.
    pub fn from_ranges(iter: impl IntoIterator<Item = (i128, i128)>) -> Self {
        let mut ranges: Vec<(i128, i128)> = iter.into_iter().filter(|(lo, hi)| lo <= hi).collect();
        ranges.sort_unstable();
        let mut out: Vec<(i128, i128)> = Vec::with_capacity(ranges.len());
        for (lo, hi) in ranges {
            match out.last_mut() {
                Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                    if hi > *prev_hi {
                        *prev_hi = hi;
                    }
                }
                _ => out.push((lo, hi)),
            }
        }
        IntervalSet::from_sorted(out)
    }

    /// Returns true if the set contains no integers.
    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    /// Number of disjoint intervals (not the number of integers).
    pub fn interval_count(&self) -> usize {
        self.as_slice().len()
    }

    /// Total number of integers in the set (saturating).
    pub fn cardinality(&self) -> u128 {
        self.as_slice()
            .iter()
            .map(|(lo, hi)| (hi - lo) as u128 + 1)
            .fold(0u128, |acc, n| acc.saturating_add(n))
    }

    /// Smallest element, if any.
    pub fn min(&self) -> Option<i128> {
        self.as_slice().first().map(|(lo, _)| *lo)
    }

    /// Largest element, if any.
    pub fn max(&self) -> Option<i128> {
        self.as_slice().last().map(|(_, hi)| *hi)
    }

    /// Returns true if `value` is in the set.
    pub fn contains(&self, value: i128) -> bool {
        self.as_slice()
            .binary_search_by(|(lo, hi)| {
                if value < *lo {
                    std::cmp::Ordering::Greater
                } else if value > *hi {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }

    /// Iterates over the disjoint inclusive intervals.
    pub fn iter_ranges(&self) -> impl Iterator<Item = (i128, i128)> + '_ {
        self.as_slice().iter().copied()
    }

    /// True when both sets share the same `Arc`-backed storage (implies
    /// equality; the converse need not hold). Used as an O(1) fast path.
    pub fn ptr_eq(&self, other: &IntervalSet) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Big(a), Repr::Big(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Union of two sets.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        if self.is_empty() || self.ptr_eq(other) {
            return other.clone();
        }
        if other.is_empty() {
            return self.clone();
        }
        let (sa, sb) = (self.as_slice(), other.as_slice());
        // Merge the two sorted range lists, coalescing overlapping or adjacent
        // intervals as we go.
        let mut out: Vec<(i128, i128)> = Vec::with_capacity(sa.len() + sb.len());
        let mut a = sa.iter().peekable();
        let mut b = sb.iter().peekable();
        let push = |out: &mut Vec<(i128, i128)>, (lo, hi): (i128, i128)| match out.last_mut() {
            Some((_, prev_hi)) if lo <= prev_hi.saturating_add(1) => {
                if hi > *prev_hi {
                    *prev_hi = hi;
                }
            }
            _ => out.push((lo, hi)),
        };
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&ra), Some(&&rb)) => {
                    if ra.0 <= rb.0 {
                        push(&mut out, ra);
                        a.next();
                    } else {
                        push(&mut out, rb);
                        b.next();
                    }
                }
                (Some(&&ra), None) => {
                    push(&mut out, ra);
                    a.next();
                }
                (None, Some(&&rb)) => {
                    push(&mut out, rb);
                    b.next();
                }
                (None, None) => break,
            }
        }
        IntervalSet::from_sorted(out)
    }

    /// Intersection of two sets.
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        if self.ptr_eq(other) {
            return self.clone();
        }
        let (sa, sb) = (self.as_slice(), other.as_slice());
        let mut out = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        while i < sa.len() && j < sb.len() {
            let (alo, ahi) = sa[i];
            let (blo, bhi) = sb[j];
            let lo = alo.max(blo);
            let hi = ahi.min(bhi);
            if lo <= hi {
                out.push((lo, hi));
            }
            if ahi < bhi {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet::from_sorted(out)
    }

    /// Complement of the set within the inclusive universe `[lo, hi]`.
    pub fn complement(&self, lo: i128, hi: i128) -> IntervalSet {
        if lo > hi {
            return IntervalSet::empty();
        }
        let mut out = Vec::new();
        let mut cursor = lo;
        for &(rlo, rhi) in self.as_slice() {
            if rhi < lo {
                continue;
            }
            if rlo > hi {
                break;
            }
            if rlo > cursor {
                out.push((cursor, rlo - 1));
            }
            cursor = cursor.max(rhi.saturating_add(1));
            if cursor > hi {
                break;
            }
        }
        if cursor <= hi {
            out.push((cursor, hi));
        }
        IntervalSet::from_sorted(out)
    }

    /// Set difference `self \ other` within no particular universe.
    pub fn difference(&self, other: &IntervalSet) -> IntervalSet {
        if self.is_empty() || other.is_empty() {
            return self.clone();
        }
        if self.ptr_eq(other) {
            return IntervalSet::empty();
        }
        let (lo, hi) = (self.min().unwrap(), self.max().unwrap());
        self.intersect(&other.complement(lo, hi))
    }

    /// Shifts every element of the set by `delta` (used to rewrite
    /// `var + offset ⋈ c` into a constraint on `var` itself).
    pub fn shift(&self, delta: i128) -> IntervalSet {
        if delta == 0 {
            return self.clone();
        }
        IntervalSet::from_sorted(
            self.as_slice()
                .iter()
                .map(|(lo, hi)| (lo + delta, hi + delta))
                .collect(),
        )
    }

    /// Removes a single point from the set.
    pub fn remove_point(&self, value: i128) -> IntervalSet {
        self.difference(&IntervalSet::point(value))
    }

    /// Returns true if `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &IntervalSet) -> bool {
        self.difference(other).is_empty()
    }

    /// Picks up to `n` sample elements spread across the set (always including
    /// the minimum and maximum when present). Used by the model search.
    pub fn samples(&self, n: usize) -> Vec<i128> {
        let mut out = Vec::new();
        if self.is_empty() || n == 0 {
            return out;
        }
        out.push(self.min().unwrap());
        if n > 1 {
            let max = self.max().unwrap();
            if max != out[0] {
                out.push(max);
            }
        }
        // Take the first element of each interval until we have enough.
        for (lo, hi) in self.iter_ranges() {
            if out.len() >= n {
                break;
            }
            if !out.contains(&lo) {
                out.push(lo);
            }
            if out.len() < n && hi != lo && !out.contains(&hi) {
                out.push(hi);
            }
        }
        out
    }
}

impl Default for IntervalSet {
    fn default() -> Self {
        IntervalSet::empty()
    }
}

impl PartialEq for IntervalSet {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

impl Eq for IntervalSet {}

impl Hash for IntervalSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the logical range list so Small and Big representations of the
        // same set (which canonically never coexist, but could via deserialize
        // edge cases) hash identically, and so the hash matches what the old
        // `struct { ranges: Vec<..> }` derive produced.
        self.as_slice().hash(state);
    }
}

// Serialization stays byte-compatible with the previous derived impl for
// `struct IntervalSet { ranges: Vec<(i128, i128)> }`: a single-entry map.
impl Serialize for IntervalSet {
    fn to_content(&self) -> Content {
        let ranges: Vec<(i128, i128)> = self.as_slice().to_vec();
        Content::Map(vec![(String::from("ranges"), ranges.to_content())])
    }
}

impl<'de> Deserialize<'de> for IntervalSet {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        use serde::Error as _;
        match deserializer.deserialize_content()? {
            Content::Map(mut entries) => {
                let ranges = serde::take_field(&mut entries, "ranges")
                    .ok_or_else(|| D::Error::custom("missing field ranges for IntervalSet"))?;
                let ranges: Vec<(i128, i128)> = serde::from_content(ranges)
                    .map_err(|e| D::Error::custom(format!("IntervalSet ranges: {e:?}")))?;
                // Re-canonicalize defensively: hand-edited input may carry
                // unsorted or overlapping ranges.
                Ok(IntervalSet::from_ranges(ranges))
            }
            other => Err(D::Error::custom(format!(
                "expected map for IntervalSet, found {other:?}"
            ))),
        }
    }
}

impl fmt::Debug for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (lo, hi)) in self.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            if lo == hi {
                write!(f, "{lo}")?;
            } else {
                write!(f, "[{lo},{hi}]")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_point() {
        assert!(IntervalSet::empty().is_empty());
        assert!(IntervalSet::range(5, 4).is_empty());
        let p = IntervalSet::point(7);
        assert!(p.contains(7));
        assert!(!p.contains(6));
        assert_eq!(p.cardinality(), 1);
    }

    #[test]
    fn from_ranges_merges_overlaps_and_adjacent() {
        let s = IntervalSet::from_ranges(vec![(1, 3), (4, 6), (10, 12), (11, 15), (20, 20)]);
        assert_eq!(
            s.iter_ranges().collect::<Vec<_>>(),
            vec![(1, 6), (10, 15), (20, 20)]
        );
    }

    #[test]
    fn union_merges() {
        let a = IntervalSet::from_ranges(vec![(0, 5), (10, 15)]);
        let b = IntervalSet::from_ranges(vec![(4, 11), (20, 25)]);
        let u = a.union(&b);
        assert_eq!(u.iter_ranges().collect::<Vec<_>>(), vec![(0, 15), (20, 25)]);
        assert_eq!(a.union(&IntervalSet::empty()), a);
        assert_eq!(IntervalSet::empty().union(&b), b);
    }

    #[test]
    fn intersect_clips() {
        let a = IntervalSet::from_ranges(vec![(0, 10), (20, 30)]);
        let b = IntervalSet::from_ranges(vec![(5, 25)]);
        let i = a.intersect(&b);
        assert_eq!(i.iter_ranges().collect::<Vec<_>>(), vec![(5, 10), (20, 25)]);
        assert!(a.intersect(&IntervalSet::empty()).is_empty());
    }

    #[test]
    fn complement_within_universe() {
        let a = IntervalSet::from_ranges(vec![(2, 3), (6, 8)]);
        let c = a.complement(0, 10);
        assert_eq!(
            c.iter_ranges().collect::<Vec<_>>(),
            vec![(0, 1), (4, 5), (9, 10)]
        );
        assert_eq!(
            IntervalSet::empty()
                .complement(0, 3)
                .iter_ranges()
                .collect::<Vec<_>>(),
            vec![(0, 3)]
        );
        let full = IntervalSet::range(0, 10);
        assert!(full.complement(0, 10).is_empty());
    }

    #[test]
    fn difference_and_subset() {
        let a = IntervalSet::range(0, 10);
        let b = IntervalSet::range(3, 5);
        let d = a.difference(&b);
        assert_eq!(d.iter_ranges().collect::<Vec<_>>(), vec![(0, 2), (6, 10)]);
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(IntervalSet::empty().is_subset_of(&b));
    }

    #[test]
    fn shift_moves_all_ranges() {
        let a = IntervalSet::from_ranges(vec![(0, 2), (10, 11)]);
        let s = a.shift(-5);
        assert_eq!(s.iter_ranges().collect::<Vec<_>>(), vec![(-5, -3), (5, 6)]);
    }

    #[test]
    fn remove_point_splits_interval() {
        let a = IntervalSet::range(0, 4);
        let r = a.remove_point(2);
        assert_eq!(r.iter_ranges().collect::<Vec<_>>(), vec![(0, 1), (3, 4)]);
        assert_eq!(a.remove_point(9), a);
    }

    #[test]
    fn samples_cover_extremes() {
        let a = IntervalSet::from_ranges(vec![(1, 3), (10, 20), (30, 30)]);
        let s = a.samples(4);
        assert!(s.contains(&1));
        assert!(s.contains(&30));
        assert!(s.len() <= 4);
        assert!(IntervalSet::empty().samples(3).is_empty());
    }

    #[test]
    fn cardinality_saturates() {
        let a = IntervalSet::range(0, i128::MAX - 1);
        assert!(a.cardinality() > 0);
    }

    #[test]
    fn large_point_set_operations() {
        // Mimics an egress switch constraint: thousands of individual MAC points.
        let points: Vec<(i128, i128)> = (0..5000).map(|i| (i * 2, i * 2)).collect();
        let s = IntervalSet::from_ranges(points);
        assert_eq!(s.cardinality(), 5000);
        assert!(s.contains(4998));
        assert!(!s.contains(4999));
        let c = s.complement(0, 9999);
        assert_eq!(c.cardinality(), 5000);
        assert!(s.intersect(&c).is_empty());
        assert_eq!(s.union(&c), IntervalSet::range(0, 9999));
    }

    #[test]
    fn small_sets_are_inline_and_big_clones_share_storage() {
        // ≤ 2 ranges: inline representation, no Arc involved.
        let small = IntervalSet::from_ranges(vec![(0, 3), (10, 12)]);
        assert!(!small.ptr_eq(&small.clone()));
        assert_eq!(small, small.clone());
        // > 2 ranges: Arc-backed, clones share storage.
        let big = IntervalSet::from_ranges(vec![(0, 0), (2, 2), (4, 4)]);
        let copy = big.clone();
        assert!(big.ptr_eq(&copy));
        assert_eq!(big, copy);
        // Equality still holds across distinct allocations.
        let rebuilt = IntervalSet::from_ranges(vec![(0, 0), (2, 2), (4, 4)]);
        assert!(!big.ptr_eq(&rebuilt));
        assert_eq!(big, rebuilt);
    }

    #[test]
    fn serde_shape_matches_the_old_derive() {
        use serde::Serialize as _;
        // The manual impl must keep producing the single-entry map the old
        // `#[derive(Serialize)]` on `{ ranges: Vec<(i128, i128)> }` produced.
        let s = IntervalSet::from_ranges(vec![(1, 2), (5, 9), (20, 20)]);
        let content = s.to_content();
        let expected = Content::Map(vec![(
            String::from("ranges"),
            vec![(1i128, 2i128), (5, 9), (20, 20)].to_content(),
        )]);
        assert_eq!(content, expected);
        let back: IntervalSet = serde::from_content(content).expect("roundtrip");
        assert_eq!(back, s);
    }
}
