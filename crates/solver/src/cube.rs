//! Normalisation of formulas into cubes (conjunctions of literals).
//!
//! The key trick, which is what makes the switch/router models of the paper
//! cheap to check, is that any sub-formula mentioning a *single* variable is
//! evaluated exactly into an [`IntervalSet`] instead of being split into
//! cases. A disjunction of 480,000 MAC equalities therefore becomes one
//! [`Literal::Domain`] literal with 480,000 points, not 480,000 cubes.

use crate::formula::{CmpOp, Formula};
use crate::interval::IntervalSet;
use crate::term::{SymVar, Term};
use smallvec::SmallVec;
use std::collections::BTreeMap;

/// A single literal of a cube.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal {
    /// The variable's value must lie in the given set (already clipped to the
    /// variable's width domain).
    Domain {
        /// Constrained variable.
        var: SymVar,
        /// Allowed values.
        set: IntervalSet,
    },
    /// A comparison between two different variables (with offsets):
    /// `lhs.0 + lhs.1  op  rhs.0 + rhs.1`.
    Cross {
        /// Comparison operator.
        op: CmpOp,
        /// Left variable and offset.
        lhs: (SymVar, i128),
        /// Right variable and offset.
        rhs: (SymVar, i128),
    },
}

/// A conjunction of literals. An empty cube is trivially satisfiable.
#[derive(Clone, Debug, Default)]
pub struct Cube {
    /// Per-variable domain restrictions, merged by intersection.
    pub domains: BTreeMap<SymVar, IntervalSet>,
    /// Cross-variable comparison literals. Almost every cube carries zero or
    /// one of these (they only arise from genuine variable-to-variable
    /// comparisons, never from table lookups), so up to two are stored inline.
    pub cross: SmallVec<Literal, 2>,
    /// Set to true if a trivially-false literal was added.
    contradictory: bool,
}

impl Cube {
    /// Adds a domain restriction for `var`, intersecting with any existing one.
    pub fn restrict(&mut self, var: SymVar, set: IntervalSet) {
        let (lo, hi) = var.domain();
        let clipped = set.intersect(&IntervalSet::range(lo, hi));
        let entry = self
            .domains
            .entry(var)
            .or_insert_with(|| IntervalSet::range(lo, hi));
        *entry = entry.intersect(&clipped);
        if entry.is_empty() {
            self.contradictory = true;
        }
    }

    /// Adds a cross-variable literal.
    pub fn add_cross(&mut self, op: CmpOp, lhs: (SymVar, i128), rhs: (SymVar, i128)) {
        if lhs.0 == rhs.0 {
            // Same variable on both sides: the comparison is a constant.
            if !op.eval(lhs.1, rhs.1) {
                self.contradictory = true;
            }
            return;
        }
        self.cross.push(Literal::Cross { op, lhs, rhs });
    }

    /// Marks the cube as contradictory (contains `false`).
    pub fn mark_false(&mut self) {
        self.contradictory = true;
    }

    /// Returns true if the cube contains an obviously-false literal.
    pub fn is_contradictory(&self) -> bool {
        self.contradictory || self.domains.values().any(IntervalSet::is_empty)
    }

    /// Merges another cube into this one (conjunction).
    pub fn merge(&mut self, other: &Cube) {
        if other.contradictory {
            self.contradictory = true;
            return;
        }
        for (var, set) in &other.domains {
            self.restrict(*var, set.clone());
        }
        self.cross.extend(other.cross.iter().cloned());
    }
}

/// Error returned when normalisation would exceed the configured cube budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CubeOverflow {
    /// The budget that was exceeded.
    pub max_cubes: usize,
}

/// Converts a formula into a disjunction of cubes, with at most `max_cubes`
/// cubes. Returns an error if the budget would be exceeded, in which case the
/// solver reports `Unknown`.
pub fn to_cubes(formula: &Formula, max_cubes: usize) -> Result<Vec<Cube>, CubeOverflow> {
    // Fast path: formulas over zero or one variable are decided exactly.
    let vars = formula.variables();
    match vars.len() {
        0 => {
            return Ok(match eval_const(formula) {
                true => vec![Cube::default()],
                false => vec![],
            })
        }
        1 => {
            let var = *vars.iter().next().unwrap();
            let set = eval_single_var(formula, var);
            if set.is_empty() {
                return Ok(vec![]);
            }
            let mut cube = Cube::default();
            cube.restrict(var, set);
            return Ok(vec![cube]);
        }
        _ => {}
    }
    let cubes = build(formula, max_cubes)?;
    Ok(cubes
        .into_iter()
        .filter(|c| !c.is_contradictory())
        .collect())
}

/// Folds one more conjunct into an existing cube list — the incremental
/// counterpart of the `And` case of [`build`], used by the prefix-cached path
/// solver: the cubes of `P` are reused verbatim and only `part` is normalised.
/// `acc` must already be contradiction-free (as produced by [`to_cubes`] or a
/// previous `append_conjunct`).
pub(crate) fn append_conjunct(
    acc: &[Cube],
    part: &Formula,
    max_cubes: usize,
) -> Result<Vec<Cube>, CubeOverflow> {
    let part_cubes = build(part, max_cubes)?;
    if part_cubes.is_empty() {
        return Ok(Vec::new());
    }
    let mut out;
    if part_cubes.len() == 1 {
        out = acc.to_vec();
        for cube in &mut out {
            cube.merge(&part_cubes[0]);
        }
    } else {
        out = Vec::with_capacity(acc.len() * part_cubes.len());
        for a in acc {
            for b in &part_cubes {
                if out.len() >= max_cubes {
                    return Err(CubeOverflow { max_cubes });
                }
                let mut merged = a.clone();
                merged.merge(b);
                if !merged.is_contradictory() {
                    out.push(merged);
                }
            }
        }
    }
    out.retain(|c| !c.is_contradictory());
    Ok(out)
}

fn build(formula: &Formula, max_cubes: usize) -> Result<Vec<Cube>, CubeOverflow> {
    // Single-variable sub-formulas collapse to one literal.
    let vars = formula.variables();
    if vars.len() <= 1 {
        let mut cube = Cube::default();
        match vars.iter().next() {
            Some(&var) => {
                let set = eval_single_var(formula, var);
                if set.is_empty() {
                    return Ok(vec![]);
                }
                cube.restrict(var, set);
            }
            None => {
                if !eval_const(formula) {
                    return Ok(vec![]);
                }
            }
        }
        return Ok(vec![cube]);
    }

    match formula {
        Formula::True => Ok(vec![Cube::default()]),
        Formula::False => Ok(vec![]),
        Formula::Cmp { op, lhs, rhs } => {
            let mut cube = Cube::default();
            add_cmp(&mut cube, *op, *lhs, *rhs);
            Ok(if cube.is_contradictory() {
                vec![]
            } else {
                vec![cube]
            })
        }
        Formula::PrefixMatch { .. } => unreachable!("prefix match mentions one variable"),
        Formula::Not(inner) => build(&push_not(inner), max_cubes),
        Formula::And(parts) => {
            let mut acc: Vec<Cube> = vec![Cube::default()];
            for part in parts.iter() {
                let part_cubes = build(part, max_cubes)?;
                if part_cubes.is_empty() {
                    return Ok(vec![]);
                }
                if part_cubes.len() == 1 {
                    for cube in &mut acc {
                        cube.merge(&part_cubes[0]);
                    }
                } else {
                    let mut next = Vec::with_capacity(acc.len() * part_cubes.len());
                    for a in &acc {
                        for b in &part_cubes {
                            if next.len() >= max_cubes {
                                return Err(CubeOverflow { max_cubes });
                            }
                            let mut merged = a.clone();
                            merged.merge(b);
                            if !merged.is_contradictory() {
                                next.push(merged);
                            }
                        }
                    }
                    acc = next;
                }
                acc.retain(|c| !c.is_contradictory());
                if acc.is_empty() {
                    return Ok(vec![]);
                }
            }
            Ok(acc)
        }
        Formula::Or(parts) => {
            // Group children that each mention a single variable: per variable,
            // their union is one Domain literal (so one cube).
            let mut grouped: BTreeMap<SymVar, Vec<(i128, i128)>> = BTreeMap::new();
            let mut const_true = false;
            let mut rest: Vec<&Formula> = Vec::new();
            for part in parts.iter() {
                let pv = part.variables();
                match pv.len() {
                    0 => {
                        if eval_const(part) {
                            const_true = true;
                        }
                    }
                    1 => {
                        let var = *pv.iter().next().unwrap();
                        let set = eval_single_var(part, var);
                        grouped.entry(var).or_default().extend(set.iter_ranges());
                    }
                    _ => rest.push(part),
                }
            }
            if const_true {
                return Ok(vec![Cube::default()]);
            }
            let mut out: Vec<Cube> = Vec::new();
            for (var, ranges) in grouped {
                let set = IntervalSet::from_ranges(ranges);
                if set.is_empty() {
                    continue;
                }
                let mut cube = Cube::default();
                cube.restrict(var, set);
                out.push(cube);
            }
            for part in rest {
                let cubes = build(part, max_cubes)?;
                if out.len() + cubes.len() > max_cubes {
                    return Err(CubeOverflow { max_cubes });
                }
                out.extend(cubes);
            }
            Ok(out)
        }
    }
}

/// Adds a comparison atom to a cube, classifying it as a domain restriction
/// (one side constant) or a cross-variable literal.
fn add_cmp(cube: &mut Cube, op: CmpOp, lhs: Term, rhs: Term) {
    match (lhs, rhs) {
        (Term::Const(a), Term::Const(b)) => {
            if !op.eval(a, b) {
                cube.mark_false();
            }
        }
        (Term::Var { var, offset }, Term::Const(c)) => {
            cube.restrict(var, cmp_to_set(op, var, c - offset));
        }
        (Term::Const(c), Term::Var { var, offset }) => {
            cube.restrict(var, cmp_to_set(op.swap(), var, c - offset));
        }
        (
            Term::Var {
                var: va,
                offset: oa,
            },
            Term::Var {
                var: vb,
                offset: ob,
            },
        ) => {
            cube.add_cross(op, (va, oa), (vb, ob));
        }
    }
}

/// The set of values `x` of `var` with `x op bound`.
fn cmp_to_set(op: CmpOp, var: SymVar, bound: i128) -> IntervalSet {
    let (lo, hi) = var.domain();
    match op {
        CmpOp::Eq => IntervalSet::point(bound).intersect(&IntervalSet::range(lo, hi)),
        CmpOp::Ne => IntervalSet::range(lo, hi).remove_point(bound),
        CmpOp::Lt => IntervalSet::range(lo, hi.min(bound - 1)),
        CmpOp::Le => IntervalSet::range(lo, hi.min(bound)),
        CmpOp::Gt => IntervalSet::range(lo.max(bound + 1), hi),
        CmpOp::Ge => IntervalSet::range(lo.max(bound), hi),
    }
}

/// Exact evaluation of a formula that mentions at most the single variable
/// `var`, as the set of values of `var` satisfying it.
pub fn eval_single_var(formula: &Formula, var: SymVar) -> IntervalSet {
    let (lo, hi) = var.domain();
    let full = IntervalSet::range(lo, hi);
    match formula {
        Formula::True => full,
        Formula::False => IntervalSet::empty(),
        Formula::Cmp { op, lhs, rhs } => match (lhs, rhs) {
            (Term::Const(a), Term::Const(b)) => {
                if op.eval(*a, *b) {
                    full
                } else {
                    IntervalSet::empty()
                }
            }
            (Term::Var { offset, .. }, Term::Const(c)) => {
                cmp_to_set(*op, var, c - offset).intersect(&full)
            }
            (Term::Const(c), Term::Var { offset, .. }) => {
                cmp_to_set(op.swap(), var, c - offset).intersect(&full)
            }
            (Term::Var { offset: oa, .. }, Term::Var { offset: ob, .. }) => {
                // Both sides are the same variable (the caller guarantees only
                // one variable occurs), so the comparison is constant.
                if op.eval(*oa, *ob) {
                    full
                } else {
                    IntervalSet::empty()
                }
            }
        },
        Formula::PrefixMatch {
            value, prefix_len, ..
        } => prefix_to_set(var, *value, *prefix_len),
        Formula::And(parts) => parts
            .iter()
            .fold(full, |acc, p| acc.intersect(&eval_single_var(p, var))),
        Formula::Or(parts) => {
            // Collect the ranges of every disjunct and merge them in one pass:
            // an incremental fold of unions would be quadratic in the number of
            // disjuncts, which matters for 100k+-entry MAC-table constraints.
            let mut ranges = Vec::with_capacity(parts.len());
            for p in parts.iter() {
                ranges.extend(eval_single_var(p, var).iter_ranges());
            }
            IntervalSet::from_ranges(ranges)
        }
        Formula::Not(inner) => eval_single_var(inner, var).complement(lo, hi),
    }
}

/// The set of values of `var` whose top `prefix_len` bits match `value`.
pub fn prefix_to_set(var: SymVar, value: u64, prefix_len: u8) -> IntervalSet {
    let width = var.width;
    let plen = prefix_len.min(width);
    if plen == 0 {
        let (lo, hi) = var.domain();
        return IntervalSet::range(lo, hi);
    }
    let host_bits = width - plen;
    let max = var.max_value();
    let base = (value & max) >> host_bits << host_bits;
    let top = if host_bits >= 64 {
        u64::MAX
    } else {
        base | ((1u64 << host_bits) - 1)
    };
    IntervalSet::range(base as i128, top as i128)
}

fn eval_const(formula: &Formula) -> bool {
    formula
        .eval(&|_| None)
        .expect("formula without variables must evaluate")
}

/// Negation pushed one level down, used when normalising `Not` of a compound
/// formula (comparison atoms are already negated by [`Formula::not`]).
fn push_not(inner: &Formula) -> Formula {
    match inner {
        Formula::True => Formula::False,
        Formula::False => Formula::True,
        Formula::Cmp { op, lhs, rhs } => Formula::Cmp {
            op: op.negate(),
            lhs: *lhs,
            rhs: *rhs,
        },
        Formula::PrefixMatch { .. } => Formula::Not(std::sync::Arc::new(inner.clone())),
        Formula::And(parts) => Formula::or(parts.iter().cloned().map(Formula::not).collect()),
        Formula::Or(parts) => Formula::and(parts.iter().cloned().map(Formula::not).collect()),
        Formula::Not(f) => (**f).clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::Formula;

    fn v(id: u64, w: u8) -> SymVar {
        SymVar::new(id, w)
    }

    #[test]
    fn constant_formulas() {
        assert_eq!(to_cubes(&Formula::True, 10).unwrap().len(), 1);
        assert!(to_cubes(&Formula::False, 10).unwrap().is_empty());
    }

    #[test]
    fn single_var_or_is_one_cube() {
        let x = v(0, 48);
        let macs: Vec<Formula> = (0..10_000u64)
            .map(|m| Formula::eq_const(x, m * 7))
            .collect();
        let f = Formula::or(macs);
        let cubes = to_cubes(&f, 4).unwrap();
        assert_eq!(cubes.len(), 1);
        let set = &cubes[0].domains[&x];
        assert_eq!(set.cardinality(), 10_000);
    }

    #[test]
    fn negated_single_var_or() {
        let x = v(0, 8);
        let f = Formula::not(Formula::or(vec![
            Formula::eq_const(x, 3),
            Formula::eq_const(x, 5),
        ]));
        let cubes = to_cubes(&f, 4).unwrap();
        assert_eq!(cubes.len(), 1);
        let set = &cubes[0].domains[&x];
        assert!(!set.contains(3));
        assert!(!set.contains(5));
        assert!(set.contains(4));
        assert_eq!(set.cardinality(), 254);
    }

    #[test]
    fn prefix_match_to_set() {
        let ip = v(0, 32);
        let s = prefix_to_set(ip, 0x0a000000, 8);
        assert!(s.contains(0x0a000000));
        assert!(s.contains(0x0affffff));
        assert!(!s.contains(0x0b000000));
        assert_eq!(s.cardinality(), 1 << 24);
        // /32 is a point.
        let p = prefix_to_set(ip, 0xc0a80101, 32);
        assert_eq!(p.cardinality(), 1);
        // /0 is everything.
        let all = prefix_to_set(ip, 0, 0);
        assert_eq!(all.cardinality(), 1u128 << 32);
    }

    #[test]
    fn cross_variable_conjunction() {
        let x = v(0, 16);
        let y = v(1, 16);
        let f = Formula::and(vec![
            Formula::eq_const(x, 100),
            Formula::cmp(CmpOp::Eq, Term::var(y), Term::var(x).plus(1)),
        ]);
        let cubes = to_cubes(&f, 16).unwrap();
        assert_eq!(cubes.len(), 1);
        assert_eq!(cubes[0].cross.len(), 1);
        assert!(cubes[0].domains[&x].contains(100));
    }

    #[test]
    fn full_scale_mac_or_is_one_domain_literal() {
        // The module-doc claim at the paper's headline size: a disjunction of
        // 480,000 MAC equalities becomes one `Literal::Domain` with 480,000
        // points, not 480,000 cubes. Each MAC appears twice (learned, then
        // re-learned) so `Formula::or`'s dedup also runs at this scale.
        let x = v(0, 48);
        let macs: Vec<Formula> = (0..960_000u64)
            .map(|m| Formula::eq_const(x, (m % 480_000) * 2))
            .collect();
        let f = Formula::or(macs);
        match &f {
            Formula::Or(parts) => assert_eq!(parts.len(), 480_000),
            other => panic!("expected Or, got {other:?}"),
        }
        let cubes = to_cubes(&f, 4).unwrap();
        assert_eq!(cubes.len(), 1);
        assert!(cubes[0].cross.is_empty());
        assert_eq!(cubes[0].domains.len(), 1);
        assert_eq!(cubes[0].domains[&x].cardinality(), 480_000);
    }

    #[test]
    fn multi_var_or_concatenates_cubes() {
        let x = v(0, 16);
        let y = v(1, 16);
        let f = Formula::or(vec![
            Formula::eq_const(x, 1),
            Formula::eq_const(y, 2),
            Formula::eq_const(x, 3),
        ]);
        let cubes = to_cubes(&f, 16).unwrap();
        // x-literals grouped into one cube, y into another.
        assert_eq!(cubes.len(), 2);
    }

    #[test]
    fn cube_budget_is_enforced() {
        // (x0=0 | y0=0) & (x1=0 | y1=0) & ... expands multiplicatively.
        let mut parts = Vec::new();
        for i in 0..12u64 {
            parts.push(Formula::or(vec![
                Formula::eq_const(v(2 * i, 8), 0),
                Formula::eq_const(v(2 * i + 1, 8), 0),
            ]));
        }
        let f = Formula::and(parts);
        assert!(to_cubes(&f, 64).is_err());
        assert!(to_cubes(&f, 1 << 14).is_ok());
    }

    #[test]
    fn contradictory_single_var_conjunction_is_empty() {
        let x = v(0, 8);
        let f = Formula::and(vec![Formula::eq_const(x, 1), Formula::eq_const(x, 2)]);
        assert!(to_cubes(&f, 8).unwrap().is_empty());
    }

    #[test]
    fn same_var_cross_literal_folds_to_constant() {
        let x = v(0, 8);
        let mut cube = Cube::default();
        // x + 1 > x  — always true.
        cube.add_cross(CmpOp::Gt, (x, 1), (x, 0));
        assert!(!cube.is_contradictory());
        // x > x — always false.
        cube.add_cross(CmpOp::Gt, (x, 0), (x, 0));
        assert!(cube.is_contradictory());
    }
}
