//! The decision procedure.
//!
//! [`Solver::check`] normalises a formula into cubes (see [`crate::cube`]) and
//! decides each cube with:
//!
//! 1. an offset-carrying union-find that merges variable equalities
//!    (`v + a = w + b`),
//! 2. per-equivalence-class interval domains obtained by intersecting the
//!    domain literals of every class member,
//! 3. bound propagation across ordering literals until a fixpoint,
//! 4. disequality pruning when one side is already a singleton, and finally
//! 5. a bounded concrete-witness search whose candidate values are re-checked
//!    against every literal — `Sat` is only ever reported together with a
//!    verified [`Model`].

use crate::cube::{to_cubes, Cube, Literal};
use crate::formula::{CmpOp, Formula};
use crate::interval::IntervalSet;
use crate::model::Model;
use crate::stats::SolverStats;
use crate::term::SymVar;
use std::collections::BTreeMap;
use std::time::Instant;

/// Tunable limits of the decision procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum number of cubes a formula may normalise into before the solver
    /// gives up with [`SolverResult::Unknown`].
    pub max_cubes: usize,
    /// Maximum number of candidate assignments tried per cube during the
    /// witness search.
    pub max_model_attempts: usize,
    /// Maximum number of bound-propagation sweeps per cube.
    pub max_propagation_rounds: usize,
    /// Number of sample values drawn from each variable domain during the
    /// witness search.
    pub samples_per_var: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_cubes: 1 << 14,
            max_model_attempts: 4096,
            max_propagation_rounds: 64,
            samples_per_var: 6,
        }
    }
}

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverResult {
    /// Satisfiable, with a verified witness.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver exceeded a budget and could not decide the query.
    Unknown,
}

impl SolverResult {
    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }

    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolverResult::Unsat)
    }
}

/// The constraint solver. Create one per analysis (it accumulates statistics)
/// and reuse it across queries.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    /// Limits of the decision procedure.
    pub config: SolverConfig,
    stats: SolverStats,
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            stats: SolverStats::default(),
        }
    }

    /// Accumulated statistics (queries, outcomes, time in solver).
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Consumes the solver, returning its accumulated statistics. This is the
    /// natural end of a per-worker solver's life in parallel exploration: each
    /// worker owns a `Solver`, and the engine merges the returned records into
    /// the run's totals (see [`SolverStats::merge`]).
    pub fn into_stats(self) -> SolverStats {
        self.stats
    }

    /// Decides satisfiability of `formula`.
    pub fn check(&mut self, formula: &Formula) -> SolverResult {
        let start = Instant::now();
        self.stats.calls += 1;
        let result = match to_cubes(formula, self.config.max_cubes) {
            Err(_) => {
                self.stats.unknown += 1;
                SolverResult::Unknown
            }
            Ok(cubes) => {
                let mut res = SolverResult::Unsat;
                for cube in &cubes {
                    self.stats.cubes_examined += 1;
                    if let Some(mut model) = self.solve_cube(cube) {
                        // Variables of the formula that the satisfied cube does
                        // not mention are unconstrained on this disjunct; give
                        // them a default value so the model is total.
                        for var in formula.variables() {
                            if model.value(var.id).is_none() {
                                model.set(var.id, 0);
                            }
                        }
                        debug_assert!(model.satisfies(formula) || formula.variables().is_empty());
                        res = SolverResult::Sat(model);
                        break;
                    }
                }
                match &res {
                    SolverResult::Sat(_) => self.stats.sat += 1,
                    _ => self.stats.unsat += 1,
                }
                res
            }
        };
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// True if the formula is satisfiable.
    pub fn is_sat(&mut self, formula: &Formula) -> bool {
        self.check(formula).is_sat()
    }

    /// True if the formula is proven unsatisfiable (an `Unknown` outcome
    /// returns false, i.e. the caller must treat the formula as possibly
    /// satisfiable).
    pub fn is_unsat(&mut self, formula: &Formula) -> bool {
        self.check(formula).is_unsat()
    }

    /// Returns a satisfying assignment, if one exists.
    pub fn model(&mut self, formula: &Formula) -> Option<Model> {
        match self.check(formula) {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// True if `premise` implies `conclusion`, i.e. `premise ∧ ¬conclusion` is
    /// unsatisfiable. Used for invariance checks.
    pub fn implies(&mut self, premise: &Formula, conclusion: &Formula) -> bool {
        let query = Formula::and(vec![premise.clone(), Formula::not(conclusion.clone())]);
        self.is_unsat(&query)
    }

    /// The loop-detection query of Figure 5: the old state is *included* in
    /// the new state iff `old ∧ ¬new` has no witness. A `true` answer means a
    /// network loop has been found (every packet admitted by the old state is
    /// also admitted by the new state, so execution can repeat forever).
    pub fn state_included(&mut self, old: &Formula, new: &Formula) -> bool {
        let query = Formula::and(vec![old.clone(), Formula::not(new.clone())]);
        self.is_unsat(&query)
    }

    /// Projects a formula onto one variable: the set of values `var` can take
    /// in *some* satisfying assignment. The result is exact for single-variable
    /// formulas and a (sound) over-approximation in the presence of
    /// cross-variable constraints, which is what the engine's loop-detection
    /// snapshots need. Returns `None` when the cube budget is exceeded.
    pub fn feasible_values(&mut self, formula: &Formula, var: SymVar) -> Option<IntervalSet> {
        let start = Instant::now();
        self.stats.calls += 1;
        let result = match to_cubes(formula, self.config.max_cubes) {
            Err(_) => {
                self.stats.unknown += 1;
                None
            }
            Ok(cubes) => {
                let mut acc = IntervalSet::empty();
                for cube in &cubes {
                    self.stats.cubes_examined += 1;
                    if let Some((mut uf, domains)) = self.propagate_cube(cube) {
                        let (root, delta) = uf.find(var);
                        let set = domains
                            .get(&root)
                            .cloned()
                            .unwrap_or_else(|| {
                                let (lo, hi) = var.domain();
                                IntervalSet::range(lo - delta, hi - delta)
                            })
                            .shift(delta);
                        let (lo, hi) = var.domain();
                        acc = acc.union(&set.intersect(&IntervalSet::range(lo, hi)));
                    }
                }
                self.stats.sat += 1;
                Some(acc)
            }
        };
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// Runs the propagation phase (union-find, domain intersection, bound
    /// propagation, disequality pruning) of [`Self::solve_cube`] and returns
    /// the per-root domains, or `None` if the cube is contradictory.
    fn propagate_cube(&self, cube: &Cube) -> Option<(UnionFind, BTreeMap<SymVar, IntervalSet>)> {
        self.analyze_cube(cube).map(|a| (a.uf, a.domains))
    }

    /// Decides a single cube, returning a verified witness if it is
    /// satisfiable.
    fn solve_cube(&self, cube: &Cube) -> Option<Model> {
        let analysis = self.analyze_cube(cube)?;
        self.search_witness(&analysis)
    }

    /// Runs the constraint-propagation phase on a cube: union-find over
    /// equalities, per-root domain intersection, ordering bound propagation
    /// and disequality pruning. Returns `None` if a contradiction is found.
    fn analyze_cube(&self, cube: &Cube) -> Option<CubeAnalysis> {
        if cube.is_contradictory() {
            return None;
        }
        // 1. Merge equalities with an offset-carrying union-find.
        let mut uf = UnionFind::default();
        let mut orderings: Vec<OrderingLit> = Vec::new();
        let mut disequalities: Vec<((SymVar, i128), (SymVar, i128))> = Vec::new();
        for lit in &cube.cross {
            let Literal::Cross { op, lhs, rhs } = lit else {
                continue;
            };
            match op {
                CmpOp::Eq => {
                    // lhs.0 + lhs.1 == rhs.0 + rhs.1  ⇒  lhs.0 = rhs.0 + (rhs.1 - lhs.1)
                    if !uf.union(lhs.0, rhs.0, rhs.1 - lhs.1) {
                        return None;
                    }
                }
                CmpOp::Ne => disequalities.push((*lhs, *rhs)),
                _ => orderings.push((*op, *lhs, *rhs)),
            }
        }

        // 2. Per-root domains: each variable's domain literal (or full width
        // domain) expressed over its class root.
        let mut domains: BTreeMap<SymVar, IntervalSet> = BTreeMap::new();
        let mut vars: Vec<SymVar> = cube.domains.keys().copied().collect();
        for lit in &cube.cross {
            if let Literal::Cross { lhs, rhs, .. } = lit {
                vars.push(lhs.0);
                vars.push(rhs.0);
            }
        }
        vars.sort_unstable();
        vars.dedup();
        for var in &vars {
            let (root, delta) = uf.find(*var);
            let (lo, hi) = var.domain();
            let var_set = cube
                .domains
                .get(var)
                .cloned()
                .unwrap_or_else(|| IntervalSet::range(lo, hi));
            // value(var) = value(root) + delta  ⇒  value(root) ∈ set - delta.
            let root_set = var_set.shift(-delta);
            let entry = domains
                .entry(root)
                .or_insert_with(|| IntervalSet::range(i128::MIN / 4, i128::MAX / 4));
            *entry = entry.intersect(&root_set);
            if entry.is_empty() {
                return None;
            }
        }

        // 3. Bound propagation for ordering constraints, rewritten over roots.
        let root_orderings: Vec<OrderingLit> = orderings
            .iter()
            .filter_map(|(op, lhs, rhs)| {
                let (lr, ld) = uf.find(lhs.0);
                let (rr, rd) = uf.find(rhs.0);
                let l = (lr, lhs.1 + ld);
                let r = (rr, rhs.1 + rd);
                if lr == rr {
                    // Constant comparison within one class.
                    if op.eval(l.1, r.1) {
                        None
                    } else {
                        Some((CmpOp::Eq, (lr, 0), (lr, 1))) // impossible marker
                    }
                } else {
                    Some((*op, l, r))
                }
            })
            .collect();
        if root_orderings
            .iter()
            .any(|(op, l, r)| *op == CmpOp::Eq && l.0 == r.0 && l.1 != r.1)
        {
            return None;
        }
        for _ in 0..self.config.max_propagation_rounds {
            let mut changed = false;
            for (op, (lv, lo_off), (rv, ro_off)) in &root_orderings {
                if lv == rv {
                    continue;
                }
                let ld = domains.get(lv).cloned()?;
                let rd = domains.get(rv).cloned()?;
                let (lmin, lmax) = (ld.min()?, ld.max()?);
                let (rmin, rmax) = (rd.min()?, rd.max()?);
                // value(lv) + lo_off  op  value(rv) + ro_off
                let (new_l, new_r) = match op {
                    CmpOp::Lt => (
                        ld.intersect(&IntervalSet::range(lmin, rmax + ro_off - lo_off - 1)),
                        rd.intersect(&IntervalSet::range(lmin + lo_off - ro_off + 1, rmax)),
                    ),
                    CmpOp::Le => (
                        ld.intersect(&IntervalSet::range(lmin, rmax + ro_off - lo_off)),
                        rd.intersect(&IntervalSet::range(lmin + lo_off - ro_off, rmax)),
                    ),
                    CmpOp::Gt => (
                        ld.intersect(&IntervalSet::range(rmin + ro_off - lo_off + 1, lmax)),
                        rd.intersect(&IntervalSet::range(rmin, lmax + lo_off - ro_off - 1)),
                    ),
                    CmpOp::Ge => (
                        ld.intersect(&IntervalSet::range(rmin + ro_off - lo_off, lmax)),
                        rd.intersect(&IntervalSet::range(rmin, lmax + lo_off - ro_off)),
                    ),
                    _ => (ld.clone(), rd.clone()),
                };
                if new_l.is_empty() || new_r.is_empty() {
                    return None;
                }
                if new_l != ld {
                    domains.insert(*lv, new_l);
                    changed = true;
                }
                if new_r != rd {
                    domains.insert(*rv, new_r);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // 4. Disequality pruning when one side is a singleton.
        let root_disequalities: Vec<((SymVar, i128), (SymVar, i128))> = disequalities
            .iter()
            .map(|(lhs, rhs)| {
                let (lr, ld) = uf.find(lhs.0);
                let (rr, rd) = uf.find(rhs.0);
                ((lr, lhs.1 + ld), (rr, rhs.1 + rd))
            })
            .collect();
        for ((lv, lo_off), (rv, ro_off)) in &root_disequalities {
            if lv == rv {
                if lo_off == ro_off {
                    return None;
                }
                continue;
            }
            let ld = domains.get(lv)?.clone();
            let rd = domains.get(rv)?.clone();
            if ld.cardinality() == 1 {
                let point = ld.min()? + lo_off - ro_off;
                let pruned = rd.remove_point(point);
                if pruned.is_empty() {
                    return None;
                }
                domains.insert(*rv, pruned);
            } else if rd.cardinality() == 1 {
                let point = rd.min()? + ro_off - lo_off;
                let pruned = ld.remove_point(point);
                if pruned.is_empty() {
                    return None;
                }
                domains.insert(*lv, pruned);
            }
        }

        Some(CubeAnalysis {
            uf,
            domains,
            root_orderings,
            root_disequalities,
            vars,
        })
    }

    /// Searches for a concrete witness of an analysed cube by enumerating
    /// sampled candidate values per equivalence-class root and re-checking
    /// every literal.
    fn search_witness(&self, analysis: &CubeAnalysis) -> Option<Model> {
        let CubeAnalysis {
            uf,
            domains,
            root_orderings,
            root_disequalities,
            vars,
        } = analysis;
        let mut uf = uf.clone();
        // Witness search over sampled candidate values.
        let roots: Vec<SymVar> = domains.keys().copied().collect();
        let candidates: Vec<Vec<i128>> = roots
            .iter()
            .map(|r| domains[r].samples(self.config.samples_per_var))
            .collect();
        if candidates.iter().any(Vec::is_empty) {
            return None;
        }
        let check = |assignment: &BTreeMap<SymVar, i128>| -> bool {
            for (op, l, r) in root_orderings {
                let lv = assignment[&l.0] + l.1;
                let rv = assignment[&r.0] + r.1;
                if !op.eval(lv, rv) {
                    return false;
                }
            }
            for (l, r) in root_disequalities {
                let lv = assignment[&l.0] + l.1;
                let rv = assignment[&r.0] + r.1;
                if lv == rv {
                    return false;
                }
            }
            true
        };
        let mut attempt = 0usize;
        let mut indices = vec![0usize; roots.len()];
        loop {
            attempt += 1;
            if attempt > self.config.max_model_attempts {
                return None;
            }
            let assignment: BTreeMap<SymVar, i128> = roots
                .iter()
                .zip(indices.iter())
                .map(|(r, &i)| {
                    (
                        *r,
                        candidates[roots.iter().position(|x| x == r).unwrap()][i],
                    )
                })
                .collect();
            if check(&assignment) {
                // Expand to every original variable and verify width bounds.
                let mut model = Model::new();
                let mut ok = true;
                for var in vars {
                    let (root, delta) = uf.find(*var);
                    let value = assignment[&root] + delta;
                    if value < 0 || value > var.max_value() as i128 {
                        ok = false;
                        break;
                    }
                    model.set(var.id, value as u64);
                }
                if ok {
                    return Some(model);
                }
            }
            // Advance the index vector (odometer order).
            let mut pos = 0usize;
            loop {
                if pos >= roots.len() {
                    return None;
                }
                indices[pos] += 1;
                if indices[pos] < candidates[pos].len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// An ordering literal rewritten over terms: `lhs.0 + lhs.1  op  rhs.0 + rhs.1`.
type OrderingLit = (CmpOp, (SymVar, i128), (SymVar, i128));

/// Result of the propagation phase on one cube.
struct CubeAnalysis {
    /// Equality classes (offset-carrying union-find).
    uf: UnionFind,
    /// Value domain per equivalence-class root.
    domains: BTreeMap<SymVar, IntervalSet>,
    /// Ordering literals rewritten over roots.
    root_orderings: Vec<OrderingLit>,
    /// Disequality literals rewritten over roots.
    root_disequalities: Vec<((SymVar, i128), (SymVar, i128))>,
    /// Every variable mentioned by the cube.
    vars: Vec<SymVar>,
}

/// Union-find where every node stores an offset to its parent:
/// `value(node) = value(parent) + offset`.
#[derive(Clone, Debug, Default)]
struct UnionFind {
    parent: BTreeMap<SymVar, (SymVar, i128)>,
}

impl UnionFind {
    /// Returns `(root, delta)` with `value(var) = value(root) + delta`.
    fn find(&mut self, var: SymVar) -> (SymVar, i128) {
        let Some(&(parent, offset)) = self.parent.get(&var) else {
            return (var, 0);
        };
        if parent == var {
            return (var, 0);
        }
        let (root, parent_delta) = self.find(parent);
        let delta = offset + parent_delta;
        self.parent.insert(var, (root, delta));
        (root, delta)
    }

    /// Adds the constraint `value(a) = value(b) + delta`. Returns false if it
    /// contradicts an existing equality.
    fn union(&mut self, a: SymVar, b: SymVar, delta: i128) -> bool {
        let (ra, da) = self.find(a);
        let (rb, db) = self.find(b);
        if ra == rb {
            // value(a) = value(ra) + da and value(b) = value(ra) + db; the new
            // constraint requires da == db + delta.
            return da == db + delta;
        }
        // value(ra) = value(a) - da = value(b) + delta - da = value(rb) + db + delta - da.
        self.parent.insert(ra, (rb, db + delta - da));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn v(id: u64, w: u8) -> SymVar {
        SymVar::new(id, w)
    }

    fn solver() -> Solver {
        Solver::default()
    }

    #[test]
    fn trivial_formulas() {
        let mut s = solver();
        assert!(s.is_sat(&Formula::True));
        assert!(s.is_unsat(&Formula::False));
    }

    #[test]
    fn single_variable_range() {
        let mut s = solver();
        let x = v(0, 16);
        let f = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, 100),
            Formula::cmp_const(CmpOp::Lt, x, 200),
        ]);
        let m = s.model(&f).unwrap();
        let val = m.value(x.id).unwrap();
        assert!((100..200).contains(&val));
        let unsat = Formula::and(vec![f, Formula::cmp_const(CmpOp::Gt, x, 1000)]);
        assert!(s.is_unsat(&unsat));
    }

    #[test]
    fn equality_chain_is_propagated() {
        let mut s = solver();
        let a = v(0, 32);
        let b = v(1, 32);
        let c = v(2, 32);
        // a == b + 10, b == c, c == 5  ⇒  a == 15.
        let f = Formula::and(vec![
            Formula::cmp(CmpOp::Eq, Term::var(a), Term::var(b).plus(10)),
            Formula::cmp(CmpOp::Eq, Term::var(b), Term::var(c)),
            Formula::eq_const(c, 5),
        ]);
        let m = s.model(&f).unwrap();
        assert_eq!(m.value(a.id), Some(15));
        assert_eq!(m.value(b.id), Some(5));
        assert_eq!(m.value(c.id), Some(5));
        // Contradictory chain.
        let g = Formula::and(vec![
            Formula::cmp(CmpOp::Eq, Term::var(a), Term::var(b)),
            Formula::eq_const(a, 1),
            Formula::eq_const(b, 2),
        ]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn ordering_between_variables() {
        let mut s = solver();
        let x = v(0, 8);
        let y = v(1, 8);
        // x < y, y <= 3, x >= 2  ⇒  x = 2, y = 3.
        let f = Formula::and(vec![
            Formula::cmp(CmpOp::Lt, Term::var(x), Term::var(y)),
            Formula::cmp_const(CmpOp::Le, y, 3),
            Formula::cmp_const(CmpOp::Ge, x, 2),
        ]);
        let m = s.model(&f).unwrap();
        assert_eq!(m.value(x.id), Some(2));
        assert_eq!(m.value(y.id), Some(3));
        // Impossible ordering cycle: x < y, y < x.
        let g = Formula::and(vec![
            Formula::cmp(CmpOp::Lt, Term::var(x), Term::var(y)),
            Formula::cmp(CmpOp::Lt, Term::var(y), Term::var(x)),
        ]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn disequality_with_singleton() {
        let mut s = solver();
        let x = v(0, 8);
        let y = v(1, 8);
        let f = Formula::and(vec![
            Formula::eq_const(x, 7),
            Formula::cmp(CmpOp::Ne, Term::var(y), Term::var(x)),
            Formula::cmp_const(CmpOp::Le, y, 7),
        ]);
        let m = s.model(&f).unwrap();
        assert_ne!(m.value(y.id), Some(7));
        // x != x is unsat.
        let g = Formula::cmp(CmpOp::Ne, Term::var(x), Term::var(x));
        assert!(s.is_unsat(&g));
        // Forced equality plus disequality is unsat.
        let h = Formula::and(vec![
            Formula::eq_const(x, 7),
            Formula::eq_const(y, 7),
            Formula::cmp(CmpOp::Ne, Term::var(y), Term::var(x)),
        ]);
        assert!(s.is_unsat(&h));
    }

    #[test]
    fn huge_same_variable_disjunction_is_fast() {
        let mut s = solver();
        let mac = v(0, 48);
        let f = Formula::or(
            (0..100_000u64)
                .map(|m| Formula::eq_const(mac, m * 3 + 1))
                .collect(),
        );
        let with_filter =
            Formula::and(vec![f.clone(), Formula::cmp_const(CmpOp::Ge, mac, 299_990)]);
        let m = s.model(&with_filter).unwrap();
        let val = m.value(mac.id).unwrap();
        assert!(val >= 299_990 && (val - 1).is_multiple_of(3));
        // Excluding every member is unsat.
        let excluded = Formula::and(vec![f, Formula::cmp_const(CmpOp::Gt, mac, 300_000)]);
        assert!(s.is_unsat(&excluded));
    }

    #[test]
    fn prefix_matching_with_exclusion() {
        let mut s = solver();
        let ip = v(0, 32);
        // 10.0.0.0/8 but not 10.10.0.1/32 — the LPM exclusion trick from §7.
        let f = Formula::and(vec![
            Formula::prefix_match(ip, 0x0a000000, 8),
            Formula::not(Formula::prefix_match(ip, 0x0a0a0001, 32)),
        ]);
        let m = s.model(&f).unwrap();
        let val = m.value(ip.id).unwrap();
        assert_eq!(val >> 24, 0x0a);
        assert_ne!(val, 0x0a0a0001);
        // The excluded point alone is unsat.
        let g = Formula::and(vec![f, Formula::eq_const(ip, 0x0a0a0001)]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn implies_and_state_included() {
        let mut s = solver();
        let x = v(0, 16);
        let narrow = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, 10),
            Formula::cmp_const(CmpOp::Le, x, 20),
        ]);
        let wide = Formula::cmp_const(CmpOp::Le, x, 100);
        assert!(s.implies(&narrow, &wide));
        assert!(!s.implies(&wide, &narrow));
        // Loop detection semantics (Fig. 5): old ⊆ new ⇒ loop.
        assert!(s.state_included(&narrow, &wide));
        assert!(!s.state_included(&wide, &narrow));
        // Identical states always loop.
        assert!(s.state_included(&narrow, &narrow));
    }

    #[test]
    fn unknown_on_cube_blowup() {
        let mut s = Solver::with_config(SolverConfig {
            max_cubes: 8,
            ..Default::default()
        });
        let mut parts = Vec::new();
        for i in 0..10u64 {
            parts.push(Formula::or(vec![
                Formula::eq_const(v(2 * i, 8), 0),
                Formula::eq_const(v(2 * i + 1, 8), 0),
            ]));
        }
        let f = Formula::and(parts);
        assert_eq!(s.check(&f), SolverResult::Unknown);
        assert_eq!(s.stats().unknown, 1);
    }

    #[test]
    fn stats_are_accumulated() {
        let mut s = solver();
        let x = v(0, 8);
        s.is_sat(&Formula::eq_const(x, 1));
        s.is_unsat(&Formula::and(vec![
            Formula::eq_const(x, 1),
            Formula::eq_const(x, 2),
        ]));
        assert_eq!(s.stats().calls, 2);
        assert_eq!(s.stats().sat, 1);
        assert_eq!(s.stats().unsat, 1);
        s.reset_stats();
        assert_eq!(s.stats().calls, 0);
    }

    #[test]
    fn cross_variable_with_domains_and_offsets() {
        let mut s = solver();
        let len = v(0, 16);
        let mtu = v(1, 16);
        // The §8.4 MTU scenario: len + 20 < mtu, mtu == 1536 ⇒ len < 1516.
        let f = Formula::and(vec![
            Formula::cmp(CmpOp::Lt, Term::var(len).plus(20), Term::var(mtu)),
            Formula::eq_const(mtu, 1536),
        ]);
        let m = s.model(&f).unwrap();
        assert!(m.value(len.id).unwrap() < 1516);
        let g = Formula::and(vec![f, Formula::cmp_const(CmpOp::Ge, len, 1516)]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn model_respects_width_bounds() {
        let mut s = solver();
        let x = v(0, 4);
        let y = v(1, 4);
        // y == x + 12 with both 4-bit wide: only x in 0..=3 works.
        let f = Formula::cmp(CmpOp::Eq, Term::var(y), Term::var(x).plus(12));
        let m = s.model(&f).unwrap();
        let xv = m.value(x.id).unwrap();
        let yv = m.value(y.id).unwrap();
        assert_eq!(yv, xv + 12);
        assert!(yv <= 15);
    }
}
