//! The decision procedure.
//!
//! [`Solver::check`] normalises a formula into cubes (see [`crate::cube`]) and
//! decides each cube with:
//!
//! 1. an offset-carrying union-find that merges variable equalities
//!    (`v + a = w + b`),
//! 2. per-equivalence-class interval domains obtained by intersecting the
//!    domain literals of every class member,
//! 3. bound propagation across ordering literals until a fixpoint,
//! 4. disequality pruning when one side is already a singleton, and finally
//! 5. a bounded concrete-witness search whose candidate values are re-checked
//!    against every literal — `Sat` is only ever reported together with a
//!    verified [`Model`].

use crate::cache;
use crate::cube::{append_conjunct, to_cubes, Cube, CubeOverflow, Literal};
use crate::fingerprint;
use crate::formula::{CmpOp, Formula};
use crate::interval::IntervalSet;
use crate::model::Model;
use crate::path::{NodeCache, PathCond, PathNode};
use crate::stats::SolverStats;
use crate::term::SymVar;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

/// Tunable limits of the decision procedure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SolverConfig {
    /// Maximum number of cubes a formula may normalise into before the solver
    /// gives up with [`SolverResult::Unknown`].
    pub max_cubes: usize,
    /// Maximum number of candidate assignments tried per cube during the
    /// witness search.
    pub max_model_attempts: usize,
    /// Maximum number of bound-propagation sweeps per cube.
    pub max_propagation_rounds: usize,
    /// Number of sample values drawn from each variable domain during the
    /// witness search.
    pub samples_per_var: usize,
    /// Use the incremental prefix-cached procedure for [`PathCond`] queries
    /// ([`Solver::check_path`] and friends). When disabled, path queries are
    /// materialised into a single formula and solved from scratch — the
    /// baseline the benchmarks compare against.
    pub incremental: bool,
    /// Consult and populate the process-wide persistent cache
    /// ([`crate::cache`]) when one is configured. Has no effect while no
    /// cache directory is active; disabling it opts this solver out even when
    /// one is. Like `incremental`, this knob selects *how* answers are
    /// obtained, never *what* they are, so it is excluded from the
    /// config fingerprint mixed into cache keys.
    pub persistent: bool,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            max_cubes: 1 << 14,
            max_model_attempts: 4096,
            max_propagation_rounds: 64,
            samples_per_var: 6,
            incremental: true,
            persistent: true,
        }
    }
}

/// Outcome of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverResult {
    /// Satisfiable, with a verified witness.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The solver exceeded a budget and could not decide the query.
    Unknown,
}

impl SolverResult {
    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolverResult::Sat(_))
    }

    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SolverResult::Unsat)
    }
}

/// Per-worker memo caches are cleared once they reach this many entries (a
/// crude bound that keeps long runs from hoarding memory; correctness does not
/// depend on what survives).
const MEMO_CAPACITY: usize = 8192;

/// The cube normalisation of a path-condition prefix, or the budget overflow
/// that aborted it.
type CachedCubes = Result<Arc<Vec<Cube>>, CubeOverflow>;

/// The budget fields of a [`SolverConfig`] that the decision procedure's
/// answers depend on. Global content-memo keys include this so solvers with
/// different budgets never exchange results.
type ConfigKey = (usize, usize, usize, usize);

/// Number of independently locked shards of each global content memo.
const CONTENT_SHARDS: usize = 16;

/// A process-wide memo keyed on interned path content ids (plus the solver's
/// budget configuration). Shared by every worker's solver *and across
/// injections*: re-injecting a structurally identical scenario reproduces the
/// same content ids (see [`crate::intern::content_id`]) and therefore hits
/// these entries instead of re-solving.
///
/// Determinism: a hit is only taken when the prefix preceding the queried
/// node is already normalised (its node cache is filled), and it then replays
/// exactly the counters the real computation would have produced — one tip
/// miss, one parent reuse, the original cubes-examined count — and fills the
/// node cache with the memoised analysis. Serialized reports are therefore
/// byte-identical whether a query is memo-answered or recomputed, which is
/// what makes a *global* memo safe for thread-count-invariant reports.
///
/// Shards are selected by content id and cleared at capacity, like the
/// per-worker memos — correctness never depends on what survives eviction.
struct ContentMemo<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
}

impl<K: std::hash::Hash + Eq, V: Clone> ContentMemo<K, V> {
    fn new() -> Self {
        ContentMemo {
            shards: (0..CONTENT_SHARDS).map(|_| Mutex::default()).collect(),
        }
    }

    fn shard(&self, content: u64) -> &Mutex<HashMap<K, V>> {
        &self.shards[(content as usize) % CONTENT_SHARDS]
    }

    fn get(&self, content: u64, key: &K) -> Option<V> {
        let guard = self
            .shard(content)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        guard.get(key).cloned()
    }

    fn insert(&self, content: u64, key: K, value: V) {
        let mut guard = self
            .shard(content)
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if guard.len() >= MEMO_CAPACITY {
            guard.clear();
        }
        guard.insert(key, value);
    }

    fn clear_all(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(PoisonError::into_inner).clear();
        }
    }
}

/// Global memo for [`Solver::check_path`]: content id → (prefix cubes,
/// verdict, cubes examined).
#[allow(clippy::type_complexity)]
fn path_memo() -> &'static ContentMemo<(u64, ConfigKey), (CachedCubes, SolverResult, u64)> {
    static MEMO: OnceLock<ContentMemo<(u64, ConfigKey), (CachedCubes, SolverResult, u64)>> =
        OnceLock::new();
    MEMO.get_or_init(ContentMemo::new)
}

/// Global memo for [`Solver::feasible_values_path`]: (content id, variable) →
/// (projection, cubes examined).
#[allow(clippy::type_complexity)]
fn feasible_memo() -> &'static ContentMemo<(u64, SymVar, ConfigKey), (Option<IntervalSet>, u64)> {
    static MEMO: OnceLock<ContentMemo<(u64, SymVar, ConfigKey), (Option<IntervalSet>, u64)>> =
        OnceLock::new();
    MEMO.get_or_init(ContentMemo::new)
}

/// Clears the process-wide content memos. Benchmarks use this to measure a
/// genuinely cold (or warm-disk-only) run inside a process that has already
/// explored the same scenario; correctness never depends on memo contents, so
/// production code has no reason to call it.
#[doc(hidden)]
pub fn reset_process_memos() {
    path_memo().clear_all();
    feasible_memo().clear_all();
}

/// The constraint solver. Create one per analysis (it accumulates statistics)
/// and reuse it across queries.
///
/// Three layers of caching sit in front of the decision procedure:
///
/// * the **prefix cache** lives on [`PathCond`] nodes (shared by every path
///   that forked from the same prefix and by every worker) and stores the cube
///   normalisation plus verdict of each prefix, so checking `P ∧ c` reuses the
///   analysis of `P` and only folds in `c`;
/// * the **content memos** are process-wide tables keyed on interned content
///   ids (see [`crate::intern`]), so structurally identical prefixes — sibling
///   extensions, or a whole scenario re-injected into a fresh network — are
///   answered without re-solving even though their nodes are distinct;
/// * the **check memo** is a per-solver formula → result map absorbing
///   repeated identical [`Solver::check`] queries.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    /// Limits of the decision procedure.
    pub config: SolverConfig,
    stats: SolverStats,
    /// Formula → (result, cubes examined) memo for [`Solver::check`].
    memo_check: HashMap<Formula, (SolverResult, u64)>,
}

impl Solver {
    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            ..Solver::default()
        }
    }

    /// Accumulated statistics (queries, outcomes, time in solver).
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// The budget fields that global content-memo keys include, so solvers
    /// configured differently never exchange cached answers.
    fn config_key(&self) -> ConfigKey {
        (
            self.config.max_cubes,
            self.config.max_model_attempts,
            self.config.max_propagation_rounds,
            self.config.samples_per_var,
        )
    }

    /// True when this solver should consult the persistent disk cache: the
    /// config opts in *and* a cache directory is configured process-wide.
    fn persistent_enabled(&self) -> bool {
        self.config.persistent && cache::active()
    }

    /// The stable fingerprint of the verdict-affecting config knobs, mixed
    /// into every persistent-cache key (see [`fingerprint::config_fp`]).
    fn config_fp(&self) -> u128 {
        fingerprint::config_fp(
            self.config.max_cubes,
            self.config.max_model_attempts,
            self.config.max_propagation_rounds,
            self.config.samples_per_var,
        )
    }

    /// Resets the accumulated statistics.
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Consumes the solver, returning its accumulated statistics. This is the
    /// natural end of a per-worker solver's life in parallel exploration: each
    /// worker owns a `Solver`, and the engine merges the returned records into
    /// the run's totals (see [`SolverStats::merge`]).
    pub fn into_stats(self) -> SolverStats {
        self.stats
    }

    /// Decides satisfiability of `formula`. Repeated queries for the same
    /// formula are answered from a per-solver memo cache.
    pub fn check(&mut self, formula: &Formula) -> SolverResult {
        let start = Instant::now();
        self.stats.calls += 1;
        if let Some((result, examined)) = self.memo_check.get(formula) {
            let (result, examined) = (result.clone(), *examined);
            self.stats.memo_hits += 1;
            // Replay the work counters of the original computation so the
            // aggregate statistics count queries, not cache topology.
            self.stats.cubes_examined += examined;
            self.record_outcome(&result);
            self.stats.time_in_solver += start.elapsed();
            return result;
        }
        self.stats.memo_misses += 1;
        // Persistent layer: a prior run (or an earlier solver in this one)
        // may have decided this exact formula under this exact config. A hit
        // replays the verdict and the cubes-examined count of the original
        // computation, so the serialized counters are identical warm or cold.
        let persist_key = self.persistent_enabled().then(|| {
            fingerprint::combine(
                fingerprint::DOMAIN_CHECK,
                &[fingerprint::formula_fp(formula), self.config_fp()],
            )
        });
        let (result, examined) = match persist_key.and_then(cache::lookup_verdict) {
            Some((result, examined)) => {
                self.stats.persisted_hits += 1;
                (result, examined)
            }
            None => {
                let (result, examined) = self.solve_formula(formula);
                if let Some(key) = persist_key {
                    self.stats.persisted_misses += 1;
                    self.stats.persisted_stores += 1;
                    // `Unknown` is stored too: a cube-budget overflow is a
                    // deterministic function of (formula, config), so caching
                    // it saves the re-normalisation.
                    cache::store_verdict(key, &result, examined);
                }
                (result, examined)
            }
        };
        self.stats.cubes_examined += examined;
        self.record_outcome(&result);
        if self.memo_check.len() >= MEMO_CAPACITY {
            self.memo_check.clear();
        }
        self.memo_check
            .insert(formula.clone(), (result.clone(), examined));
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// [`Solver::check`] with every cache bypassed — the honest from-scratch
    /// baseline the `SolverConfig::incremental = false` fallbacks use, so the
    /// benchmarked comparison really re-solves the whole condition per query.
    fn check_uncached(&mut self, formula: &Formula) -> SolverResult {
        let start = Instant::now();
        self.stats.calls += 1;
        let (result, examined) = self.solve_formula(formula);
        self.stats.cubes_examined += examined;
        self.record_outcome(&result);
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// Normalises and decides one formula from scratch, returning the result
    /// and the number of cubes examined. No statistics are touched.
    fn solve_formula(&self, formula: &Formula) -> (SolverResult, u64) {
        match to_cubes(formula, self.config.max_cubes) {
            Err(_) => (SolverResult::Unknown, 0),
            Ok(cubes) => {
                let (result, examined) = self.solve_cubes(&cubes);
                let result = match result {
                    SolverResult::Sat(mut model) => {
                        // Variables of the formula that the satisfied cube does
                        // not mention are unconstrained on this disjunct; give
                        // them a default value so the model is total.
                        for var in formula.variables() {
                            if model.value(var.id).is_none() {
                                model.set(var.id, 0);
                            }
                        }
                        debug_assert!(model.satisfies(formula) || formula.variables().is_empty());
                        SolverResult::Sat(model)
                    }
                    other => other,
                };
                (result, examined)
            }
        }
    }

    /// The core decision loop: examines cubes in order, first satisfiable cube
    /// wins. Returns the result (a `Sat` model covers only the winning cube's
    /// variables) and the number of cubes examined. No statistics are touched.
    fn solve_cubes(&self, cubes: &[Cube]) -> (SolverResult, u64) {
        let mut examined = 0u64;
        for cube in cubes {
            examined += 1;
            if let Some(model) = self.solve_cube(cube) {
                return (SolverResult::Sat(model), examined);
            }
        }
        (SolverResult::Unsat, examined)
    }

    /// Bumps the sat/unsat/unknown counter matching a result.
    fn record_outcome(&mut self, result: &SolverResult) {
        match result {
            SolverResult::Sat(_) => self.stats.sat += 1,
            SolverResult::Unsat => self.stats.unsat += 1,
            SolverResult::Unknown => self.stats.unknown += 1,
        }
    }

    /// True if the formula is satisfiable.
    pub fn is_sat(&mut self, formula: &Formula) -> bool {
        self.check(formula).is_sat()
    }

    /// True if the formula is proven unsatisfiable (an `Unknown` outcome
    /// returns false, i.e. the caller must treat the formula as possibly
    /// satisfiable).
    pub fn is_unsat(&mut self, formula: &Formula) -> bool {
        self.check(formula).is_unsat()
    }

    /// Returns a satisfying assignment, if one exists.
    pub fn model(&mut self, formula: &Formula) -> Option<Model> {
        match self.check(formula) {
            SolverResult::Sat(m) => Some(m),
            _ => None,
        }
    }

    /// True if `premise` implies `conclusion`, i.e. `premise ∧ ¬conclusion` is
    /// unsatisfiable. Used for invariance checks.
    pub fn implies(&mut self, premise: &Formula, conclusion: &Formula) -> bool {
        let query = Formula::and(vec![premise.clone(), Formula::not(conclusion.clone())]);
        self.is_unsat(&query)
    }

    /// The loop-detection query of Figure 5: the old state is *included* in
    /// the new state iff `old ∧ ¬new` has no witness. A `true` answer means a
    /// network loop has been found (every packet admitted by the old state is
    /// also admitted by the new state, so execution can repeat forever).
    pub fn state_included(&mut self, old: &Formula, new: &Formula) -> bool {
        let query = Formula::and(vec![old.clone(), Formula::not(new.clone())]);
        self.is_unsat(&query)
    }

    // ------------------------------------------------------------------
    // Incremental queries over persistent path conditions
    // ------------------------------------------------------------------

    /// Decides satisfiability of a persistent path condition, reusing the
    /// analysis cached on its shared prefix nodes: only conjuncts that no
    /// earlier query has normalised are folded in, and a prefix that was
    /// already decided is answered without touching the decision procedure at
    /// all. With [`SolverConfig::incremental`] disabled this materialises the
    /// condition and solves it from scratch (the benchmark baseline).
    ///
    /// A `Sat` answer carries a witness for the variables of the satisfying
    /// cube (unlike [`Solver::check`], unmentioned variables are not padded).
    pub fn check_path(&mut self, path: &PathCond) -> SolverResult {
        if !self.config.incremental {
            return self.check_uncached(&path.to_formula());
        }
        let start = Instant::now();
        self.stats.calls += 1;
        let result = self.check_path_inner(path);
        self.record_outcome(&result);
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// Returns a witness for a persistent path condition, consulting the
    /// persistent counterexample cache first (KLEE-style): the path's conjunct
    /// set is looked up exactly, then a cached witness for a *superset* of the
    /// conjuncts is tried (anything satisfying more constraints satisfies
    /// fewer). Every candidate drawn from disk is re-verified against the
    /// materialised formula before being returned, so a stale or corrupt
    /// cache can cost time but never produce a wrong witness. Cache-provided
    /// `Unsat` answers are trusted only for the *exact* conjunct set (and
    /// config), where they replay a verdict this same deterministic procedure
    /// produced. Without an active cache this is just
    /// [`Solver::check_path`] filtered to `Sat`.
    pub fn model_path_cached(&mut self, path: &PathCond) -> Option<Model> {
        if !self.persistent_enabled() {
            return match self.check_path(path) {
                SolverResult::Sat(m) => Some(m),
                _ => None,
            };
        }
        // The conjunct set, as an unordered bag of formula fingerprints, plus
        // an always-present config atom: an `Unsat` entry replays a verdict of
        // this decision procedure, so it must never cross config budgets.
        let mut atoms = vec![fingerprint::combine(
            fingerprint::DOMAIN_CEX,
            &[self.config_fp()],
        )];
        let mut cursor = path.node();
        while let Some(node) = cursor {
            atoms.push(
                node.interned_formula()
                    .fingerprint_or(fingerprint::formula_fp),
            );
            cursor = node.parent().node();
        }
        match cache::cex_decide(&atoms) {
            Some(cache::CexDecision::Exact { sat: false, .. }) => {
                cache::record_cex_hit();
                self.stats.cex_hits += 1;
                return None;
            }
            Some(cache::CexDecision::Exact { model, .. })
            | Some(cache::CexDecision::SupersetSat { model }) => {
                if let Some(model) = self.verify_candidate(path, model) {
                    cache::record_cex_hit();
                    self.stats.cex_hits += 1;
                    return Some(model);
                }
            }
            // Subset-Unsat is advisory only: this solver's Unsat is based on
            // bounded search, so a subset being "unsat" proves nothing about
            // the superset under a different exploration — fall through.
            Some(cache::CexDecision::SubsetUnsat) | None => {}
        }
        match self.check_path(path) {
            SolverResult::Sat(model) => {
                cache::cex_store(&atoms, true, &model);
                Some(model)
            }
            SolverResult::Unsat => {
                cache::cex_store(&atoms, false, &Model::new());
                None
            }
            SolverResult::Unknown => None,
        }
    }

    /// Re-verifies a cached witness candidate against the materialised path
    /// formula, padding variables the formula mentions but the candidate does
    /// not with zero (the same padding [`Solver::check`] applies to `Sat`
    /// witnesses). Returns the padded model only if it actually satisfies.
    fn verify_candidate(&self, path: &PathCond, mut model: Model) -> Option<Model> {
        let formula = path.to_formula();
        for var in formula.variables() {
            if model.value(var.id).is_none() {
                model.set(var.id, 0);
            }
        }
        model.satisfies(&formula).then_some(model)
    }

    fn check_path_inner(&mut self, path: &PathCond) -> SolverResult {
        let Some(node) = path.node() else {
            return SolverResult::Sat(Model::new());
        };
        let node = Arc::clone(node);
        let mut guard = node.cache.lock().expect("path node cache poisoned");
        if let Some(result) = &guard.result {
            self.stats.prefix_hits += 1;
            return result.clone();
        }
        // Content memo: any prefix with the same *content* — a sibling
        // extension of a shared parent, or the same scenario re-injected into
        // a fresh network — has the same cubes and verdict (cubes are a
        // function of the conjunct sequence alone). A hit is only taken when
        // the parent prefix is already normalised, because then the real
        // computation would have been exactly "tip miss, parent reuse, examine
        // the cubes" — which is the counter pattern the hit replays, keeping
        // serialized reports byte-identical whether the memo is warm or cold.
        let parent_cached = match node.parent().node() {
            None => true,
            Some(parent) => parent
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .cubes
                .is_some(),
        };
        let content = node.content_id();
        let memo_key = (content, self.config_key());
        if parent_cached {
            if let Some((cubes, result, examined)) = path_memo().get(content, &memo_key) {
                self.stats.memo_hits += 1;
                self.stats.content_hits += 1;
                self.stats.prefix_misses += 1;
                if node.parent().node().is_some() {
                    self.stats.prefix_hits += 1;
                }
                self.stats.cubes_examined += examined;
                guard.cubes = Some(cubes);
                guard.result = Some(result.clone());
                return result;
            }
        }
        self.stats.memo_misses += 1;
        self.stats.content_misses += 1;
        // The cube normalisation always runs exactly as it would cold (it
        // also fills the node cache the prefix chain shares); the persistent
        // layer can only skip `solve_cubes`, replaying the stored verdict and
        // examined count. An overflow never consults the store — cold
        // behaviour is `Unknown` without solving, and staying identical to it
        // keeps reports byte-equal warm vs cold.
        let (result, examined) = match self.cubes_locked(&node, &mut guard, true) {
            Err(_) => (SolverResult::Unknown, 0),
            Ok(cubes) => {
                let persist_key = self.persistent_enabled().then(|| {
                    fingerprint::combine(
                        fingerprint::DOMAIN_PATH,
                        &[node.fingerprint(), self.config_fp()],
                    )
                });
                match persist_key.and_then(cache::lookup_verdict) {
                    Some((result, examined)) => {
                        self.stats.persisted_hits += 1;
                        (result, examined)
                    }
                    None => {
                        let (result, examined) = self.solve_cubes(&cubes);
                        if let Some(key) = persist_key {
                            self.stats.persisted_misses += 1;
                            self.stats.persisted_stores += 1;
                            cache::store_verdict(key, &result, examined);
                        }
                        (result, examined)
                    }
                }
            }
        };
        self.stats.cubes_examined += examined;
        guard.result = Some(result.clone());
        if let Some(cubes) = &guard.cubes {
            path_memo().insert(content, memo_key, (cubes.clone(), result.clone(), examined));
        }
        result
    }

    /// True if the path condition is satisfiable.
    pub fn is_sat_path(&mut self, path: &PathCond) -> bool {
        self.check_path(path).is_sat()
    }

    /// True if the path condition is proven unsatisfiable (`Unknown` returns
    /// false, as for [`Solver::is_unsat`]).
    pub fn is_unsat_path(&mut self, path: &PathCond) -> bool {
        self.check_path(path).is_unsat()
    }

    /// Decides `path ∧ extra` without extending the path condition: the cached
    /// cube normalisation of `path` is reused and only `extra` is folded in.
    /// Used for one-off queries (invariance checks) that must not pollute the
    /// shared prefix chain.
    pub fn check_assuming(&mut self, path: &PathCond, extra: &Formula) -> SolverResult {
        if !self.config.incremental {
            return self.check_uncached(&Formula::and(vec![path.to_formula(), extra.clone()]));
        }
        let start = Instant::now();
        self.stats.calls += 1;
        let (result, examined) = match self.prefix_cubes(path, true) {
            Err(_) => (SolverResult::Unknown, 0),
            Ok(prefix) => match append_conjunct(&prefix, extra, self.config.max_cubes) {
                Err(_) => (SolverResult::Unknown, 0),
                Ok(cubes) => {
                    // Persistent layer, after the prefix reuse and conjunct
                    // fold ran exactly as cold: only `solve_cubes` is skipped.
                    let persist_key = self.persistent_enabled().then(|| {
                        fingerprint::combine(
                            fingerprint::DOMAIN_ASSUMING,
                            &[
                                path.fingerprint(),
                                fingerprint::formula_fp(extra),
                                self.config_fp(),
                            ],
                        )
                    });
                    match persist_key.and_then(cache::lookup_verdict) {
                        Some((result, examined)) => {
                            self.stats.persisted_hits += 1;
                            (result, examined)
                        }
                        None => {
                            let (result, examined) = self.solve_cubes(&cubes);
                            if let Some(key) = persist_key {
                                self.stats.persisted_misses += 1;
                                self.stats.persisted_stores += 1;
                                cache::store_verdict(key, &result, examined);
                            }
                            (result, examined)
                        }
                    }
                }
            },
        };
        self.stats.cubes_examined += examined;
        self.record_outcome(&result);
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// True if every packet admitted by `path` satisfies `conclusion`
    /// (`path ∧ ¬conclusion` is unsatisfiable).
    pub fn implies_path(&mut self, path: &PathCond, conclusion: &Formula) -> bool {
        self.check_assuming(path, &Formula::not(conclusion.clone()))
            .is_unsat()
    }

    /// Projects a persistent path condition onto one variable (the incremental
    /// counterpart of [`Solver::feasible_values`]). Results are memoised
    /// process-wide per `(prefix content, variable)`: the engine queries the
    /// same projection for every loop-detection field at every port arrival,
    /// sibling paths forked from one prefix repeat the identical query, and a
    /// re-injected scenario repeats all of them with fresh nodes but identical
    /// content ids.
    pub fn feasible_values_path(&mut self, path: &PathCond, var: SymVar) -> Option<IntervalSet> {
        if !self.config.incremental {
            return self.feasible_values(&path.to_formula(), var);
        }
        let start = Instant::now();
        self.stats.calls += 1;
        let content = path.content_id();
        let memo_key = (content, var, self.config_key());
        // A hit is only taken when the tip's cube normalisation is already
        // cached (or the path is empty): the real computation would then have
        // been a pure lookup plus projection, with no quiet-fill side effect
        // on the prefix chain, so replaying its counters — cubes examined,
        // sat/unknown — keeps reports byte-identical warm or cold.
        let tip_cached = match path.node() {
            None => true,
            Some(node) => node
                .cache
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .cubes
                .is_some(),
        };
        if tip_cached {
            if let Some((result, examined)) = feasible_memo().get(content, &memo_key) {
                self.stats.memo_hits += 1;
                self.stats.content_hits += 1;
                self.stats.cubes_examined += examined;
                match &result {
                    Some(_) => self.stats.sat += 1,
                    None => self.stats.unknown += 1,
                }
                self.stats.time_in_solver += start.elapsed();
                return result;
            }
        }
        self.stats.memo_misses += 1;
        self.stats.content_misses += 1;
        // Persistent layer: consulted only when the tip is already cached,
        // for the same reason the in-process memo is — a hit must replay a
        // computation with *no* quiet-fill side effect on the prefix chain,
        // or node-cache state would differ between warm and cold runs. When
        // the tip is not cached the projection is computed cold (with its
        // quiet fill) and stored without a lookup, so warm runs never report
        // a projection miss for keys the cold run stored.
        let persist_key = (tip_cached && self.persistent_enabled()).then(|| {
            fingerprint::combine(
                fingerprint::DOMAIN_PROJECTION,
                &[
                    path.fingerprint(),
                    fingerprint::var_fp(var),
                    self.config_fp(),
                ],
            )
        });
        let (result, examined) = match persist_key.and_then(cache::lookup_projection) {
            Some((result, examined)) => {
                self.stats.persisted_hits += 1;
                match &result {
                    Some(_) => self.stats.sat += 1,
                    None => self.stats.unknown += 1,
                }
                (result, examined)
            }
            None => {
                if persist_key.is_some() {
                    self.stats.persisted_misses += 1;
                }
                // Quiet prefix access: whether the global memo already held
                // the projection is warm-state-dependent, so the shared
                // prefix counters must not be driven from here.
                let (result, examined) = match self.prefix_cubes(path, false) {
                    Err(_) => {
                        self.stats.unknown += 1;
                        (None, 0)
                    }
                    Ok(cubes) => {
                        let (acc, examined) = self.project_cubes(&cubes, var);
                        self.stats.sat += 1;
                        (Some(acc), examined)
                    }
                };
                if self.persistent_enabled() {
                    let key = persist_key.unwrap_or_else(|| {
                        fingerprint::combine(
                            fingerprint::DOMAIN_PROJECTION,
                            &[
                                path.fingerprint(),
                                fingerprint::var_fp(var),
                                self.config_fp(),
                            ],
                        )
                    });
                    self.stats.persisted_stores += 1;
                    cache::store_projection(key, &result, examined);
                }
                (result, examined)
            }
        };
        self.stats.cubes_examined += examined;
        feasible_memo().insert(content, memo_key, (result.clone(), examined));
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// Projects a cube list onto one variable: the union of the per-cube
    /// feasible sets of `var`, clamped to its width domain, plus the number of
    /// cubes examined. No statistics are touched.
    fn project_cubes(&self, cubes: &[Cube], var: SymVar) -> (IntervalSet, u64) {
        let (lo, hi) = var.domain();
        let mut acc = IntervalSet::empty();
        let mut examined = 0u64;
        for cube in cubes {
            examined += 1;
            if let Some((mut uf, domains)) = self.propagate_cube(cube) {
                let (root, delta) = uf.find(var);
                let set = domains
                    .get(&root)
                    .cloned()
                    .unwrap_or_else(|| IntervalSet::range(lo - delta, hi - delta))
                    .shift(delta);
                acc = acc.union(&set.intersect(&IntervalSet::range(lo, hi)));
            }
        }
        (acc, examined)
    }

    /// The cached cube normalisation of a whole path condition (an empty
    /// condition is the single trivially-true cube).
    fn prefix_cubes(
        &mut self,
        path: &PathCond,
        counted: bool,
    ) -> Result<Arc<Vec<Cube>>, CubeOverflow> {
        match path.node() {
            None => Ok(Arc::new(vec![Cube::default()])),
            Some(node) => {
                let node = Arc::clone(node);
                let mut guard = node.cache.lock().expect("path node cache poisoned");
                self.cubes_locked(&node, &mut guard, counted)
            }
        }
    }

    /// Returns the cube normalisation of the prefix ending at `node`, whose
    /// cache guard the caller already holds, computing and caching it (and any
    /// uncached ancestors) on demand. Locks are only ever taken child→parent,
    /// so concurrent workers cannot deadlock, and holding the guard across the
    /// computation means every prefix is analysed at most once process-wide —
    /// which keeps the hit/miss counters identical for every thread count.
    fn cubes_locked(
        &mut self,
        node: &PathNode,
        guard: &mut MutexGuard<'_, NodeCache>,
        counted: bool,
    ) -> Result<Arc<Vec<Cube>>, CubeOverflow> {
        if let Some(cached) = &guard.cubes {
            if counted {
                self.stats.prefix_hits += 1;
            }
            return cached.clone();
        }
        if counted {
            self.stats.prefix_misses += 1;
        }
        let parent_cubes = self.prefix_cubes(node.parent(), counted);
        let computed = parent_cubes.and_then(|prefix| {
            append_conjunct(&prefix, node.formula(), self.config.max_cubes).map(Arc::new)
        });
        guard.cubes = Some(computed.clone());
        computed
    }

    /// Projects a formula onto one variable: the set of values `var` can take
    /// in *some* satisfying assignment. The result is exact for single-variable
    /// formulas and a (sound) over-approximation in the presence of
    /// cross-variable constraints, which is what the engine's loop-detection
    /// snapshots need. Returns `None` when the cube budget is exceeded.
    pub fn feasible_values(&mut self, formula: &Formula, var: SymVar) -> Option<IntervalSet> {
        let start = Instant::now();
        self.stats.calls += 1;
        let result = match to_cubes(formula, self.config.max_cubes) {
            Err(_) => {
                self.stats.unknown += 1;
                None
            }
            Ok(cubes) => {
                let (acc, examined) = self.project_cubes(&cubes, var);
                self.stats.cubes_examined += examined;
                self.stats.sat += 1;
                Some(acc)
            }
        };
        self.stats.time_in_solver += start.elapsed();
        result
    }

    /// Runs the propagation phase (union-find, domain intersection, bound
    /// propagation, disequality pruning) of [`Self::solve_cube`] and returns
    /// the per-root domains, or `None` if the cube is contradictory.
    fn propagate_cube(&self, cube: &Cube) -> Option<(UnionFind, BTreeMap<SymVar, IntervalSet>)> {
        self.analyze_cube(cube).map(|a| (a.uf, a.domains))
    }

    /// Decides a single cube, returning a verified witness if it is
    /// satisfiable.
    fn solve_cube(&self, cube: &Cube) -> Option<Model> {
        let analysis = self.analyze_cube(cube)?;
        self.search_witness(&analysis)
    }

    /// Runs the constraint-propagation phase on a cube: union-find over
    /// equalities, per-root domain intersection, ordering bound propagation
    /// and disequality pruning. Returns `None` if a contradiction is found.
    fn analyze_cube(&self, cube: &Cube) -> Option<CubeAnalysis> {
        if cube.is_contradictory() {
            return None;
        }
        // 1. Merge equalities with an offset-carrying union-find.
        let mut uf = UnionFind::default();
        let mut orderings: Vec<OrderingLit> = Vec::new();
        let mut disequalities: Vec<((SymVar, i128), (SymVar, i128))> = Vec::new();
        for lit in &cube.cross {
            let Literal::Cross { op, lhs, rhs } = lit else {
                continue;
            };
            match op {
                CmpOp::Eq => {
                    // lhs.0 + lhs.1 == rhs.0 + rhs.1  ⇒  lhs.0 = rhs.0 + (rhs.1 - lhs.1)
                    if !uf.union(lhs.0, rhs.0, rhs.1 - lhs.1) {
                        return None;
                    }
                }
                CmpOp::Ne => disequalities.push((*lhs, *rhs)),
                _ => orderings.push((*op, *lhs, *rhs)),
            }
        }

        // 2. Per-root domains: each variable's domain literal (or full width
        // domain) expressed over its class root.
        let mut domains: BTreeMap<SymVar, IntervalSet> = BTreeMap::new();
        let mut vars: Vec<SymVar> = cube.domains.keys().copied().collect();
        for lit in &cube.cross {
            if let Literal::Cross { lhs, rhs, .. } = lit {
                vars.push(lhs.0);
                vars.push(rhs.0);
            }
        }
        vars.sort_unstable();
        vars.dedup();
        for var in &vars {
            let (root, delta) = uf.find(*var);
            let (lo, hi) = var.domain();
            let var_set = cube
                .domains
                .get(var)
                .cloned()
                .unwrap_or_else(|| IntervalSet::range(lo, hi));
            // value(var) = value(root) + delta  ⇒  value(root) ∈ set - delta.
            let root_set = var_set.shift(-delta);
            let entry = domains
                .entry(root)
                .or_insert_with(|| IntervalSet::range(i128::MIN / 4, i128::MAX / 4));
            *entry = entry.intersect(&root_set);
            if entry.is_empty() {
                return None;
            }
        }

        // 3. Bound propagation for ordering constraints, rewritten over roots.
        let root_orderings: Vec<OrderingLit> = orderings
            .iter()
            .filter_map(|(op, lhs, rhs)| {
                let (lr, ld) = uf.find(lhs.0);
                let (rr, rd) = uf.find(rhs.0);
                let l = (lr, lhs.1 + ld);
                let r = (rr, rhs.1 + rd);
                if lr == rr {
                    // Constant comparison within one class.
                    if op.eval(l.1, r.1) {
                        None
                    } else {
                        Some((CmpOp::Eq, (lr, 0), (lr, 1))) // impossible marker
                    }
                } else {
                    Some((*op, l, r))
                }
            })
            .collect();
        if root_orderings
            .iter()
            .any(|(op, l, r)| *op == CmpOp::Eq && l.0 == r.0 && l.1 != r.1)
        {
            return None;
        }
        for _ in 0..self.config.max_propagation_rounds {
            let mut changed = false;
            for (op, (lv, lo_off), (rv, ro_off)) in &root_orderings {
                if lv == rv {
                    continue;
                }
                let ld = domains.get(lv).cloned()?;
                let rd = domains.get(rv).cloned()?;
                let (lmin, lmax) = (ld.min()?, ld.max()?);
                let (rmin, rmax) = (rd.min()?, rd.max()?);
                // value(lv) + lo_off  op  value(rv) + ro_off
                let (new_l, new_r) = match op {
                    CmpOp::Lt => (
                        ld.intersect(&IntervalSet::range(lmin, rmax + ro_off - lo_off - 1)),
                        rd.intersect(&IntervalSet::range(lmin + lo_off - ro_off + 1, rmax)),
                    ),
                    CmpOp::Le => (
                        ld.intersect(&IntervalSet::range(lmin, rmax + ro_off - lo_off)),
                        rd.intersect(&IntervalSet::range(lmin + lo_off - ro_off, rmax)),
                    ),
                    CmpOp::Gt => (
                        ld.intersect(&IntervalSet::range(rmin + ro_off - lo_off + 1, lmax)),
                        rd.intersect(&IntervalSet::range(rmin, lmax + lo_off - ro_off - 1)),
                    ),
                    CmpOp::Ge => (
                        ld.intersect(&IntervalSet::range(rmin + ro_off - lo_off, lmax)),
                        rd.intersect(&IntervalSet::range(rmin, lmax + lo_off - ro_off)),
                    ),
                    _ => (ld.clone(), rd.clone()),
                };
                if new_l.is_empty() || new_r.is_empty() {
                    return None;
                }
                if new_l != ld {
                    domains.insert(*lv, new_l);
                    changed = true;
                }
                if new_r != rd {
                    domains.insert(*rv, new_r);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // 4. Disequality pruning when one side is a singleton.
        let root_disequalities: Vec<((SymVar, i128), (SymVar, i128))> = disequalities
            .iter()
            .map(|(lhs, rhs)| {
                let (lr, ld) = uf.find(lhs.0);
                let (rr, rd) = uf.find(rhs.0);
                ((lr, lhs.1 + ld), (rr, rhs.1 + rd))
            })
            .collect();
        for ((lv, lo_off), (rv, ro_off)) in &root_disequalities {
            if lv == rv {
                if lo_off == ro_off {
                    return None;
                }
                continue;
            }
            let ld = domains.get(lv)?.clone();
            let rd = domains.get(rv)?.clone();
            if ld.cardinality() == 1 {
                let point = ld.min()? + lo_off - ro_off;
                let pruned = rd.remove_point(point);
                if pruned.is_empty() {
                    return None;
                }
                domains.insert(*rv, pruned);
            } else if rd.cardinality() == 1 {
                let point = rd.min()? + ro_off - lo_off;
                let pruned = ld.remove_point(point);
                if pruned.is_empty() {
                    return None;
                }
                domains.insert(*lv, pruned);
            }
        }

        Some(CubeAnalysis {
            uf,
            domains,
            root_orderings,
            root_disequalities,
            vars,
        })
    }

    /// Searches for a concrete witness of an analysed cube by enumerating
    /// sampled candidate values per equivalence-class root and re-checking
    /// every literal.
    fn search_witness(&self, analysis: &CubeAnalysis) -> Option<Model> {
        let CubeAnalysis {
            uf,
            domains,
            root_orderings,
            root_disequalities,
            vars,
        } = analysis;
        let mut uf = uf.clone();
        // Witness search over sampled candidate values.
        let roots: Vec<SymVar> = domains.keys().copied().collect();
        let candidates: Vec<Vec<i128>> = roots
            .iter()
            .map(|r| domains[r].samples(self.config.samples_per_var))
            .collect();
        if candidates.iter().any(Vec::is_empty) {
            return None;
        }
        let check = |assignment: &BTreeMap<SymVar, i128>| -> bool {
            for (op, l, r) in root_orderings {
                let lv = assignment[&l.0] + l.1;
                let rv = assignment[&r.0] + r.1;
                if !op.eval(lv, rv) {
                    return false;
                }
            }
            for (l, r) in root_disequalities {
                let lv = assignment[&l.0] + l.1;
                let rv = assignment[&r.0] + r.1;
                if lv == rv {
                    return false;
                }
            }
            true
        };
        let mut attempt = 0usize;
        let mut indices = vec![0usize; roots.len()];
        loop {
            attempt += 1;
            if attempt > self.config.max_model_attempts {
                return None;
            }
            let assignment: BTreeMap<SymVar, i128> = roots
                .iter()
                .zip(indices.iter())
                .map(|(r, &i)| {
                    (
                        *r,
                        candidates[roots.iter().position(|x| x == r).unwrap()][i],
                    )
                })
                .collect();
            if check(&assignment) {
                // Expand to every original variable and verify width bounds.
                let mut model = Model::new();
                let mut ok = true;
                for var in vars {
                    let (root, delta) = uf.find(*var);
                    let value = assignment[&root] + delta;
                    if value < 0 || value > var.max_value() as i128 {
                        ok = false;
                        break;
                    }
                    model.set(var.id, value as u64);
                }
                if ok {
                    return Some(model);
                }
            }
            // Advance the index vector (odometer order).
            let mut pos = 0usize;
            loop {
                if pos >= roots.len() {
                    return None;
                }
                indices[pos] += 1;
                if indices[pos] < candidates[pos].len() {
                    break;
                }
                indices[pos] = 0;
                pos += 1;
            }
        }
    }
}

/// An ordering literal rewritten over terms: `lhs.0 + lhs.1  op  rhs.0 + rhs.1`.
type OrderingLit = (CmpOp, (SymVar, i128), (SymVar, i128));

/// Result of the propagation phase on one cube.
struct CubeAnalysis {
    /// Equality classes (offset-carrying union-find).
    uf: UnionFind,
    /// Value domain per equivalence-class root.
    domains: BTreeMap<SymVar, IntervalSet>,
    /// Ordering literals rewritten over roots.
    root_orderings: Vec<OrderingLit>,
    /// Disequality literals rewritten over roots.
    root_disequalities: Vec<((SymVar, i128), (SymVar, i128))>,
    /// Every variable mentioned by the cube.
    vars: Vec<SymVar>,
}

/// Union-find where every node stores an offset to its parent:
/// `value(node) = value(parent) + offset`.
#[derive(Clone, Debug, Default)]
struct UnionFind {
    parent: BTreeMap<SymVar, (SymVar, i128)>,
}

impl UnionFind {
    /// Returns `(root, delta)` with `value(var) = value(root) + delta`.
    fn find(&mut self, var: SymVar) -> (SymVar, i128) {
        let Some(&(parent, offset)) = self.parent.get(&var) else {
            return (var, 0);
        };
        if parent == var {
            return (var, 0);
        }
        let (root, parent_delta) = self.find(parent);
        let delta = offset + parent_delta;
        self.parent.insert(var, (root, delta));
        (root, delta)
    }

    /// Adds the constraint `value(a) = value(b) + delta`. Returns false if it
    /// contradicts an existing equality.
    fn union(&mut self, a: SymVar, b: SymVar, delta: i128) -> bool {
        let (ra, da) = self.find(a);
        let (rb, db) = self.find(b);
        if ra == rb {
            // value(a) = value(ra) + da and value(b) = value(ra) + db; the new
            // constraint requires da == db + delta.
            return da == db + delta;
        }
        // value(ra) = value(a) - da = value(b) + delta - da = value(rb) + db + delta - da.
        self.parent.insert(ra, (rb, db + delta - da));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn v(id: u64, w: u8) -> SymVar {
        SymVar::new(id, w)
    }

    fn solver() -> Solver {
        Solver::default()
    }

    #[test]
    fn trivial_formulas() {
        let mut s = solver();
        assert!(s.is_sat(&Formula::True));
        assert!(s.is_unsat(&Formula::False));
    }

    #[test]
    fn single_variable_range() {
        let mut s = solver();
        let x = v(0, 16);
        let f = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, 100),
            Formula::cmp_const(CmpOp::Lt, x, 200),
        ]);
        let m = s.model(&f).unwrap();
        let val = m.value(x.id).unwrap();
        assert!((100..200).contains(&val));
        let unsat = Formula::and(vec![f, Formula::cmp_const(CmpOp::Gt, x, 1000)]);
        assert!(s.is_unsat(&unsat));
    }

    #[test]
    fn equality_chain_is_propagated() {
        let mut s = solver();
        let a = v(0, 32);
        let b = v(1, 32);
        let c = v(2, 32);
        // a == b + 10, b == c, c == 5  ⇒  a == 15.
        let f = Formula::and(vec![
            Formula::cmp(CmpOp::Eq, Term::var(a), Term::var(b).plus(10)),
            Formula::cmp(CmpOp::Eq, Term::var(b), Term::var(c)),
            Formula::eq_const(c, 5),
        ]);
        let m = s.model(&f).unwrap();
        assert_eq!(m.value(a.id), Some(15));
        assert_eq!(m.value(b.id), Some(5));
        assert_eq!(m.value(c.id), Some(5));
        // Contradictory chain.
        let g = Formula::and(vec![
            Formula::cmp(CmpOp::Eq, Term::var(a), Term::var(b)),
            Formula::eq_const(a, 1),
            Formula::eq_const(b, 2),
        ]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn ordering_between_variables() {
        let mut s = solver();
        let x = v(0, 8);
        let y = v(1, 8);
        // x < y, y <= 3, x >= 2  ⇒  x = 2, y = 3.
        let f = Formula::and(vec![
            Formula::cmp(CmpOp::Lt, Term::var(x), Term::var(y)),
            Formula::cmp_const(CmpOp::Le, y, 3),
            Formula::cmp_const(CmpOp::Ge, x, 2),
        ]);
        let m = s.model(&f).unwrap();
        assert_eq!(m.value(x.id), Some(2));
        assert_eq!(m.value(y.id), Some(3));
        // Impossible ordering cycle: x < y, y < x.
        let g = Formula::and(vec![
            Formula::cmp(CmpOp::Lt, Term::var(x), Term::var(y)),
            Formula::cmp(CmpOp::Lt, Term::var(y), Term::var(x)),
        ]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn disequality_with_singleton() {
        let mut s = solver();
        let x = v(0, 8);
        let y = v(1, 8);
        let f = Formula::and(vec![
            Formula::eq_const(x, 7),
            Formula::cmp(CmpOp::Ne, Term::var(y), Term::var(x)),
            Formula::cmp_const(CmpOp::Le, y, 7),
        ]);
        let m = s.model(&f).unwrap();
        assert_ne!(m.value(y.id), Some(7));
        // x != x is unsat.
        let g = Formula::cmp(CmpOp::Ne, Term::var(x), Term::var(x));
        assert!(s.is_unsat(&g));
        // Forced equality plus disequality is unsat.
        let h = Formula::and(vec![
            Formula::eq_const(x, 7),
            Formula::eq_const(y, 7),
            Formula::cmp(CmpOp::Ne, Term::var(y), Term::var(x)),
        ]);
        assert!(s.is_unsat(&h));
    }

    #[test]
    fn huge_same_variable_disjunction_is_fast() {
        let mut s = solver();
        let mac = v(0, 48);
        let f = Formula::or(
            (0..100_000u64)
                .map(|m| Formula::eq_const(mac, m * 3 + 1))
                .collect(),
        );
        let with_filter =
            Formula::and(vec![f.clone(), Formula::cmp_const(CmpOp::Ge, mac, 299_990)]);
        let m = s.model(&with_filter).unwrap();
        let val = m.value(mac.id).unwrap();
        assert!(val >= 299_990 && (val - 1).is_multiple_of(3));
        // Excluding every member is unsat.
        let excluded = Formula::and(vec![f, Formula::cmp_const(CmpOp::Gt, mac, 300_000)]);
        assert!(s.is_unsat(&excluded));
    }

    #[test]
    fn prefix_matching_with_exclusion() {
        let mut s = solver();
        let ip = v(0, 32);
        // 10.0.0.0/8 but not 10.10.0.1/32 — the LPM exclusion trick from §7.
        let f = Formula::and(vec![
            Formula::prefix_match(ip, 0x0a000000, 8),
            Formula::not(Formula::prefix_match(ip, 0x0a0a0001, 32)),
        ]);
        let m = s.model(&f).unwrap();
        let val = m.value(ip.id).unwrap();
        assert_eq!(val >> 24, 0x0a);
        assert_ne!(val, 0x0a0a0001);
        // The excluded point alone is unsat.
        let g = Formula::and(vec![f, Formula::eq_const(ip, 0x0a0a0001)]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn implies_and_state_included() {
        let mut s = solver();
        let x = v(0, 16);
        let narrow = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, 10),
            Formula::cmp_const(CmpOp::Le, x, 20),
        ]);
        let wide = Formula::cmp_const(CmpOp::Le, x, 100);
        assert!(s.implies(&narrow, &wide));
        assert!(!s.implies(&wide, &narrow));
        // Loop detection semantics (Fig. 5): old ⊆ new ⇒ loop.
        assert!(s.state_included(&narrow, &wide));
        assert!(!s.state_included(&wide, &narrow));
        // Identical states always loop.
        assert!(s.state_included(&narrow, &narrow));
    }

    #[test]
    fn unknown_on_cube_blowup() {
        let mut s = Solver::with_config(SolverConfig {
            max_cubes: 8,
            ..Default::default()
        });
        let mut parts = Vec::new();
        for i in 0..10u64 {
            parts.push(Formula::or(vec![
                Formula::eq_const(v(2 * i, 8), 0),
                Formula::eq_const(v(2 * i + 1, 8), 0),
            ]));
        }
        let f = Formula::and(parts);
        assert_eq!(s.check(&f), SolverResult::Unknown);
        assert_eq!(s.stats().unknown, 1);
    }

    #[test]
    fn stats_are_accumulated() {
        let mut s = solver();
        let x = v(0, 8);
        s.is_sat(&Formula::eq_const(x, 1));
        s.is_unsat(&Formula::and(vec![
            Formula::eq_const(x, 1),
            Formula::eq_const(x, 2),
        ]));
        assert_eq!(s.stats().calls, 2);
        assert_eq!(s.stats().sat, 1);
        assert_eq!(s.stats().unsat, 1);
        s.reset_stats();
        assert_eq!(s.stats().calls, 0);
    }

    #[test]
    fn prefix_sharing_chain_hits_the_caches() {
        use crate::path::PathCond;
        let mut s = solver();
        let x = v(0, 16);
        let y = v(1, 16);
        let base = PathCond::empty()
            .push(Formula::cmp_const(CmpOp::Ge, x, 10))
            .push(Formula::cmp_const(CmpOp::Le, x, 500));
        assert!(s.check_path(&base).is_sat());
        let after_base = s.stats().clone();
        assert!(after_base.prefix_misses > 0);

        // Two extensions forked from the same prefix: both reuse the cached
        // analysis of `base` and only fold in their own conjunct.
        let a = base.push(Formula::eq_const(y, 7));
        let b = base.push(Formula::cmp_const(CmpOp::Gt, x, 1000));
        assert!(s.check_path(&a).is_sat());
        assert!(s.check_path(&b).is_unsat());
        assert!(
            s.stats().prefix_hits > after_base.prefix_hits,
            "extensions must reuse the shared prefix: {:?}",
            s.stats()
        );

        // Re-checking an already-decided prefix is a pure cache hit.
        let before = s.stats().clone();
        assert!(s.check_path(&a).is_sat());
        assert_eq!(s.stats().prefix_hits, before.prefix_hits + 1);
        assert_eq!(s.stats().cubes_examined, before.cubes_examined);

        // A structurally identical sibling extension (distinct node, same
        // parent and conjunct) is answered by the content-keyed memo.
        let twin = base.push(Formula::eq_const(y, 7));
        let before_memo = s.stats().memo_hits;
        assert!(s.check_path(&twin).is_sat());
        assert_eq!(s.stats().memo_hits, before_memo + 1);

        // Projection memo: the same (prefix, variable) projection twice.
        let first = s.feasible_values_path(&a, x).unwrap();
        let memo_before = s.stats().memo_hits;
        let second = s.feasible_values_path(&a, x).unwrap();
        assert_eq!(first, second);
        assert_eq!(s.stats().memo_hits, memo_before + 1);

        // The caches never change answers: a fresh from-scratch solver agrees.
        let mut scratch = Solver::with_config(SolverConfig {
            incremental: false,
            ..SolverConfig::default()
        });
        assert!(scratch.check_path(&a).is_sat());
        assert!(scratch.check_path(&b).is_unsat());
        assert_eq!(scratch.feasible_values_path(&a, x), Some(first));
    }

    #[test]
    fn check_memo_replays_results() {
        let mut s = solver();
        let x = v(0, 8);
        let f = Formula::and(vec![
            Formula::cmp_const(CmpOp::Ge, x, 3),
            Formula::cmp_const(CmpOp::Le, x, 9),
        ]);
        assert!(s.check(&f).is_sat());
        let after_first = s.stats().clone();
        assert_eq!(after_first.memo_misses, 1);
        assert!(s.check(&f).is_sat());
        let after_second = s.stats();
        assert_eq!(after_second.memo_hits, 1);
        // The replayed query counts like the original.
        assert_eq!(after_second.calls, 2);
        assert_eq!(after_second.sat, 2);
        assert_eq!(after_second.cubes_examined, after_first.cubes_examined * 2);
    }

    #[test]
    fn cross_variable_with_domains_and_offsets() {
        let mut s = solver();
        let len = v(0, 16);
        let mtu = v(1, 16);
        // The §8.4 MTU scenario: len + 20 < mtu, mtu == 1536 ⇒ len < 1516.
        let f = Formula::and(vec![
            Formula::cmp(CmpOp::Lt, Term::var(len).plus(20), Term::var(mtu)),
            Formula::eq_const(mtu, 1536),
        ]);
        let m = s.model(&f).unwrap();
        assert!(m.value(len.id).unwrap() < 1516);
        let g = Formula::and(vec![f, Formula::cmp_const(CmpOp::Ge, len, 1516)]);
        assert!(s.is_unsat(&g));
    }

    #[test]
    fn model_respects_width_bounds() {
        let mut s = solver();
        let x = v(0, 4);
        let y = v(1, 4);
        // y == x + 12 with both 4-bit wide: only x in 0..=3 works.
        let f = Formula::cmp(CmpOp::Eq, Term::var(y), Term::var(x).plus(12));
        let m = s.model(&f).unwrap();
        let xv = m.value(x.id).unwrap();
        let yv = m.value(y.id).unwrap();
        assert_eq!(yv, xv + 12);
        assert!(yv <= 15);
    }
}
