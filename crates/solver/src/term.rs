//! Symbolic variables and terms.
//!
//! A [`SymVar`] is a process-unique symbolic value of a fixed bit width (the
//! width of the packet-header field or metadata slot it was created for). A
//! [`Term`] is either a constant or a variable plus a signed offset — the only
//! arithmetic SEFL supports (§5: "SymNet (via SEFL) only supports simple
//! expressions (referencing, subtraction, addition, negation)").

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a symbolic variable. Allocated by the execution engine; the
/// solver treats it as opaque.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarId(pub u64);

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A symbolic variable together with its bit width.
///
/// The width bounds the variable's domain to `[0, 2^width - 1]`. Widths above
/// 64 bits are clamped to 64: SEFL models treat large opaque fields (e.g. the
/// TCP payload after encryption) as a single unbounded-looking symbol, and 64
/// bits of freedom is enough to distinguish "fresh unconstrained symbol" from
/// any concrete content in every analysis the paper performs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SymVar {
    /// Unique identifier.
    pub id: VarId,
    /// Bit width of the variable (1..=64).
    pub width: u8,
}

impl SymVar {
    /// Creates a variable with the given raw id and bit width (clamped to 1..=64).
    pub fn new(id: u64, width: u8) -> Self {
        SymVar {
            id: VarId(id),
            width: width.clamp(1, 64),
        }
    }

    /// Maximum value representable in this variable's width.
    pub fn max_value(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// The full domain of the variable as an inclusive `(lo, hi)` pair.
    pub fn domain(&self) -> (i128, i128) {
        (0, self.max_value() as i128)
    }
}

impl fmt::Debug for SymVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.id, self.width)
    }
}

impl fmt::Display for SymVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// A term: either a constant or `variable + offset`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A constant integer value.
    Const(i128),
    /// A symbolic variable plus a signed constant offset.
    Var {
        /// The variable.
        var: SymVar,
        /// Offset added to the variable's value.
        offset: i128,
    },
}

impl Term {
    /// A term referencing `var` with no offset.
    pub fn var(var: SymVar) -> Self {
        Term::Var { var, offset: 0 }
    }

    /// A constant term.
    pub fn constant<T: Into<i128>>(value: T) -> Self {
        Term::Const(value.into())
    }

    /// Adds a constant offset to this term.
    pub fn plus(self, delta: i128) -> Self {
        match self {
            Term::Const(c) => Term::Const(c + delta),
            Term::Var { var, offset } => Term::Var {
                var,
                offset: offset + delta,
            },
        }
    }

    /// Returns the variable referenced by this term, if any.
    pub fn as_var(&self) -> Option<SymVar> {
        match self {
            Term::Const(_) => None,
            Term::Var { var, .. } => Some(*var),
        }
    }

    /// Returns the constant value of this term, if it is a constant.
    pub fn as_const(&self) -> Option<i128> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var { .. } => None,
        }
    }

    /// Evaluates the term under a concrete assignment lookup.
    pub fn eval(&self, lookup: impl Fn(VarId) -> Option<u64>) -> Option<i128> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var { var, offset } => lookup(var.id).map(|v| v as i128 + offset),
        }
    }
}

impl From<i128> for Term {
    fn from(value: i128) -> Self {
        Term::Const(value)
    }
}

impl From<u64> for Term {
    fn from(value: u64) -> Self {
        Term::Const(value as i128)
    }
}

impl From<SymVar> for Term {
    fn from(var: SymVar) -> Self {
        Term::var(var)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Var { var, offset } if *offset == 0 => write!(f, "{var}"),
            Term::Var { var, offset } if *offset > 0 => write!(f, "{var}+{offset}"),
            Term::Var { var, offset } => write!(f, "{var}{offset}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symvar_width_is_clamped() {
        assert_eq!(SymVar::new(1, 0).width, 1);
        assert_eq!(SymVar::new(1, 200).width, 64);
        assert_eq!(SymVar::new(1, 32).width, 32);
    }

    #[test]
    fn symvar_max_value() {
        assert_eq!(SymVar::new(0, 1).max_value(), 1);
        assert_eq!(SymVar::new(0, 8).max_value(), 255);
        assert_eq!(SymVar::new(0, 16).max_value(), 65535);
        assert_eq!(SymVar::new(0, 64).max_value(), u64::MAX);
    }

    #[test]
    fn term_plus_folds_offsets() {
        let v = SymVar::new(3, 32);
        let t = Term::var(v).plus(10).plus(-4);
        assert_eq!(t, Term::Var { var: v, offset: 6 });
        assert_eq!(Term::Const(5).plus(3), Term::Const(8));
    }

    #[test]
    fn term_eval_uses_lookup() {
        let v = SymVar::new(7, 16);
        let t = Term::var(v).plus(20);
        assert_eq!(t.eval(|_| Some(100)), Some(120));
        assert_eq!(t.eval(|_| None), None);
        assert_eq!(Term::Const(9).eval(|_| None), Some(9));
    }

    #[test]
    fn term_display_formats() {
        let v = SymVar::new(2, 8);
        assert_eq!(Term::var(v).to_string(), "s2");
        assert_eq!(Term::var(v).plus(3).to_string(), "s2+3");
        assert_eq!(Term::var(v).plus(-3).to_string(), "s2-3");
        assert_eq!(Term::constant(42i128).to_string(), "42");
    }
}
