//! Allocation-regression gate (enabled with `--features count-allocs`).
//!
//! Runs the §8.5 outbound department verification — the workload the interner
//! and small-value-storage work (hash-consed formulas, inline interval sets,
//! inline cube literals) was sized against — under the counting global
//! allocator and fails if allocator traffic regresses past a generous
//! ceiling. The ceiling is ~2× the count measured when the gate was
//! introduced (see docs/BENCHMARKS.md for the measured before/after numbers),
//! so it only trips on wholesale regressions (an accidental `clone()` in the
//! hot loop, a lost inline representation), not on noise.
//!
//! Without the feature the binary compiles to nothing; CI runs it as
//! `cargo test -p symnet-bench --features count-allocs --test alloc_regression --release`.

#![cfg(feature = "count-allocs")]

use symnet_core::engine::{ExecConfig, SymNet};
use symnet_models::scenarios::{department, DepartmentConfig};
use symnet_models::tcp_options::symbolic_options_metadata;
use symnet_sefl::packet::symbolic_tcp_packet;
use symnet_sefl::Instruction;

#[global_allocator]
static ALLOC: alloc_counter::CountingAllocator = alloc_counter::CountingAllocator::new();

/// Allocations allowed per measured run (~2× the count at introduction).
const MAX_ALLOCATIONS_PER_RUN: u64 = 8_000; // measured 3 604 at introduction

#[test]
fn sec85_outbound_stays_within_allocation_budget() {
    let (net, topo) = department(DepartmentConfig {
        access_switches: 6,
        mac_entries: 600,
        routes: 50,
    });
    // Single worker: the counters are process-global, so keep the run
    // deterministic and free of scheduler noise.
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default().with_threads(1)
        },
    );
    let outbound = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);

    // Warm-up run: fills the process-wide interner and content memos, so the
    // measured run sees the steady state the benchmarks measure.
    let warm = engine.inject(topo.office_switch, 0, &outbound).path_count();
    assert!(warm > 0, "scenario produced no paths");

    let before = alloc_counter::snapshot();
    let paths = engine.inject(topo.office_switch, 0, &outbound).path_count();
    let delta = alloc_counter::snapshot().since(&before);
    assert_eq!(paths, warm, "re-injection must reproduce the run");

    eprintln!(
        "sec85 outbound: {} allocations, {} deallocations, {} bytes",
        delta.allocations, delta.deallocations, delta.bytes_allocated
    );
    assert!(
        delta.allocations > 0,
        "counting allocator is not installed (delta: {delta:?})"
    );
    assert!(
        delta.allocations <= MAX_ALLOCATIONS_PER_RUN,
        "sec85 outbound run allocated {} times (budget {MAX_ALLOCATIONS_PER_RUN}); \
         allocator traffic regressed — see docs/BENCHMARKS.md",
        delta.allocations
    );
}
