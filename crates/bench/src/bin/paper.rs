//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p symnet-bench --bin paper -- all
//! cargo run --release -p symnet-bench --bin paper -- table1 fig8 table2
//! cargo run --release -p symnet-bench --bin paper -- --full all
//! cargo run --release -p symnet-bench --bin paper -- serve --clients 4
//! ```
//!
//! Without `--full`, reduced workload sizes are used so that every experiment
//! finishes in seconds on a laptop; `--full` uses the paper-scale parameters
//! (hundreds of thousands of MAC-table entries and prefixes). `serve
//! --clients N` switches the serve experiment to the concurrent-serving load
//! test (N closed-loop clients against the epoch-snapshot server).
//!
//! `fuzz --seed S --iters N` runs the differential fuzzing campaign instead
//! of a paper experiment: N mutated scenarios rotating over the generator
//! family, every delivered symbolic path concretized and replayed against the
//! reference network (see `symnet_testgen::fuzz`). Exits non-zero on any
//! symbolic-vs-concrete divergence, or if the built-in canary bug goes
//! undetected. `fuzz` only runs when requested explicitly — it is not part
//! of `all`.
//!
//! `--cache-dir DIR` activates the persistent (disk-backed) solver cache for
//! the whole invocation: a second run pointed at the same directory replays
//! the first run's verdicts from disk and prints identical tables. A summary
//! of persistent-cache traffic is printed on exit. `sec85 --report-json
//! FILE` additionally dumps the sec85 experiment as deterministic JSON
//! (timing zeroed) — the byte-comparison artifact CI uses to assert
//! cold-vs-warm identity.

use symnet_bench::{
    fig8, sec83, sec84, sec85, sec85_report_json, serve, serve_concurrent, table1, table2, table3,
    table4, table5,
};
use symnet_solver::cache;
use symnet_testgen::fuzz::{run_canary, run_fuzz, FuzzConfig};

fn parse_u64(value: &str) -> Option<u64> {
    match value.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => value.parse().ok(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut clients: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut iters: Option<usize> = None;
    let mut cache_dir: Option<String> = None;
    let mut report_json: Option<String> = None;
    let mut selected: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--full" {
            full = true;
        } else if arg == "--cache-dir" {
            cache_dir = iter.next().cloned();
            if cache_dir.is_none() {
                eprintln!("--cache-dir expects a directory path");
                std::process::exit(2);
            }
        } else if let Some(v) = arg.strip_prefix("--cache-dir=") {
            cache_dir = Some(v.to_string());
        } else if arg == "--report-json" {
            report_json = iter.next().cloned();
            if report_json.is_none() {
                eprintln!("--report-json expects a file path");
                std::process::exit(2);
            }
        } else if let Some(v) = arg.strip_prefix("--report-json=") {
            report_json = Some(v.to_string());
        } else if arg == "--clients" {
            clients = iter.next().and_then(|v| v.parse().ok());
            if clients.is_none() {
                eprintln!("--clients expects a positive integer");
                std::process::exit(2);
            }
        } else if let Some(v) = arg.strip_prefix("--clients=") {
            match v.parse() {
                Ok(n) => clients = Some(n),
                Err(_) => {
                    eprintln!("--clients expects a positive integer");
                    std::process::exit(2);
                }
            }
        } else if arg == "--seed" {
            seed = iter.next().and_then(|v| parse_u64(v));
            if seed.is_none() {
                eprintln!("--seed expects an integer (decimal or 0x-hex)");
                std::process::exit(2);
            }
        } else if let Some(v) = arg.strip_prefix("--seed=") {
            seed = parse_u64(v);
            if seed.is_none() {
                eprintln!("--seed expects an integer (decimal or 0x-hex)");
                std::process::exit(2);
            }
        } else if arg == "--iters" {
            iters = iter.next().and_then(|v| v.parse().ok());
            if iters.is_none() {
                eprintln!("--iters expects a positive integer");
                std::process::exit(2);
            }
        } else if let Some(v) = arg.strip_prefix("--iters=") {
            match v.parse() {
                Ok(n) => iters = Some(n),
                Err(_) => {
                    eprintln!("--iters expects a positive integer");
                    std::process::exit(2);
                }
            }
        } else if !arg.starts_with("--") {
            selected.push(arg.as_str());
        }
    }

    if let Some(dir) = &cache_dir {
        match cache::configure(std::path::Path::new(dir)) {
            Ok(true) => println!("persistent-cache: active at {dir}"),
            Ok(false) => {
                eprintln!("persistent-cache: {dir} is locked by another live process; running cold")
            }
            Err(e) => {
                eprintln!("persistent-cache: cannot open {dir}: {e}");
                std::process::exit(2);
            }
        }
    }

    if selected.contains(&"fuzz") {
        let code = fuzz_campaign(seed, iters);
        finish_cache();
        std::process::exit(code);
    }
    let all = selected.is_empty() || selected.contains(&"all");
    let want = |name: &str| all || selected.contains(&name);

    if want("table1") {
        // The paper runs Klee for lengths 1..=7; length 6-7 take a very long
        // time even for the paper (≥30 minutes), so the quick mode stops at 5.
        let max_length = if full { 7 } else { 5 };
        println!("{}", table1(max_length).render());
    }
    if want("fig8") {
        let sizes: &[usize] = if full {
            &[440, 1_000, 10_000, 100_000, 480_000]
        } else {
            &[440, 1_000, 10_000, 50_000]
        };
        let basic_cutoff = 1_000;
        println!("{}", fig8(sizes, basic_cutoff).render());
    }
    if want("table2") {
        let total = if full { 188_500 } else { 20_000 };
        println!("{}", table2(total, total / 50, total / 2).render());
    }
    if want("table3") {
        let (zones, prefixes) = if full { (14, 10_000) } else { (8, 1_000) };
        println!("{}", table3(zones, prefixes).render());
    }
    if want("table4") {
        println!("{}", table4(if full { 4 } else { 3 }).render());
    }
    if want("table5") {
        println!("{}", table5().render());
    }
    if want("sec83") {
        println!("{}", sec83().render());
    }
    if want("sec84") {
        println!("{}", sec84().render());
    }
    if want("sec85") {
        let (sw, macs, routes) = if full { (15, 6_000, 400) } else { (6, 600, 50) };
        println!("{}", sec85(sw, macs, routes).render());
        if let Some(path) = &report_json {
            let json = sec85_report_json(sw, macs, routes);
            if let Err(e) = std::fs::write(path, json) {
                eprintln!("--report-json: cannot write {path}: {e}");
                std::process::exit(2);
            }
            println!("sec85 report written to {path}");
        }
    }
    if want("serve") {
        match clients {
            // Concurrent-serving demo: N closed-loop clients against the
            // epoch-snapshot server, with and without a concurrent delta
            // stream; throughput plus latency mean/median/p99 per row.
            Some(n) => {
                let (leaves, macs_per_leaf, per_client) =
                    if full { (32, 8, 16) } else { (8, 4, 8) };
                println!(
                    "{}",
                    serve_concurrent(&[n.max(1)], per_client, leaves, macs_per_leaf).render()
                );
            }
            // Resident-service demo: a scripted MAC learn/age/roam delta
            // stream over the fan-out topology, incremental re-verification
            // next to the from-scratch baseline (byte-identity asserted per
            // event).
            None => {
                let (leaves, macs_per_leaf) = if full { (32, 8) } else { (8, 4) };
                println!("{}", serve(leaves, macs_per_leaf).render());
            }
        }
    }
    if full {
        // The interning tables back every memo layer; their eviction counters
        // tell whether the paper-scale working set actually fit (evicted == 0)
        // or the memos were silently thrashed.
        print_eviction_stats();
    }
    finish_cache();
}

/// Prints the process-wide interner eviction counters (see
/// `symnet_solver::eviction_stats`).
fn print_eviction_stats() {
    let ev = symnet_solver::eviction_stats();
    println!(
        "interner evictions: formulas {}/{} (evicted/sweeps), intervals {}/{}, content {}/{}",
        ev.formulas.evicted,
        ev.formulas.sweeps,
        ev.intervals.evicted,
        ev.intervals.sweeps,
        ev.content.evicted,
        ev.content.sweeps
    );
}

/// Flushes the persistent cache and prints its traffic summary, if active.
fn finish_cache() {
    if !cache::active() {
        return;
    }
    cache::flush();
    let c = cache::counters();
    println!(
        "persistent-cache: verdict hits={} misses={} stores={}, projection hits={} misses={} stores={}, cex hits={} stores={}",
        c.verdict_hits,
        c.verdict_misses,
        c.verdict_stores,
        c.projection_hits,
        c.projection_misses,
        c.projection_stores,
        c.cex_hits,
        c.cex_stores
    );
    cache::deactivate();
}

/// Runs the differential fuzzing campaign; returns the process exit code.
fn fuzz_campaign(seed: Option<u64>, iters: Option<usize>) -> i32 {
    let config = FuzzConfig {
        seed: seed.unwrap_or(FuzzConfig::default().seed),
        iters: iters.unwrap_or(500),
        ..FuzzConfig::default()
    };

    // The canary proves the oracle can see: a planted TTL double-decrement
    // must be reported before any clean campaign result is believable.
    match run_canary() {
        Ok(failure) => println!(
            "canary: planted TTL bug detected ({})",
            failure.detail.split(':').next_back().unwrap_or("").trim()
        ),
        Err(e) => {
            eprintln!("canary FAILED: {e}");
            return 1;
        }
    }

    println!(
        "fuzz campaign: seed {:#x}, {} iterations, up to {} mutations/case",
        config.seed, config.iters, config.max_mutations
    );
    let report = run_fuzz(&config);
    for (generator, cases) in &report.per_generator {
        println!("  {generator:<20} {cases} cases");
    }
    println!(
        "  {} cases, {} delivered paths replayed, {} mutations applied, {} failure(s)",
        report.cases,
        report.paths_checked,
        report.mutations_applied,
        report.failures.len()
    );
    // Campaigns churn through thousands of interned formulas; surface whether
    // the interning tables had to evict (and thereby thrash the memo layers).
    print_eviction_stats();
    if report.is_clean() {
        println!("fuzz: every symbolic path agreed with its concrete replay");
        0
    } else {
        for failure in &report.failures {
            eprintln!("{failure}");
        }
        1
    }
}
