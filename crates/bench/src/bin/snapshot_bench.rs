//! Snapshots the criterion shim's `target/criterion/**/estimates.json` files
//! into one machine-readable `BENCH_<pr>.json` at the repository root — the
//! ROADMAP's perf-trajectory record, kept per PR so regressions and wins stay
//! visible across re-anchors.
//!
//! ```text
//! cargo bench -p symnet-bench --bench service_deltas
//! cargo run -p symnet-bench --bin snapshot-bench -- BENCH_6.json
//! ```
//!
//! The shim writes flat `{"mean": {"point_estimate": ...}, ...}` objects, so
//! the snapshot simply embeds each file verbatim under its `group/id` label
//! (sorted, for diffable output). No JSON parser is needed or used.
//!
//! `--cache-dir DIR` reports the on-disk footprint of the persistent solver
//! cache the bench run used (its `solver-cache.log`), next to the snapshot —
//! the size trajectory of the store is part of the perf record.

use std::fs;
use std::path::{Path, PathBuf};

fn collect(dir: &Path, base: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect(&path, base, out);
        } else if path.file_name().is_some_and(|n| n == "estimates.json") {
            let label = path
                .parent()
                .and_then(|p| p.strip_prefix(base).ok())
                .map(|p| {
                    p.components()
                        .map(|c| c.as_os_str().to_string_lossy().into_owned())
                        .collect::<Vec<_>>()
                        .join("/")
                })
                .unwrap_or_default();
            if let Ok(body) = fs::read_to_string(&path) {
                out.push((label, body.trim().to_string()));
            }
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut output: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--cache-dir" {
            cache_dir = iter.next().cloned();
            if cache_dir.is_none() {
                eprintln!("--cache-dir expects a directory path");
                std::process::exit(2);
            }
        } else if let Some(v) = arg.strip_prefix("--cache-dir=") {
            cache_dir = Some(v.to_string());
        } else if !arg.starts_with("--") && output.is_none() {
            output = Some(arg.clone());
        } else {
            eprintln!("usage: snapshot-bench [BENCH_<pr>.json] [--cache-dir DIR]");
            std::process::exit(2);
        }
    }
    let output = output.unwrap_or_else(|| "BENCH.json".to_string());
    if let Some(dir) = &cache_dir {
        let log = Path::new(dir).join("solver-cache.log");
        match fs::metadata(&log) {
            Ok(meta) => println!("persistent-cache: {} ({} bytes)", log.display(), meta.len()),
            Err(_) => println!("persistent-cache: {} (no store)", log.display()),
        }
    }
    let base = PathBuf::from("target/criterion");
    let mut series: Vec<(String, String)> = Vec::new();
    collect(&base, &base, &mut series);
    if series.is_empty() {
        eprintln!(
            "no estimates.json under {} — run `cargo bench -p symnet-bench` first",
            base.display()
        );
        std::process::exit(1);
    }
    series.sort();

    let mut json = String::from("{\n  \"unit\": \"nanoseconds\",\n  \"series\": {\n");
    for (i, (label, body)) in series.iter().enumerate() {
        let comma = if i + 1 < series.len() { "," } else { "" };
        json.push_str(&format!("    \"{label}\": {body}{comma}\n"));
    }
    json.push_str("  }\n}\n");
    fs::write(&output, &json).expect("snapshot written");
    println!("snapshot: {} series -> {output}", series.len());
}
