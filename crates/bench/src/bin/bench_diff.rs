//! CI bench-regression gate: diffs a fresh `snapshot-bench` output (usually
//! `BENCH_ci.json`) against a committed baseline (`BENCH_<pr>.json`) and
//! fails when a gated series' mean regresses by more than the threshold.
//!
//! ```text
//! cargo bench -p symnet-bench
//! cargo run --release -p symnet-bench --bin snapshot-bench -- BENCH_ci.json
//! cargo run --release -p symnet-bench --bin bench-diff -- BENCH_8.json BENCH_ci.json
//! ```
//!
//! Only a curated allowlist of series is gated: the single-process,
//! fixed-size experiments whose means are stable enough on shared CI runners
//! to make a 25% swing meaningful. Load-dependent series (the concurrent
//! serving closed loops) and anything not in the allowlist are reported but
//! never fail the gate. Missing series — a bench that did not run in this CI
//! job, or a series that did not exist at baseline time — are reported and
//! skipped, so partial bench runs stay diffable.
//!
//! Exit status: 0 when no gated regression exceeds the threshold, 1
//! otherwise. `--threshold <percent>` overrides the default 25.

use serde_json::{Number, Value};
use std::process::ExitCode;

/// Series gated by the regression check (prefix match on `group/id` labels).
/// Curated for CI stability: deterministic single-injection experiments with
/// fixed workload sizes.
const GATED_PREFIXES: &[&str] = &[
    "sec85_department/",
    "service_deltas/",
    "fig8_switch_models/",
    "full_scale/",
    "generators/",
    "persistent_cache/",
];

/// Default regression threshold: mean more than 25% above baseline fails.
const DEFAULT_THRESHOLD_PERCENT: f64 = 25.0;

fn mean_ns(series: &Value) -> Option<f64> {
    match series.get_key("mean").get_key("point_estimate") {
        Value::Number(Number::Int(v)) => Some(*v as f64),
        Value::Number(Number::Float(v)) => Some(*v),
        _ => None,
    }
}

fn load(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let value: Value =
        serde_json::from_str(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))?;
    let Value::Object(series) = value.get_key("series") else {
        return Err(format!("{path}: no \"series\" object"));
    };
    let mut out = Vec::new();
    for (label, body) in series.iter() {
        match mean_ns(body) {
            Some(mean) => out.push((label.clone(), mean)),
            None => eprintln!("bench-diff: {path}: {label}: no mean.point_estimate, skipped"),
        }
    }
    Ok(out)
}

fn gated(label: &str) -> bool {
    GATED_PREFIXES.iter().any(|p| label.starts_with(p))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD_PERCENT;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            match iter.next().and_then(|v| v.parse().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold expects a number (percent)");
                    return ExitCode::from(2);
                }
            }
        } else {
            paths.push(arg.clone());
        }
    }
    let [baseline_path, current_path] = paths.as_slice() else {
        eprintln!("usage: bench-diff <baseline.json> <current.json> [--threshold <percent>]");
        return ExitCode::from(2);
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench-diff: {err}");
            }
            return ExitCode::from(2);
        }
    };

    let mut regressions = Vec::new();
    let mut compared = 0usize;
    for (label, base_mean) in &baseline {
        let Some((_, cur_mean)) = current.iter().find(|(l, _)| l == label) else {
            println!("bench-diff: {label}: not in {current_path} (bench not run), skipped");
            continue;
        };
        let delta_percent = (cur_mean - base_mean) / base_mean * 100.0;
        let gate = gated(label);
        let verdict = if gate && delta_percent > threshold {
            regressions.push((label.clone(), delta_percent));
            "REGRESSED"
        } else if gate {
            "ok"
        } else {
            "info"
        };
        compared += 1;
        println!(
            "bench-diff: {label}: {base_mean:.0} -> {cur_mean:.0} ns ({delta_percent:+.1}%) [{verdict}]"
        );
    }
    for (label, _) in &current {
        if !baseline.iter().any(|(l, _)| l == label) {
            println!("bench-diff: {label}: new series (not in {baseline_path})");
        }
    }

    if regressions.is_empty() {
        println!(
            "bench-diff: {compared} series compared, no gated mean regression above {threshold}%"
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-diff: {} gated series regressed more than {threshold}%:",
            regressions.len()
        );
        for (label, delta) in &regressions {
            eprintln!("  {label}: {delta:+.1}%");
        }
        ExitCode::FAILURE
    }
}
