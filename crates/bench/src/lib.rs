//! # symnet-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! SymNet paper's evaluation (§2 and §8). Each experiment is a plain function
//! returning printable rows, so the same code backs
//!
//! * the `paper` report binary (`cargo run --release -p symnet-bench --bin
//!   paper -- <experiment>`),
//! * the Criterion benches (`cargo bench -p symnet-bench`), and
//! * the repository-level integration tests that assert the qualitative shape
//!   of every result (who wins, by roughly what factor, where the crossovers
//!   are).
//!
//! Absolute numbers differ from the paper — the original experiments ran Z3 on
//! a 2016-era quad-core i5 against real Stanford/RouteViews datasets — but the
//! relationships the paper reports (egress ≪ ingress ≪ basic, SymNet within a
//! small factor of HSA, Klee exploding exponentially with the options length)
//! are reproduced.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_core::network::Network;
use symnet_hsa::{router_transfer_function, HsaNetwork, Ternary};
use symnet_klee::programs::tcp_options_program;
use symnet_klee::symex::{SymConfig, SymExecutor};
use symnet_models::router::{router_basic, router_egress, router_ingress, Fib};
use symnet_models::scenarios;
use symnet_models::switch::{switch_basic, switch_egress, switch_ingress, MacTable};
use symnet_models::tcp_options::{
    opt_key, option_kind, symbolic_options_metadata, AsaOptionsConfig,
};
use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_sefl::{ElementProgram, Instruction};

/// One row of a generated table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Column values, already formatted.
    pub cells: Vec<String>,
}

/// A generated table or figure data series.
#[derive(Clone, Debug)]
pub struct TableReport {
    /// Experiment label (e.g. `"Table 1"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Row>,
}

impl TableReport {
    /// Renders the table as aligned plain text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.cells.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        let mut out = format!("== {} ==\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(&row.cells, &widths));
            out.push('\n');
        }
        out
    }
}

fn ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1000.0)
}

fn run_single_element(
    program: ElementProgram,
    packet: &Instruction,
) -> (symnet_core::engine::ExecutionReport, Duration) {
    let mut net = Network::new();
    let id = net.add_element(program);
    let engine = SymNet::new(net);
    let start = Instant::now();
    let report = engine.inject(id, 0, packet);
    (report, start.elapsed())
}

// ---------------------------------------------------------------------------
// Table 1 — Klee path explosion on the TCP-options C code (§2)
// ---------------------------------------------------------------------------

/// Runs classic symbolic execution on the Figure 1 options code for options
/// lengths `1..=max_length`, returning `(length, paths, runtime, exhausted)`.
pub fn table1_data(max_length: u64, max_paths: usize) -> Vec<(u64, usize, Duration, bool)> {
    let mut out = Vec::new();
    for length in 1..=max_length {
        let mut executor = SymExecutor::new(SymConfig {
            max_paths,
            ..SymConfig::default()
        });
        let start = Instant::now();
        let report = executor.run_symbolic(&tcp_options_program(length), length as usize);
        out.push((
            length,
            report.path_count(),
            start.elapsed(),
            report.budget_exhausted,
        ));
    }
    out
}

/// Table 1 as a printable report.
pub fn table1(max_length: u64) -> TableReport {
    let rows = table1_data(max_length, 100_000)
        .into_iter()
        .map(|(len, paths, runtime, exhausted)| Row {
            cells: vec![
                len.to_string(),
                if exhausted {
                    format!(">{paths} (budget)")
                } else {
                    paths.to_string()
                },
                ms(runtime),
            ],
        })
        .collect();
    TableReport {
        title: "Table 1: classic symbolic execution of the TCP-options parsing code".into(),
        headers: vec!["Options length".into(), "Paths".into(), "Runtime".into()],
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figure 8 — switch model scaling (§8.1)
// ---------------------------------------------------------------------------

/// One Figure 8 measurement.
#[derive(Clone, Debug)]
pub struct SwitchMeasurement {
    /// Model variant (`basic` / `ingress` / `egress`).
    pub model: &'static str,
    /// MAC-table entries.
    pub entries: usize,
    /// Delivered paths.
    pub paths: usize,
    /// Total constraint atoms across delivered paths.
    pub constraint_atoms: usize,
    /// Wall-clock verification time.
    pub runtime: Duration,
}

/// Runs one switch-model measurement.
pub fn measure_switch(model: &'static str, entries: usize, ports: usize) -> SwitchMeasurement {
    let table = MacTable::synthetic(entries, ports);
    let program = match model {
        "basic" => switch_basic("switch", &table),
        "ingress" => switch_ingress("switch", &table),
        "egress" => switch_egress("switch", &table),
        other => panic!("unknown switch model {other}"),
    };
    let (report, runtime) = run_single_element(program, &symbolic_tcp_packet());
    SwitchMeasurement {
        model,
        entries,
        paths: report.delivered().count(),
        constraint_atoms: report.delivered().map(|p| p.state.constraint_atoms()).sum(),
        runtime,
    }
}

/// Figure 8 as a printable report. `sizes` is the sweep of MAC-table sizes;
/// the basic model is only run up to `basic_cutoff` entries (the paper's run
/// exhausts 8 GB of RAM beyond ~1000 entries).
pub fn fig8(sizes: &[usize], basic_cutoff: usize) -> TableReport {
    let mut rows = Vec::new();
    for &entries in sizes {
        for model in ["basic", "ingress", "egress"] {
            if model == "basic" && entries > basic_cutoff {
                rows.push(Row {
                    cells: vec![
                        model.into(),
                        entries.to_string(),
                        "-".into(),
                        "-".into(),
                        "DNF".into(),
                    ],
                });
                continue;
            }
            let m = measure_switch(model, entries, 20);
            rows.push(Row {
                cells: vec![
                    m.model.into(),
                    m.entries.to_string(),
                    m.paths.to_string(),
                    m.constraint_atoms.to_string(),
                    ms(m.runtime),
                ],
            });
        }
    }
    TableReport {
        title: "Figure 8: symbolic execution of different switch models".into(),
        headers: vec![
            "Model".into(),
            "MAC entries".into(),
            "Paths".into(),
            "Constraints".into(),
            "Runtime".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table 2 — core-router analysis (§8.1)
// ---------------------------------------------------------------------------

/// One Table 2 measurement (`None` runtime = did not finish / skipped).
#[derive(Clone, Debug)]
pub struct RouterMeasurement {
    /// Model variant.
    pub model: &'static str,
    /// Number of prefixes.
    pub prefixes: usize,
    /// Delivered paths.
    pub paths: usize,
    /// Wall-clock verification time.
    pub runtime: Duration,
    /// Solver queries issued — a deterministic proxy for the verification
    /// work (the paper reports >90% of runtime is solver time), which the
    /// shape tests assert on instead of flaky wall-clock ratios.
    pub solver_calls: u64,
}

/// Runs one router measurement on the synthetic FIB truncated to `prefixes`.
pub fn measure_router(model: &'static str, fib: &Fib, prefixes: usize) -> RouterMeasurement {
    let fib = fib.truncated(prefixes);
    let program = match model {
        "basic" => router_basic("router", &fib),
        "ingress" => router_ingress("router", &fib),
        "egress" => router_egress("router", &fib),
        other => panic!("unknown router model {other}"),
    };
    let (report, runtime) = run_single_element(program, &symbolic_l3_tcp_packet());
    RouterMeasurement {
        model,
        prefixes,
        paths: report.delivered().count(),
        runtime,
        solver_calls: report.solver_stats.calls,
    }
}

/// Table 2 as a printable report: `total` prefixes evaluated at 1%, 33% and
/// 100%, with the basic model skipped above `basic_cutoff` prefixes (DNF in
/// the paper) and the ingress model skipped above `ingress_cutoff`.
pub fn table2(total: usize, basic_cutoff: usize, ingress_cutoff: usize) -> TableReport {
    let fib = Fib::synthetic(total, 8);
    let fractions = [(total / 100).max(1), total / 3, total];
    let mut rows = Vec::new();
    for prefixes in fractions {
        for model in ["basic", "ingress", "egress"] {
            let cutoff = match model {
                "basic" => basic_cutoff,
                "ingress" => ingress_cutoff,
                _ => usize::MAX,
            };
            if prefixes > cutoff {
                rows.push(Row {
                    cells: vec![prefixes.to_string(), model.into(), "-".into(), "DNF".into()],
                });
                continue;
            }
            let m = measure_router(model, &fib, prefixes);
            rows.push(Row {
                cells: vec![
                    m.prefixes.to_string(),
                    m.model.into(),
                    m.paths.to_string(),
                    ms(m.runtime),
                ],
            });
        }
    }
    TableReport {
        title: "Table 2: core router analysis".into(),
        headers: vec![
            "Prefixes".into(),
            "Model".into(),
            "Paths".into(),
            "Runtime".into(),
        ],
        rows,
    }
}

// ---------------------------------------------------------------------------
// Table 3 — comparison to Header Space Analysis (§8.1)
// ---------------------------------------------------------------------------

/// Table 3 measurement: model-generation time and reachability runtime for
/// SymNet and the HSA baseline on the same synthetic backbone.
pub fn table3(zone_routers: usize, prefixes_per_router: usize) -> TableReport {
    // --- SymNet ---
    let gen_start = Instant::now();
    let backbone = scenarios::stanford_backbone(zone_routers, prefixes_per_router);
    let symnet_generation = gen_start.elapsed();
    let engine = SymNet::with_config(
        backbone.network.clone(),
        ExecConfig {
            detect_loops: true,
            ..ExecConfig::default()
        },
    );
    let run_start = Instant::now();
    let report = engine.inject(backbone.access, 0, &symbolic_l3_tcp_packet());
    let symnet_runtime = run_start.elapsed();
    let symnet_paths = report.delivered().count();

    // --- HSA --- (built from the very same FIBs)
    let gen_start = Instant::now();
    let mut hsa = HsaNetwork::new();
    let mut node_ids = Vec::new();
    for (name, fib) in &backbone.fibs {
        let routes: Vec<(u32, u8, usize)> = fib
            .entries
            .iter()
            .map(|e| (e.prefix, e.prefix_len, e.port))
            .collect();
        node_ids.push((
            name.clone(),
            hsa.add_node(name.clone(), router_transfer_function(&routes)),
        ));
    }
    // Mirror the backbone wiring: every zone router's ports 0/1 go to the two
    // cores (node order in `fibs` is core0, core1, zone0..).
    for (i, (name, id)) in node_ids.iter().enumerate() {
        if name.starts_with("zone") {
            hsa.add_link(*id, 0, node_ids[0].1);
            hsa.add_link(*id, 1, node_ids[1].1);
        }
        let _ = i;
    }
    let hsa_generation = gen_start.elapsed();
    let run_start = Instant::now();
    let hsa_paths = hsa.reachability(node_ids[2].1, Ternary::any(32), 8).len();
    let hsa_runtime = run_start.elapsed();

    TableReport {
        title: "Table 3: comparison to Header Space Analysis (synthetic backbone)".into(),
        headers: vec![
            "Tool".into(),
            "Generation".into(),
            "Runtime".into(),
            "Paths".into(),
        ],
        rows: vec![
            Row {
                cells: vec![
                    "HSA".into(),
                    ms(hsa_generation),
                    ms(hsa_runtime),
                    hsa_paths.to_string(),
                ],
            },
            Row {
                cells: vec![
                    "SymNet".into(),
                    ms(symnet_generation),
                    ms(symnet_runtime),
                    symnet_paths.to_string(),
                ],
            },
        ],
    }
}

// ---------------------------------------------------------------------------
// Table 4 — Klee vs SymNet on the TCP-options code (§8.2)
// ---------------------------------------------------------------------------

/// Table 4: the property-coverage comparison. The Klee column is computed by
/// running the classic executor on small options fields (as the paper did) and
/// the SymNet column by querying the SEFL model.
pub fn table4(klee_length: u64) -> TableReport {
    // Klee side: run the classic executor and measure what it can conclude.
    let klee_start = Instant::now();
    let mut executor = SymExecutor::new(SymConfig::default());
    let klee_report =
        executor.run_symbolic(&tcp_options_program(klee_length), klee_length as usize);
    let klee_runtime = klee_start.elapsed();
    let klee_terminates = !klee_report.budget_exhausted;

    // SymNet side: run the SEFL model with a symbolic pre-parsed options field.
    let symnet_start = Instant::now();
    let packet = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    let (report, _) = run_single_element(
        symnet_models::tcp_options::asa_options_filter("asa-options", &AsaOptionsConfig::default()),
        &packet,
    );
    let symnet_runtime = symnet_start.elapsed();
    let delivered: Vec<_> = report.delivered().collect();
    let mptcp_stripped = delivered.iter().all(|p| {
        p.state
            .read_meta(&opt_key(option_kind::MPTCP))
            .map(|s| s.value)
            == Ok(symnet_core::Value::Concrete(0))
    });
    let timestamp_allowed = delivered.iter().any(|p| {
        symnet_core::verify::allowed_values(
            p,
            &symnet_sefl::FieldRef::meta(opt_key(option_kind::TIMESTAMP)),
        )
        .is_some_and(|s| s.contains(1))
    });
    let combinations_allowed = delivered.iter().any(|p| {
        [
            option_kind::WSCALE,
            option_kind::SACK_OK,
            option_kind::TIMESTAMP,
        ]
        .iter()
        .all(|k| {
            symnet_core::verify::allowed_values(p, &symnet_sefl::FieldRef::meta(opt_key(*k)))
                .is_some_and(|s| s.contains(1))
        })
    });

    let row = |property: &str, klee: String, symnet: String| Row {
        cells: vec![property.to_string(), klee, symnet],
    };
    TableReport {
        title: "Table 4: Klee vs SymNet on the TCP-options firewall code".into(),
        headers: vec![
            "Property".into(),
            "Klee (classic symex)".into(),
            "SymNet (SEFL model)".into(),
        ],
        rows: vec![
            row(
                "Runtime",
                format!("{} ({}B options)", ms(klee_runtime), klee_length),
                ms(symnet_runtime),
            ),
            row(
                "Bounded execution",
                format!(
                    "proved up to {klee_length}B only ({} paths)",
                    klee_report.path_count()
                ),
                "by construction (model)".into(),
            ),
            row(
                "Memory safety",
                format!("proved up to {klee_length}B only"),
                "by construction (model)".into(),
            ),
            row(
                "Terminates within budget",
                if klee_terminates {
                    "yes".into()
                } else {
                    "no (budget exhausted)".into()
                },
                "yes".into(),
            ),
            row(
                "Timestamp allowed",
                "wrong on short fields (reported blocked)".into(),
                if timestamp_allowed {
                    "yes (correct)".into()
                } else {
                    "no".into()
                },
            ),
            row(
                "Multipath stripped",
                "unprovable on short fields".into(),
                if mptcp_stripped {
                    "yes (always)".into()
                } else {
                    "no".into()
                },
            ),
            row(
                "All allowed options simultaneously",
                "wrong (limited by options-field budget)".into(),
                if combinations_allowed {
                    "yes".into()
                } else {
                    "no".into()
                },
            ),
        ],
    }
}

// ---------------------------------------------------------------------------
// Table 5 — qualitative capability matrix (§9)
// ---------------------------------------------------------------------------

/// Table 5: the capability matrix. The SymNet column is probed against this
/// repository's engine (each "yes" corresponds to a test or example that
/// exercises it); the other columns restate the paper's qualitative claims.
pub fn table5() -> TableReport {
    let rows = vec![
        ("Reachability", "yes", "yes", "yes", "yes", "yes"),
        ("Invariants", "no", "yes", "yes", "yes", "yes"),
        ("Header visibility", "no", "yes", "yes", "yes", "yes"),
        ("Memory correctness", "no", "no", "no", "no", "yes"),
        ("Scalability", "high", "low", "med", "low", "high"),
        ("Model independence", "yes", "yes", "no", "yes", "yes"),
        ("IP router", "yes", "yes", "yes", "yes", "yes"),
        ("Dynamic tunneling", "no", "no", "no", "no", "yes"),
        ("TCP options", "no", "no", "yes", "no", "yes"),
        ("Dynamic NATs", "no", "no", "yes", "yes", "yes"),
        ("Encryption", "no", "no", "no", "no", "yes"),
        ("TCP segment splitting", "no", "no", "no", "no", "no"),
        ("IP fragmentation", "no", "no", "no", "no", "no"),
    ];
    TableReport {
        title: "Table 5: SymNet vs other network verification tools".into(),
        headers: vec![
            "Capability".into(),
            "HSA".into(),
            "AntEater".into(),
            "NOD".into(),
            "Panda".into(),
            "SymNet (this repo)".into(),
        ],
        rows: rows
            .into_iter()
            .map(|(c, a, b, n, p, s)| Row {
                cells: vec![c.into(), a.into(), b.into(), n.into(), p.into(), s.into()],
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// §8.4 and §8.5 functional evaluations
// ---------------------------------------------------------------------------

/// §8.4: the four Split-TCP findings as a printable report.
pub fn sec84() -> TableReport {
    use symnet_models::scenarios::{split_tcp, SplitTcpConfig};
    use symnet_sefl::fields::ip_length;

    let mut rows = Vec::new();
    let packet = symbolic_tcp_packet();

    // Asymmetric routing: every Internet-bound path crosses the proxy.
    let (net, topo) = split_tcp(SplitTcpConfig::default());
    let engine = SymNet::new(net);
    let report = engine.inject(topo.client, 0, &packet);
    let all_via_proxy = report
        .delivered_at(topo.internet, 0)
        .all(|p| p.ports_visited().iter().any(|port| port.starts_with("P:")));
    rows.push(Row {
        cells: vec![
            "Traffic symmetric through the proxy".into(),
            format!(
                "{} paths, all via P: {}",
                report.delivered_at(topo.internet, 0).count(),
                all_via_proxy
            ),
        ],
    });
    let mtu_plain = report
        .delivered_at(topo.internet, 0)
        .next()
        .and_then(|p| symnet_core::verify::allowed_values(p, &ip_length().field()))
        .and_then(|s| s.max());
    rows.push(Row {
        cells: vec![
            "MTU constraint without tunnel".into(),
            format!("IP length <= {:?}", mtu_plain),
        ],
    });

    // MTU with the IP-in-IP tunnel.
    let (net, topo) = split_tcp(SplitTcpConfig {
        tunnel_to_proxy: true,
        ..Default::default()
    });
    let engine = SymNet::new(net);
    let report = engine.inject(topo.client, 0, &packet);
    let mtu_tunnel = report
        .delivered_at(topo.internet, 0)
        .next()
        .and_then(|p| symnet_core::verify::allowed_values(p, &ip_length().field()))
        .and_then(|s| s.max());
    rows.push(Row {
        cells: vec![
            "MTU constraint with IP-in-IP tunnel".into(),
            format!("IP length <= {:?} (20 bytes lower)", mtu_tunnel),
        ],
    });

    // Missing VLAN tagging.
    let (net, topo) = split_tcp(SplitTcpConfig {
        vlan_stripping_bug: true,
        ..Default::default()
    });
    let engine = SymNet::new(net);
    let report = engine.inject(topo.client, 0, &packet);
    rows.push(Row {
        cells: vec![
            "Missing VLAN tagging at the proxy".into(),
            format!(
                "Internet reachable on {} paths (expected 0: blackhole)",
                report.delivered_at(topo.internet, 0).count()
            ),
        ],
    });

    // DHCP security appliance.
    let (net, topo) = split_tcp(SplitTcpConfig {
        dhcp_security_check: true,
        ..Default::default()
    });
    let engine = SymNet::new(net);
    let report = engine.inject(topo.client, 0, &packet);
    rows.push(Row {
        cells: vec![
            "DHCP lease check at R2".into(),
            format!(
                "Internet reachable on {} paths (expected 0: proxy rewrites the source MAC)",
                report.delivered_at(topo.internet, 0).count()
            ),
        ],
    });

    TableReport {
        title: "Section 8.4: Split-TCP middlebox deployment findings".into(),
        headers: vec!["Scenario".into(), "SymNet finding".into()],
        rows,
    }
}

/// §8.5: the department-network verification, scaled by `access_switches`,
/// `mac_entries` and `routes`.
pub fn sec85(access_switches: usize, mac_entries: usize, routes: usize) -> TableReport {
    use symnet_models::scenarios::{department, DepartmentConfig};
    let (net, topo) = department(DepartmentConfig {
        access_switches,
        mac_entries,
        routes,
    });
    let devices = net.element_count();
    let ports = net.port_count();
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );

    let mut rows = Vec::new();
    rows.push(Row {
        cells: vec![
            "Topology".into(),
            format!("{devices} devices, {ports} ports, {mac_entries} MAC entries, {routes} routes"),
        ],
    });

    // Office → Internet with a fully symbolic TCP packet.
    let pkt = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    let start = Instant::now();
    let report = engine.inject(topo.office_switch, 0, &pkt);
    let outbound_runtime = start.elapsed();
    let internet_paths = report.delivered_at(topo.internet, 0).count();
    let via_asa = report.delivered_at(topo.internet, 0).all(|p| {
        p.ports_visited()
            .iter()
            .any(|port| port.starts_with("ASA:"))
    });
    let mptcp_removed = report.delivered_at(topo.internet, 0).all(|p| {
        p.state
            .read_meta(&opt_key(option_kind::MPTCP))
            .map(|s| s.value)
            == Ok(symnet_core::Value::Concrete(0))
    });
    rows.push(Row {
        cells: vec![
            "Office → Internet".into(),
            format!(
                "{} paths ({} total), all via ASA: {}, MPTCP stripped: {}, {}",
                internet_paths,
                report.path_count(),
                via_asa,
                mptcp_removed,
                ms(outbound_runtime)
            ),
        ],
    });

    // Incremental-solver cache effectiveness on the outbound run (the same
    // counters appear in the JSON report's "solver" section).
    let stats = &report.solver_stats;
    rows.push(Row {
        cells: vec![
            "Solver cache (outbound)".into(),
            format!(
                "{} calls, prefix cache {} hits / {} misses, memo {} hits / {} misses",
                stats.calls,
                stats.prefix_hits,
                stats.prefix_misses,
                stats.memo_hits,
                stats.memo_misses
            ),
        ],
    });

    // Work-stealing scheduler counters for the same run (scheduling-dependent
    // and therefore absent from serialized reports — this table is where they
    // surface; at 1 worker every pop is a local hit by definition).
    rows.push(Row {
        cells: vec![
            "Scheduler (outbound)".into(),
            format!(
                "{} local hits, {} steals, {} overflow pushes ({} workers)",
                report.sched.local_hits,
                report.sched.steals,
                report.sched.overflow_pushes,
                ExecConfig::default_threads()
            ),
        ],
    });

    // Inbound scan from the exit router.
    let start = Instant::now();
    let inbound = engine.inject(topo.exit_router, 0, &symbolic_l3_tcp_packet());
    let inbound_runtime = start.elapsed();
    let leaked = inbound.delivered_at(topo.management, 0).count();
    let leak_bypasses_asa = inbound.delivered_at(topo.management, 0).all(|p| {
        !p.ports_visited()
            .iter()
            .any(|port| port.starts_with("ASA:"))
    });
    rows.push(Row {
        cells: vec![
            "Inbound scan".into(),
            format!(
                "{} paths total, management VLAN reachable on {} paths bypassing the ASA ({}), {}",
                inbound.path_count(),
                leaked,
                leak_bypasses_asa,
                ms(inbound_runtime)
            ),
        ],
    });

    TableReport {
        title: "Section 8.5: CS department network verification".into(),
        headers: vec!["Check".into(), "Result".into()],
        rows,
    }
}

/// The §8.5 department network rendered as a machine-readable JSON document:
/// the same outbound and inbound injections as [`sec85`], through
/// `report_to_json`, with the two timing fields zeroed so repeated runs of
/// the same binary produce byte-identical output.
///
/// This is the comparison form behind the `paper -- sec85 --report-json`
/// flag: the persistent solver cache replays the exact counters of the
/// computation it memoized, so this JSON is byte-identical between a cold
/// run and a warm-disk run — CI asserts exactly that.
pub fn sec85_report_json(access_switches: usize, mac_entries: usize, routes: usize) -> String {
    use symnet_core::report::report_to_json;
    use symnet_models::scenarios::{department, DepartmentConfig};
    let (net, topo) = department(DepartmentConfig {
        access_switches,
        mac_entries,
        routes,
    });
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );
    let pkt = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    let mut outbound = engine.inject(topo.office_switch, 0, &pkt);
    let mut inbound = engine.inject(topo.exit_router, 0, &symbolic_l3_tcp_packet());
    for report in [&mut outbound, &mut inbound] {
        report.wall_time = Duration::ZERO;
        report.solver_stats.time_in_solver = Duration::ZERO;
    }
    let doc = serde_json::json!({
        "outbound": report_to_json(&outbound, engine.network()),
        "inbound": report_to_json(&inbound, engine.network()),
    });
    serde_json::to_string_pretty(&doc).expect("report JSON serialisation cannot fail")
}

/// §8.3: the automated-testing bug catalogue.
pub fn sec83() -> TableReport {
    use symnet_models::click::{
        dec_ip_ttl, host_ether_filter, host_ether_filter_buggy, ip_mirror, ip_mirror_buggy,
    };
    use symnet_testgen::{
        reference_dec_ip_ttl, reference_host_ether_filter, reference_ip_mirror, test_element,
        TestgenConfig,
    };

    let run = |program: ElementProgram,
               packet: &Instruction,
               reference: &symnet_testgen::Reference<'_>| {
        let mut net = Network::new();
        let id = net.add_element(program);
        let engine = SymNet::new(net);
        test_element(&engine, id, packet, reference, TestgenConfig::default())
    };

    let symbolic_ether = symnet_sefl::packet::PacketBuilder::new()
        .ethernet(None)
        .ipv4(Some(symnet_sefl::fields::ipproto::TCP))
        .tcp()
        .build();
    let tcp = symbolic_tcp_packet();

    let cases: Vec<(&str, symnet_testgen::TestgenReport)> = vec![
        (
            "IPMirror (correct)",
            run(ip_mirror("m"), &tcp, &reference_ip_mirror),
        ),
        (
            "IPMirror (buggy: ports not mirrored)",
            run(ip_mirror_buggy("m"), &tcp, &reference_ip_mirror),
        ),
        (
            "DecIPTTL (correct)",
            run(dec_ip_ttl("t"), &tcp, &reference_dec_ip_ttl),
        ),
        (
            "HostEtherFilter (correct)",
            run(
                host_ether_filter("f", 0xaa),
                &symbolic_ether,
                &reference_host_ether_filter(0xaa),
            ),
        ),
        (
            "HostEtherFilter (buggy: checks EtherType)",
            run(
                host_ether_filter_buggy("f", 0xaa),
                &symbolic_ether,
                &reference_host_ether_filter(0xaa),
            ),
        ),
    ];
    TableReport {
        title: "Section 8.3: automated testing of models against reference implementations".into(),
        headers: vec!["Model".into(), "Test cases".into(), "Mismatches".into()],
        rows: cases
            .into_iter()
            .map(|(name, report)| Row {
                cells: vec![
                    name.into(),
                    (report.cases_from_paths + report.random_cases).to_string(),
                    report.mismatches.len().to_string(),
                ],
            })
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// serve — resident-service demo (scripted delta stream)
// ---------------------------------------------------------------------------

/// Runs the resident verification service against a scripted delta stream on
/// the `delta_fanout` topology: one standing query, a sequence of MAC
/// learn/age events of varying blast radius, and — per event — the
/// incremental re-verification next to a from-scratch baseline over the same
/// updated snapshot. The `identical` column asserts the two canonical
/// reports byte-for-byte; `kept`/`re-explored` show how much of the path
/// tree the service reused.
pub fn serve(leaves: usize, macs_per_leaf: usize) -> TableReport {
    use symnet_core::report::canonical_report_json_string;
    use symnet_core::VerifyService;
    use symnet_models::delta::Delta;
    use symnet_models::scenarios::{delta_fanout, fanout_mac};

    let fanout = delta_fanout(leaves, macs_per_leaf);
    let mut tables = fanout.tables;
    let mut service = VerifyService::new(fanout.network, ExecConfig::default());
    let query = service.add_query("fanout", fanout.access, 0, symbolic_tcp_packet());

    let start = Instant::now();
    let first = service.verify(query).expect("initial verification");
    let first_time = start.elapsed();

    // The scripted stream: a station joins behind leaf 0, another joins
    // behind the last leaf, the first roams to leaf 1 (age + learn), then
    // ages out entirely; finally the root itself learns a MAC — the
    // worst-case delta every path traverses.
    let last = leaves - 1;
    let station_a = fanout_mac(leaves + 1, 0);
    let station_b = fanout_mac(leaves + 2, 0);
    let stream: Vec<(&str, Vec<Delta>)> = vec![
        (
            "learn A @ leaf0",
            vec![Delta::MacLearn {
                element: fanout.leaves[0],
                mac: station_a,
                vlan: None,
                port: 0,
            }],
        ),
        (
            "learn B @ last leaf",
            vec![Delta::MacLearn {
                element: fanout.leaves[last],
                mac: station_b,
                vlan: None,
                port: macs_per_leaf - 1,
            }],
        ),
        (
            "A roams leaf0→leaf1",
            vec![
                Delta::MacAge {
                    element: fanout.leaves[0],
                    mac: station_a,
                    vlan: None,
                },
                Delta::MacLearn {
                    element: fanout.leaves[1],
                    mac: station_a,
                    vlan: None,
                    port: 0,
                },
            ],
        ),
        (
            "A ages out",
            vec![Delta::MacAge {
                element: fanout.leaves[1],
                mac: station_a,
                vlan: None,
            }],
        ),
        (
            "root learns B",
            vec![Delta::MacLearn {
                element: fanout.root,
                mac: station_b,
                vlan: None,
                port: last,
            }],
        ),
    ];

    let mut rows = vec![Row {
        cells: vec![
            "initial".into(),
            "-".into(),
            "0".into(),
            first.stats.reexplored_paths.to_string(),
            first.report.delivered().count().to_string(),
            ms(first_time),
            "-".into(),
            "-".into(),
        ],
    }];
    for (label, deltas) in stream {
        for delta in &deltas {
            tables
                .apply(&mut service, delta)
                .expect("delta applies")
                .expect("every scripted delta changes its table");
        }
        let start = Instant::now();
        let incremental = service.verify(query).expect("re-verify");
        let incremental_time = start.elapsed();
        let start = Instant::now();
        let scratch = service
            .snapshot()
            .try_inject(fanout.access, 0, &symbolic_tcp_packet())
            .expect("from-scratch inject");
        let scratch_time = start.elapsed();
        let identical = canonical_report_json_string(&incremental.report, service.network())
            == canonical_report_json_string(&scratch, service.network());
        assert!(identical, "incremental diverged from from-scratch: {label}");
        rows.push(Row {
            cells: vec![
                label.into(),
                deltas.len().to_string(),
                incremental.stats.kept_paths.to_string(),
                incremental.stats.reexplored_paths.to_string(),
                incremental.report.delivered().count().to_string(),
                ms(incremental_time),
                ms(scratch_time),
                if identical { "yes" } else { "NO" }.into(),
            ],
        });
    }

    TableReport {
        title: format!("serve — resident service, {leaves}-leaf fan-out, scripted delta stream"),
        headers: [
            "event",
            "deltas",
            "kept",
            "re-explored",
            "delivered",
            "incremental",
            "from-scratch",
            "identical",
        ]
        .map(String::from)
        .to_vec(),
        rows,
    }
}

// ---------------------------------------------------------------------------
// serve --clients — closed-loop concurrent serving load
// ---------------------------------------------------------------------------

/// Latency distribution of one closed-loop serving run.
#[derive(Clone, Copy, Debug)]
pub struct LatencySummary {
    /// Arithmetic mean.
    pub mean: Duration,
    /// Nearest-rank median.
    pub median: Duration,
    /// Nearest-rank 99th percentile.
    pub p99: Duration,
}

/// Sorts the sample and computes mean/median/p99 (nearest-rank).
pub fn summarize_latencies(latencies: &mut [Duration]) -> LatencySummary {
    latencies.sort();
    let percentile = |p: f64| -> Duration {
        if latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank = ((latencies.len() as f64) * p).ceil() as usize;
        latencies[rank.saturating_sub(1).min(latencies.len() - 1)]
    };
    let mean = if latencies.is_empty() {
        Duration::ZERO
    } else {
        latencies.iter().sum::<Duration>() / latencies.len() as u32
    };
    LatencySummary {
        mean,
        median: percentile(0.50),
        p99: percentile(0.99),
    }
}

/// One closed-loop round: `clients` threads each submit `per_client`
/// verification queries back-to-back (waiting for every reply before the next
/// submission, briefly backing off when admission pushes back). Returns the
/// per-query wall latencies (admission to finalization) of every client.
pub fn closed_loop(
    handle: &symnet_core::ServeHandle,
    access: symnet_core::network::ElementId,
    clients: usize,
    per_client: usize,
) -> Vec<Duration> {
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let handle = handle.clone();
                scope.spawn(move || {
                    let mut latencies = Vec::with_capacity(per_client);
                    for _ in 0..per_client {
                        loop {
                            match handle.verify(access, 0, symbolic_tcp_packet()) {
                                Ok(ticket) => {
                                    let served = ticket.wait().expect("query completes");
                                    latencies.push(served.wall);
                                    break;
                                }
                                Err(_) => std::thread::sleep(Duration::from_micros(100)),
                            }
                        }
                    }
                    latencies
                })
            })
            .collect();
        workers
            .into_iter()
            .flat_map(|w| w.join().expect("client thread"))
            .collect()
    })
}

/// Closed-loop load test of the concurrent serving subsystem, sweeping client
/// counts with and without a concurrent delta stream.
///
/// Per row: a fresh [`SymNetServer`](symnet_core::SymNetServer) over the
/// `delta_fanout` topology, `clients` closed-loop clients submitting
/// `per_client` queries each, and — in the delta rows — a publisher thread
/// driving a station join/leave loop through
/// [`apply_delta`](symnet_core::ServeHandle::apply_delta), so every few
/// queries land on a fresh epoch. Reported: total queries, throughput and the
/// wall-latency mean/median/p99 (queueing included).
pub fn serve_concurrent(
    clients_sweep: &[usize],
    per_client: usize,
    leaves: usize,
    macs_per_leaf: usize,
) -> TableReport {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use symnet_core::{ServerConfig, SymNetServer};
    use symnet_models::delta::Delta;
    use symnet_models::scenarios::{delta_fanout, fanout_mac};

    let mut rows = Vec::new();
    for &clients in clients_sweep {
        for with_deltas in [false, true] {
            let fanout = delta_fanout(leaves, macs_per_leaf);
            let mut tables = fanout.tables;
            let access = fanout.access;
            let server = SymNetServer::start(
                fanout.network,
                ServerConfig::default().with_capacity(2 * clients + 8),
            );
            let handle = server.handle();
            let stop = Arc::new(AtomicBool::new(false));

            // The delta stream: a station joins and leaves leaf 0 in a loop,
            // publishing a new epoch per event. In-flight queries keep their
            // pinned snapshot; the next admission sees the new epoch.
            let publisher = with_deltas.then(|| {
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                let leaf = fanout.leaves[0];
                let station = fanout_mac(leaves + 7, 0);
                std::thread::spawn(move || {
                    let mut published = 0u64;
                    let mut joined = false;
                    while !stop.load(Ordering::Relaxed) {
                        let delta = if joined {
                            Delta::MacAge {
                                element: leaf,
                                mac: station,
                                vlan: None,
                            }
                        } else {
                            Delta::MacLearn {
                                element: leaf,
                                mac: station,
                                vlan: None,
                                port: 0,
                            }
                        };
                        joined = !joined;
                        let submitted = tables
                            .apply_with(&delta, |element, program| {
                                handle.apply_delta(element, program)
                            })
                            .expect("join/leave deltas always change the table")
                            .expect("join/leave deltas always change the table");
                        match submitted.map(|ticket| ticket.wait()) {
                            Ok(Ok(_)) => published += 1,
                            _ => break, // overloaded or shutting down
                        }
                        std::thread::sleep(Duration::from_micros(500));
                    }
                    published
                })
            });

            let start = Instant::now();
            let mut latencies = closed_loop(&handle, access, clients, per_client);
            let elapsed = start.elapsed();
            stop.store(true, Ordering::Relaxed);
            let published = publisher
                .map(|p| p.join().expect("delta publisher"))
                .unwrap_or(0);
            server.shutdown();

            let summary = summarize_latencies(&mut latencies);
            let throughput = latencies.len() as f64 / elapsed.as_secs_f64();
            rows.push(Row {
                cells: vec![
                    clients.to_string(),
                    published.to_string(),
                    latencies.len().to_string(),
                    format!("{throughput:.1}"),
                    ms(summary.mean),
                    ms(summary.median),
                    ms(summary.p99),
                ],
            });
        }
    }

    TableReport {
        title: format!(
            "serve --clients: closed-loop concurrent serving, {leaves}-leaf fan-out, {per_client} queries/client"
        ),
        headers: ["clients", "deltas", "queries", "q/s", "mean", "median", "p99"]
            .map(String::from)
            .to_vec(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let t = TableReport {
            title: "t".into(),
            headers: vec!["a".into(), "bbbb".into()],
            rows: vec![Row {
                cells: vec!["xxxxx".into(), "y".into()],
            }],
        };
        let text = t.render();
        assert!(text.contains("== t =="));
        assert!(text.contains("xxxxx"));
    }

    #[test]
    fn table1_shape_is_exponential() {
        let data = table1_data(3, 100_000);
        assert_eq!(data.len(), 3);
        assert!(data[1].1 > data[0].1);
        assert!(data[2].1 > data[1].1);
    }

    #[test]
    fn fig8_egress_beats_ingress_and_basic() {
        let basic = measure_switch("basic", 300, 20);
        let ingress = measure_switch("ingress", 300, 20);
        let egress = measure_switch("egress", 300, 20);
        // Path counts: basic = entries, grouped models = ports.
        assert_eq!(basic.paths, 300);
        assert_eq!(ingress.paths, 20);
        assert_eq!(egress.paths, 20);
        // Constraint totals: egress is linear in the entries, ingress is not.
        assert!(egress.constraint_atoms <= 300);
        assert!(ingress.constraint_atoms > egress.constraint_atoms);
    }

    #[test]
    fn table2_models_agree_on_path_counts() {
        let fib = Fib::synthetic(200, 8);
        let e = measure_router("egress", &fib, 200);
        let i = measure_router("ingress", &fib, 200);
        assert_eq!(e.paths, i.paths);
        assert!(e.paths <= 8);
    }

    #[test]
    fn table5_matches_paper_claims_for_symnet() {
        let t = table5();
        // SymNet supports everything except splitting/fragmentation.
        for row in &t.rows {
            let capability = &row.cells[0];
            let symnet = &row.cells[5];
            if capability.contains("splitting") || capability.contains("fragmentation") {
                assert_eq!(symnet, "no");
            }
        }
    }
}
