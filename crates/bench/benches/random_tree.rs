//! Criterion bench over the `symnet-parsers` random switch-tree generator:
//! fork-heavy synthetic topologies (every egress switch forks the packet per
//! output-port group) exercising the O(1) persistent-state fork path, the
//! incremental solver, and the parallel engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_parsers::random_switch_tree;
use symnet_sefl::packet::symbolic_tcp_packet;
use symnet_solver::SolverConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_tree");
    group.sample_size(10);

    // The generator wires both up- and down-links, so injecting at the root
    // forks the packet multiplicatively down the tree (and the up/down cycles
    // exercise loop detection along the way).
    let topo = random_switch_tree(42, 12, 40);
    let root = topo.elements["sw0"];

    // Incremental prefix-cached solving vs the from-scratch baseline.
    for (label, incremental) in [("incremental", true), ("from_scratch", false)] {
        let engine = SymNet::with_config(
            topo.network.clone(),
            ExecConfig {
                solver: SolverConfig {
                    incremental,
                    ..SolverConfig::default()
                },
                ..ExecConfig::default().with_threads(1)
            },
        );
        group.bench_function(BenchmarkId::new("inject_solver", label), |b| {
            b.iter(|| engine.inject(root, 0, &symbolic_tcp_packet()).path_count())
        });
    }

    // Parallel exploration of the same fork-heavy tree, swept over the
    // worker counts the determinism suite pins (1 = the sequential loop,
    // 2 and 8 = the work-stealing scheduler under low and high contention).
    for threads in [1usize, 2, 8] {
        let engine = SymNet::with_config(
            topo.network.clone(),
            ExecConfig::default().with_threads(threads),
        );
        group.bench_with_input(
            BenchmarkId::new("inject_threads", threads),
            &threads,
            |b, _| b.iter(|| engine.inject(root, 0, &symbolic_tcp_packet()).path_count()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
