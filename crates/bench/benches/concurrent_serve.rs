//! Concurrent-serving load as a criterion group: closed-loop clients against
//! the epoch-snapshot `SymNetServer` over the `delta_fanout` topology.
//!
//! Two series per client count:
//!
//! * `queries/<n>` — `n` closed-loop clients, each submitting
//!   `PER_CLIENT` verification queries back-to-back against a quiescent
//!   network (no epochs published during the run).
//! * `queries_deltas/<n>` — the same closed loop while a publisher thread
//!   drives a station join/leave delta stream, so queries keep landing on
//!   fresh epochs and the copy-on-write publication path is on the clock too.
//!
//! One iteration = one full closed-loop round (`n × PER_CLIENT` queries), so
//! the criterion mean is the round's wall time; per-query latency statistics
//! (mean/median/p99, queueing included) are printed after the sweep from a
//! dedicated measurement round.
//!
//! Set `SYMNET_SERVE_CLIENTS=a,b,c` to override the client sweep (the CI
//! default is `1,4,16`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use symnet_bench::{closed_loop, summarize_latencies};
use symnet_core::{ServeHandle, ServerConfig, SymNetServer};
use symnet_models::delta::Delta;
use symnet_models::scenarios::{delta_fanout, fanout_mac, DeltaFanout};

const LEAVES: usize = 8;
const MACS_PER_LEAF: usize = 4;
const PER_CLIENT: usize = 4;

fn client_sweep() -> Vec<usize> {
    std::env::var("SYMNET_SERVE_CLIENTS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|n| n.trim().parse().ok())
                .collect::<Vec<usize>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 4, 16])
}

struct Harness {
    server: Option<SymNetServer>,
    handle: ServeHandle,
    fanout: DeltaFanout,
    stop: Arc<AtomicBool>,
    publisher: Option<JoinHandle<u64>>,
}

impl Harness {
    /// A resident server (and, when `with_deltas`, a join/leave delta
    /// publisher) that lives across every iteration of one series.
    fn start(clients: usize, with_deltas: bool) -> Harness {
        let fanout = delta_fanout(LEAVES, MACS_PER_LEAF);
        let server = SymNetServer::start(
            fanout.network.clone(),
            ServerConfig::default().with_capacity(2 * clients + 8),
        );
        let handle = server.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let publisher = with_deltas.then(|| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            // `delta_fanout` is deterministic, so a fresh build's tables
            // carry the same element ids as the served network.
            let mut tables = delta_fanout(LEAVES, MACS_PER_LEAF).tables;
            let leaf = fanout.leaves[0];
            let station = fanout_mac(LEAVES + 7, 0);
            std::thread::spawn(move || {
                let mut published = 0u64;
                let mut joined = false;
                while !stop.load(Ordering::Relaxed) {
                    let delta = if joined {
                        Delta::MacAge {
                            element: leaf,
                            mac: station,
                            vlan: None,
                        }
                    } else {
                        Delta::MacLearn {
                            element: leaf,
                            mac: station,
                            vlan: None,
                            port: 0,
                        }
                    };
                    joined = !joined;
                    let submitted = tables
                        .apply_with(&delta, |element, program| {
                            handle.apply_delta(element, program)
                        })
                        .expect("join/leave deltas always change the table")
                        .expect("join/leave deltas always change the table");
                    match submitted.map(|ticket| ticket.wait()) {
                        Ok(Ok(_)) => published += 1,
                        _ => break, // overloaded or shutting down
                    }
                    std::thread::sleep(std::time::Duration::from_micros(500));
                }
                published
            })
        });
        Harness {
            server: Some(server),
            handle,
            fanout,
            stop,
            publisher,
        }
    }

    fn round(&self, clients: usize) -> usize {
        closed_loop(&self.handle, self.fanout.access, clients, PER_CLIENT).len()
    }

    fn stop(mut self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        let published = self
            .publisher
            .take()
            .map(|p| p.join().expect("delta publisher"))
            .unwrap_or(0);
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        published
    }
}

fn bench(c: &mut Criterion) {
    let sweep = client_sweep();
    let mut group = c.benchmark_group("concurrent_serve");
    group.sample_size(10);
    for &clients in &sweep {
        for with_deltas in [false, true] {
            let series = if with_deltas {
                "queries_deltas"
            } else {
                "queries"
            };
            let harness = Harness::start(clients, with_deltas);
            group.bench_with_input(
                BenchmarkId::new(series, clients),
                &clients,
                |b, &clients| {
                    b.iter(|| {
                        let served = harness.round(clients);
                        assert_eq!(served, clients * PER_CLIENT);
                        served
                    })
                },
            );
            harness.stop();
        }
    }
    group.finish();

    // Latency report: one dedicated round per configuration, per-query wall
    // times (admission to finalization) summarized as mean/median/p99.
    for &clients in &sweep {
        for with_deltas in [false, true] {
            let harness = Harness::start(clients, with_deltas);
            let start = std::time::Instant::now();
            let mut latencies =
                closed_loop(&harness.handle, harness.fanout.access, clients, PER_CLIENT);
            let elapsed = start.elapsed();
            let published = harness.stop();
            let s = summarize_latencies(&mut latencies);
            println!(
                "concurrent_serve latency: clients={clients:<3} deltas={published:<4} \
                 queries={:<4} q/s={:<9.1} mean={:.3?} median={:.3?} p99={:.3?}",
                latencies.len(),
                latencies.len() as f64 / elapsed.as_secs_f64(),
                s.mean,
                s.median,
                s.p99,
            );
        }
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
