//! Paper-scale workloads as a criterion group.
//!
//! The paper's headline sizes — the Figure 8 switch at 480 000 learned MACs
//! and the Table 2 core router at 188 500 FIB prefixes — are what the
//! interning and small-value-storage layers were built for: at these sizes
//! the naive representation allocates one boxed formula per table entry per
//! path and spends its time in `memcpy`. This group benches exactly those
//! workloads.
//!
//! By default the sizes are scaled down (~1/20th) so the group stays
//! CI-friendly; set `SYMNET_FULL_SCALE=1` to bench the true paper sizes
//! (minutes, not seconds — same code path, just more table entries). The
//! benchmark ids do not encode the size, so snapshot comparisons only make
//! sense within one mode; docs/BENCHMARKS.md records both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_bench::{measure_router, measure_switch};
use symnet_models::Fib;

/// True when benching the paper-scale sizes (`SYMNET_FULL_SCALE=1`).
fn full_scale() -> bool {
    std::env::var("SYMNET_FULL_SCALE").is_ok_and(|v| v == "1")
}

fn bench(c: &mut Criterion) {
    let full = full_scale();
    // Few samples: even scaled down these are the most expensive benches in
    // the suite, and the regressions the snapshot gate looks for are >10%.
    let samples = if full { 2 } else { 5 };

    // Figure 8 switch at paper scale: 480k learned MACs (basic DNFs there,
    // as in the paper — the scalable ingress/egress models are the subject).
    let switch_entries = if full { 480_000 } else { 24_000 };
    let mut group = c.benchmark_group("full_scale");
    group.sample_size(samples);
    for model in ["ingress", "egress"] {
        group.bench_with_input(
            BenchmarkId::new("fig8_switch", model),
            &switch_entries,
            |b, &entries| b.iter(|| measure_switch(model, entries, 20).paths),
        );
    }

    // Table 2 core router at paper scale: 188.5k-prefix FIB, longest-prefix
    // match encoded as prefix-match plus negated longer matches.
    let router_prefixes = if full { 188_500 } else { 9_400 };
    let fib = Fib::synthetic(router_prefixes, 8);
    group.bench_with_input(
        BenchmarkId::new("table2_router", "egress"),
        &router_prefixes,
        |b, &prefixes| b.iter(|| measure_router("egress", &fib, prefixes).paths),
    );
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
