//! Criterion bench behind Table 3: SymNet vs the HSA baseline on the same
//! synthetic backbone.

use criterion::{criterion_group, criterion_main, Criterion};
use symnet_core::engine::SymNet;
use symnet_hsa::{router_transfer_function, HsaNetwork, Ternary};
use symnet_models::scenarios::stanford_backbone;
use symnet_sefl::packet::symbolic_l3_tcp_packet;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_hsa_comparison");
    group.sample_size(10);
    let backbone = stanford_backbone(8, 500);
    group.bench_function("symnet_reachability", |b| {
        let engine = SymNet::new(backbone.network.clone());
        b.iter(|| {
            engine
                .inject(backbone.access, 0, &symbolic_l3_tcp_packet())
                .delivered()
                .count()
        })
    });
    group.bench_function("hsa_reachability", |b| {
        let mut hsa = HsaNetwork::new();
        let mut ids = Vec::new();
        for (name, fib) in &backbone.fibs {
            let routes: Vec<(u32, u8, usize)> = fib
                .entries
                .iter()
                .map(|e| (e.prefix, e.prefix_len, e.port))
                .collect();
            ids.push((
                name.clone(),
                hsa.add_node(name.clone(), router_transfer_function(&routes)),
            ));
        }
        for (name, id) in &ids {
            if name.starts_with("zone") {
                hsa.add_link(*id, 0, ids[0].1);
                hsa.add_link(*id, 1, ids[1].1);
            }
        }
        b.iter(|| hsa.reachability(ids[2].1, Ternary::any(32), 8).len())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
