//! Criterion bench behind Table 2: core-router analysis with LPM exclusion
//! constraints at increasing FIB sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_bench::measure_router;
use symnet_models::router::Fib;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_router");
    group.sample_size(10);
    let fib = Fib::synthetic(20_000, 8);
    for &prefixes in &[200usize, 6_600, 20_000] {
        group.bench_with_input(
            BenchmarkId::new("egress", prefixes),
            &prefixes,
            |b, &prefixes| b.iter(|| measure_router("egress", &fib, prefixes).paths),
        );
    }
    group.bench_function(BenchmarkId::new("ingress", 200usize), |b| {
        b.iter(|| measure_router("ingress", &fib, 200).paths)
    });
    group.bench_function(BenchmarkId::new("basic", 200usize), |b| {
        b.iter(|| measure_router("basic", &fib, 200).paths)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
