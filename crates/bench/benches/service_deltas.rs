//! Resident-service delta sweep: incremental re-verification versus
//! from-scratch re-exploration as a function of delta size.
//!
//! Topology: `delta_fanout(8, 4)` — a root egress switch fanning out to 8
//! leaf switches, 4 MACs each, 32 delivered paths total. A delta burst
//! touches `k` leaves (one MAC learned behind each, then aged out again), so
//! `k/8` of the path tree is invalidated per burst and the rest is reused by
//! the incremental mode. Both modes pay the same table mutation + program
//! recompilation + copy-on-write costs; they differ only in how the answer
//! is re-established:
//!
//! * `incremental/<k>` — [`VerifyService::verify`] re-explores the
//!   invalidated subtrees and merges them with the kept results.
//! * `from_scratch/<k>` — a fresh `inject` over the updated snapshot.
//!
//! The two modes produce byte-identical canonical reports (asserted below
//! before timing anything). The bench additionally prints the measured
//! break-even delta size: the smallest `k` where incremental stops winning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::{Duration, Instant};
use symnet_core::network::ElementId;
use symnet_core::report::canonical_report_json_string;
use symnet_core::{ExecConfig, QueryId, VerifyService};
use symnet_models::delta::{Delta, RuleTables};
use symnet_models::scenarios::{delta_fanout, fanout_mac};
use symnet_sefl::packet::symbolic_tcp_packet;

const LEAVES: usize = 8;
const MACS_PER_LEAF: usize = 4;
const DELTA_SIZES: [usize; 4] = [1, 2, 4, 8];

struct Setup {
    service: VerifyService,
    tables: RuleTables,
    leaves: Vec<ElementId>,
    access: ElementId,
    query: QueryId,
}

fn setup() -> Setup {
    let fanout = delta_fanout(LEAVES, MACS_PER_LEAF);
    let mut service = VerifyService::new(fanout.network, ExecConfig::default().with_threads(1));
    let query = service.add_query("fanout", fanout.access, 0, symbolic_tcp_packet());
    service.verify(query).expect("initial verification");
    Setup {
        service,
        tables: fanout.tables,
        leaves: fanout.leaves,
        access: fanout.access,
        query,
    }
}

/// The delta burst for size `k`: learn one fresh MAC behind each of the
/// first `k` leaves (`learn: true`), or age those MACs back out.
fn burst(leaves: &[ElementId], k: usize, learn: bool) -> Vec<Delta> {
    (0..k)
        .map(|leaf| {
            let mac = fanout_mac(20 + leaf, 0);
            if learn {
                Delta::MacLearn {
                    element: leaves[leaf],
                    mac,
                    vlan: None,
                    port: 0,
                }
            } else {
                Delta::MacAge {
                    element: leaves[leaf],
                    mac,
                    vlan: None,
                }
            }
        })
        .collect()
}

fn apply_burst(setup: &mut Setup, k: usize, learn: bool) {
    for delta in burst(&setup.leaves.clone(), k, learn) {
        setup
            .tables
            .apply(&mut setup.service, &delta)
            .expect("delta applies")
            .expect("delta changes its table");
    }
}

/// One incremental round: learn burst + re-verify, age burst + re-verify
/// (the table round-trips, so rounds are repeatable).
fn incremental_round(setup: &mut Setup, k: usize) -> usize {
    apply_burst(setup, k, true);
    let a = setup.service.verify(setup.query).expect("re-verify");
    apply_burst(setup, k, false);
    let b = setup.service.verify(setup.query).expect("re-verify");
    a.report.path_count() + b.report.path_count()
}

/// One from-scratch round: the same delta bursts, answered by full injects
/// over the updated snapshot.
fn from_scratch_round(setup: &mut Setup, k: usize) -> usize {
    let mut total = 0;
    for learn in [true, false] {
        apply_burst(setup, k, learn);
        let report = setup
            .service
            .snapshot()
            .try_inject(setup.access, 0, &symbolic_tcp_packet())
            .expect("inject");
        total += report.path_count();
    }
    total
}

/// Byte-identity of the two modes, checked once per delta size before any
/// timing (the acceptance bar of the service work).
fn assert_modes_agree(k: usize) {
    let mut setup = setup();
    apply_burst(&mut setup, k, true);
    let incremental = setup.service.verify(setup.query).expect("re-verify");
    let scratch = setup
        .service
        .snapshot()
        .try_inject(setup.access, 0, &symbolic_tcp_packet())
        .expect("inject");
    assert_eq!(
        canonical_report_json_string(&incremental.report, setup.service.network()),
        canonical_report_json_string(&scratch, setup.service.network()),
        "incremental and from-scratch reports diverged at delta size {k}"
    );
}

/// Median wall time of `runs` rounds (for the break-even line; the criterion
/// series carry the full statistics).
fn median_time(mut round: impl FnMut() -> usize, runs: usize) -> Duration {
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            let paths = round();
            assert!(paths > 0);
            start.elapsed()
        })
        .collect();
    times.sort();
    times[times.len() / 2]
}

fn bench(c: &mut Criterion) {
    for &k in &DELTA_SIZES {
        assert_modes_agree(k);
    }

    let mut group = c.benchmark_group("service_deltas");
    group.sample_size(20);
    for &k in &DELTA_SIZES {
        let mut inc = setup();
        group.bench_with_input(BenchmarkId::new("incremental", k), &k, |b, &k| {
            b.iter(|| incremental_round(&mut inc, k))
        });
        let mut scratch = setup();
        group.bench_with_input(BenchmarkId::new("from_scratch", k), &k, |b, &k| {
            b.iter(|| from_scratch_round(&mut scratch, k))
        });
    }
    group.finish();

    // Break-even: the smallest delta size at which incremental stops
    // beating from-scratch (bursts touching every leaf invalidate the whole
    // tree, so incremental degenerates to from-scratch plus bookkeeping).
    let mut break_even: Option<usize> = None;
    for &k in &DELTA_SIZES {
        let mut inc = setup();
        let t_inc = median_time(|| incremental_round(&mut inc, k), 5);
        let mut scratch = setup();
        let t_scratch = median_time(|| from_scratch_round(&mut scratch, k), 5);
        println!(
            "service_deltas break-even probe: k={k:<2} incremental {t_inc:>10.1?}  from_scratch {t_scratch:>10.1?}"
        );
        if break_even.is_none() && t_inc >= t_scratch {
            break_even = Some(k);
        }
    }
    match break_even {
        Some(k) => println!(
            "service_deltas break-even: incremental stops winning at deltas touching {k}/{LEAVES} leaves"
        ),
        None => println!(
            "service_deltas break-even: incremental won at every probed delta size (up to {LEAVES}/{LEAVES} leaves)"
        ),
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
