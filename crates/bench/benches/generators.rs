//! Criterion bench over the differential fuzzer's scenario-generator family:
//! per-family scenario construction cost, symbolic exploration of the
//! unmutated scenario, and one full differential fuzz case (build + mutate +
//! explore + concretize + replay). Fixed seeds and CI-scale sizes keep the
//! series deterministic for the bench-diff regression gate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_testgen::fuzz::{run_case, FuzzConfig};
use symnet_testgen::generators::{GeneratorConfig, GeneratorKind};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(10);

    let config = GeneratorConfig {
        seed: 0xBE_BC4,
        size: 4,
        entries: 8,
    };

    // Scenario construction alone: topology wiring + table compilation.
    for kind in GeneratorKind::ALL {
        group.bench_function(BenchmarkId::new("build", kind.name()), |b| {
            b.iter(|| kind.build(&config).network.element_count())
        });
    }

    // Symbolic exploration of the unmutated scenario (single worker, so the
    // series measures engine + solver work, not scheduling).
    for kind in GeneratorKind::ALL {
        let scenario = kind.build(&config);
        let engine = SymNet::with_config(
            scenario.network.clone(),
            ExecConfig {
                max_hops: scenario.max_hops,
                ..ExecConfig::default().with_threads(1)
            },
        );
        group.bench_function(BenchmarkId::new("inject", kind.name()), |b| {
            b.iter(|| {
                engine
                    .inject(scenario.inject_at, scenario.inject_port, &scenario.packet)
                    .path_count()
            })
        });
    }

    // One end-to-end differential fuzz case per family: build, seeded
    // mutations, symbolic exploration, per-path concretization and concrete
    // replay against the reference twin.
    let fuzz_config = FuzzConfig {
        seed: 0xBE_BC4,
        iters: 1,
        generator: config,
        max_mutations: 2,
    };
    for kind in GeneratorKind::ALL {
        group.bench_function(BenchmarkId::new("fuzz_case", kind.name()), |b| {
            b.iter(|| {
                let result = run_case(kind, 0xBE_BC4, &fuzz_config);
                assert!(result.failure.is_none());
                result.paths_checked
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
