//! Criterion bench behind Table 1: classic symbolic execution of the Figure 1
//! TCP-options code as the symbolic options length grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_klee::programs::tcp_options_program;
use symnet_klee::symex::{SymConfig, SymExecutor};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_klee_options");
    group.sample_size(10);
    for length in [1u64, 2, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(length), &length, |b, &len| {
            b.iter(|| {
                let mut ex = SymExecutor::new(SymConfig::default());
                ex.run_symbolic(&tcp_options_program(len), len as usize)
                    .path_count()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
