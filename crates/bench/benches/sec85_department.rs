//! Criterion bench behind the §8.5 department-network verification runs.

use criterion::{criterion_group, criterion_main, Criterion};
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_models::scenarios::{department, DepartmentConfig};
use symnet_models::tcp_options::symbolic_options_metadata;
use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_sefl::Instruction;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec85_department");
    group.sample_size(10);
    let (net, topo) = department(DepartmentConfig {
        access_switches: 6,
        mac_entries: 600,
        routes: 50,
    });
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );
    let outbound = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    group.bench_function("office_to_internet", |b| {
        b.iter(|| engine.inject(topo.office_switch, 0, &outbound).path_count())
    });
    group.bench_function("inbound_scan", |b| {
        b.iter(|| engine.inject(topo.exit_router, 0, &symbolic_l3_tcp_packet()).path_count())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
