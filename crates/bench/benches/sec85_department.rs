//! Criterion bench behind the §8.5 department-network verification runs,
//! including the single-thread vs multi-thread comparison of the parallel
//! path-exploration engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_models::scenarios::{department, DepartmentConfig};
use symnet_models::tcp_options::symbolic_options_metadata;
use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_sefl::Instruction;
use symnet_solver::SolverConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec85_department");
    group.sample_size(10);
    let (net, topo) = department(DepartmentConfig {
        access_switches: 6,
        mac_entries: 600,
        routes: 50,
    });
    let engine = SymNet::with_config(
        net.clone(),
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );
    let outbound = Instruction::block(vec![symbolic_tcp_packet(), symbolic_options_metadata()]);
    group.bench_function("office_to_internet", |b| {
        b.iter(|| engine.inject(topo.office_switch, 0, &outbound).path_count())
    });
    group.bench_function("inbound_scan", |b| {
        b.iter(|| {
            engine
                .inject(topo.exit_router, 0, &symbolic_l3_tcp_packet())
                .path_count()
        })
    });

    // Parallel-engine speedup: the same outbound verification at 1 worker
    // (the legacy sequential loop) vs 2 and 8 workers (the work-stealing
    // scheduler under low and high contention — the same counts the
    // determinism suite pins). The reports are byte-identical; only the
    // wall clock changes.
    for threads in [1usize, 2, 8] {
        let engine = SymNet::with_config(
            net.clone(),
            ExecConfig {
                max_hops: 32,
                ..ExecConfig::default().with_threads(threads)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("office_to_internet_threads", threads),
            &threads,
            |b, _| b.iter(|| engine.inject(topo.office_switch, 0, &outbound).path_count()),
        );
    }

    // Incremental-solver speedup: the same run, single-threaded so that the
    // solver dominates, with the prefix-cached incremental procedure vs the
    // from-scratch baseline that re-normalises the entire path condition at
    // every `Constrain`/`If` check. The reports are identical; only the
    // solver-side work (and wall clock) changes.
    for (label, incremental) in [("incremental", true), ("from_scratch", false)] {
        let engine = SymNet::with_config(
            net.clone(),
            ExecConfig {
                max_hops: 32,
                solver: SolverConfig {
                    incremental,
                    ..SolverConfig::default()
                },
                ..ExecConfig::default().with_threads(1)
            },
        );
        group.bench_function(BenchmarkId::new("office_to_internet_solver", label), |b| {
            b.iter(|| engine.inject(topo.office_switch, 0, &outbound).path_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
