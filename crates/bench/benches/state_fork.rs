//! Micro-bench for the cost of forking per-path execution state: the
//! persistent [`ExecState`] fork (an O(1) bundle of `Arc` clones) against the
//! deep `BTreeMap` clone the engine performed before the persistent-map
//! change, at 10 / 100 / 1000 live header fields. A third series measures the
//! fork plus one field write — the copy-on-write path that un-shares the
//! O(log n) tree nodes on the written key's search path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use symnet_core::state::{ExecState, Slot, TraceEntry};
use symnet_core::Value;

/// Builds a state with `fields` live 32-bit header allocations (and a trace
/// entry per allocation, matching how real paths accrete both together).
fn state_with_fields(fields: usize) -> ExecState {
    let mut state = ExecState::new();
    for i in 0..fields {
        let address = (i as i64) * 64;
        state.allocate_header(address, 32).expect("disjoint");
        state
            .write_header(address, Value::Concrete(i as u64))
            .expect("allocated");
        state.push_trace(TraceEntry::Instruction(format!("Assign(h{i})")));
    }
    state
}

/// The pre-persistent-map representation of the same header map, cloned
/// wholesale on every fork.
fn btreemap_with_fields(fields: usize) -> BTreeMap<i64, Vec<Slot>> {
    (0..fields)
        .map(|i| {
            (
                (i as i64) * 64,
                vec![Slot {
                    value: Value::Concrete(i as u64),
                    width: 32,
                }],
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_fork");
    group.sample_size(30);
    for &fields in &[10usize, 100, 1000] {
        let state = state_with_fields(fields);
        let map = btreemap_with_fields(fields);

        // The old fork: clone the whole header map (the trace and metadata
        // vectors came on top of this in the real engine).
        group.bench_with_input(BenchmarkId::new("deep_clone", fields), &fields, |b, _| {
            b.iter(|| black_box(map.clone()).len())
        });

        // The new fork: O(1) regardless of how much state the path carries.
        group.bench_with_input(
            BenchmarkId::new("persistent_fork", fields),
            &fields,
            |b, _| b.iter(|| black_box(state.clone()).constraint_count()),
        );

        // Fork plus the child's first write: pays the O(log n) path copy.
        group.bench_with_input(
            BenchmarkId::new("persistent_fork_write", fields),
            &fields,
            |b, _| {
                b.iter(|| {
                    let mut child = black_box(state.clone());
                    child
                        .write_header(0, Value::Concrete(42))
                        .expect("allocated");
                    child.constraint_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
