//! Criterion bench behind Figure 8: basic vs ingress vs egress switch models,
//! plus the incremental-vs-from-scratch solver comparison on the basic model
//! (the paper's fork-heavy worst case: one execution path per MAC entry, each
//! sharing a long prefix of negated matches with its siblings).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_bench::measure_switch;
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_core::network::Network;
use symnet_models::switch::{switch_basic, MacTable};
use symnet_sefl::packet::symbolic_tcp_packet;
use symnet_solver::SolverConfig;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_switch_models");
    group.sample_size(10);
    for &entries in &[440usize, 2_000, 10_000] {
        for model in ["ingress", "egress"] {
            group.bench_with_input(BenchmarkId::new(model, entries), &entries, |b, &entries| {
                b.iter(|| measure_switch(model, entries, 20).paths)
            });
        }
    }
    // The basic model is only benchable at small sizes (DNF in the paper).
    group.bench_function(BenchmarkId::new("basic", 440usize), |b| {
        b.iter(|| measure_switch("basic", 440, 20).paths)
    });

    // Basic model across worker counts: the paper's fork-heavy worst case is
    // where scheduler contention shows, so this sweep is the headline number
    // for the work-stealing scheduler (1 = sequential loop, 2/8 = parallel).
    let table = MacTable::synthetic(440, 20);
    for threads in [1usize, 2, 8] {
        let mut net = Network::new();
        let id = net.add_element(switch_basic("switch", &table));
        let engine = SymNet::with_config(net, ExecConfig::default().with_threads(threads));
        group.bench_with_input(
            BenchmarkId::new("basic_threads", threads),
            &threads,
            |b, _| b.iter(|| engine.inject(id, 0, &symbolic_tcp_packet()).path_count()),
        );
    }

    // Basic model, incremental prefix-cached solving vs re-solving the whole
    // path condition from scratch on every check.
    for (label, incremental) in [("incremental", true), ("from_scratch", false)] {
        let mut net = Network::new();
        let id = net.add_element(switch_basic("switch", &table));
        let engine = SymNet::with_config(
            net,
            ExecConfig {
                solver: SolverConfig {
                    incremental,
                    ..SolverConfig::default()
                },
                ..ExecConfig::default().with_threads(1)
            },
        );
        group.bench_function(BenchmarkId::new("basic_solver", label), |b| {
            b.iter(|| engine.inject(id, 0, &symbolic_tcp_packet()).path_count())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
