//! Criterion bench behind Figure 8: basic vs ingress vs egress switch models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_bench::measure_switch;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_switch_models");
    group.sample_size(10);
    for &entries in &[440usize, 2_000, 10_000] {
        for model in ["ingress", "egress"] {
            group.bench_with_input(BenchmarkId::new(model, entries), &entries, |b, &entries| {
                b.iter(|| measure_switch(model, entries, 20).paths)
            });
        }
    }
    // The basic model is only benchable at small sizes (DNF in the paper).
    group.bench_function(BenchmarkId::new("basic", 440usize), |b| {
        b.iter(|| measure_switch("basic", 440, 20).paths)
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
