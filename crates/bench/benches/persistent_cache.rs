//! Cold vs warm-disk vs warm-memory runs of the persistent solver cache
//! (`symnet_solver::cache`).
//!
//! Three variants per workload, isolating each caching layer:
//!
//! * **cold** — no disk cache, and the process-wide content memos cleared
//!   before every iteration: the full decision-procedure cost.
//! * **warm_disk** — the cache directory primed by one run, the content memos
//!   cleared before every iteration: every verdict replays from the
//!   disk-loaded index (what a fresh process pointed at yesterday's cache
//!   directory pays).
//! * **warm_memory** — no disk cache, content memos left warm: the in-process
//!   memo ceiling the disk path is compared against.
//!
//! Workloads are the §8.5 department inbound scan and the Figure 8 egress
//! switch; `SYMNET_FULL_SCALE=1` switches the latter to the paper-scale
//! 480 000-MAC table (see `full_scale.rs` — ids do not encode the size, so
//! snapshot comparisons only make sense within one mode). Results and
//! methodology are recorded in docs/BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symnet_core::engine::{ExecConfig, SymNet};
use symnet_core::network::Network;
use symnet_models::scenarios::{department, DepartmentConfig};
use symnet_models::switch::{switch_egress, MacTable};
use symnet_sefl::packet::{symbolic_l3_tcp_packet, symbolic_tcp_packet};
use symnet_solver::{cache, solve::reset_process_memos};

/// True when benching the paper-scale sizes (`SYMNET_FULL_SCALE=1`).
fn full_scale() -> bool {
    std::env::var("SYMNET_FULL_SCALE").is_ok_and(|v| v == "1")
}

fn bench(c: &mut Criterion) {
    let full = full_scale();
    let mut group = c.benchmark_group("persistent_cache");
    group.sample_size(if full { 2 } else { 10 });

    let dir = std::env::temp_dir().join(format!("symnet-bench-cache-{}", std::process::id()));

    let (net, topo) = department(DepartmentConfig {
        access_switches: 6,
        mac_entries: 600,
        routes: 50,
    });
    let engine = SymNet::with_config(
        net,
        ExecConfig {
            max_hops: 32,
            ..ExecConfig::default()
        },
    );
    let inbound = symbolic_l3_tcp_packet();
    let sec85 = move || engine.inject(topo.exit_router, 0, &inbound).path_count();

    // The Figure 8 egress switch, built once: the per-iteration cost is the
    // injection (solver-dominated), not the MAC-table model construction.
    let fig8_entries = if full { 480_000 } else { 10_000 };
    let table = MacTable::synthetic(fig8_entries, 20);
    let mut fig8_net = Network::new();
    let fig8_id = fig8_net.add_element(switch_egress("switch", &table));
    let fig8_engine = SymNet::new(fig8_net);
    let fig8_pkt = symbolic_tcp_packet();
    let fig8 = move || fig8_engine.inject(fig8_id, 0, &fig8_pkt).path_count();

    let workloads: [(&str, &dyn Fn() -> usize); 2] =
        [("sec85_inbound", &sec85), ("fig8_switch_egress", &fig8)];

    for (name, run) in workloads {
        // Cold: no persistent layer, no memos.
        cache::deactivate();
        group.bench_with_input(BenchmarkId::new("cold", name), &(), |b, ()| {
            b.iter(|| {
                reset_process_memos();
                run()
            })
        });

        // Prime a fresh directory, then measure warm-disk replay: the memos
        // are cleared every iteration, so only the disk-loaded index answers.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(
            cache::configure(&dir).expect("cache dir opens"),
            "per-process bench dir cannot be locked"
        );
        reset_process_memos();
        run();
        cache::flush();
        group.bench_with_input(BenchmarkId::new("warm_disk", name), &(), |b, ()| {
            b.iter(|| {
                reset_process_memos();
                run()
            })
        });
        cache::deactivate();

        // Warm-memory ceiling: one run fills the content memos, then every
        // iteration answers from them.
        reset_process_memos();
        run();
        group.bench_with_input(BenchmarkId::new("warm_memory", name), &(), |b, ()| {
            b.iter(run)
        });
    }

    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench);
criterion_main!(benches);
