//! The symbolic executor.
//!
//! [`SymNet::inject`] creates an empty packet, runs the packet-construction
//! block, delivers the resulting symbolic packet to an input port and then
//! explores every path through the network: SEFL instructions are interpreted
//! over [`ExecState`]s, `If`/`Fork` spawn new paths, `Constrain`/`Fail` and
//! memory-safety violations terminate paths, links move packets between
//! elements, and the Figure 5 state-inclusion check detects loops.
//!
//! Distinct symbolic paths are independent, so exploration is parallel by
//! default, driven by a **work-stealing scheduler** (`StealScheduler`):
//! each of the [`ExecConfig::threads`] workers owns a bounded LIFO deque it
//! pushes forked children onto and pops from without contending with anyone;
//! only when its deque runs dry does it steal a batch of the *oldest* paths —
//! up to half the victim's deque, from the FIFO end, where the shallowest
//! forks with the largest subtrees sit — or drain the shared overflow
//! injector that absorbs local-deque overflow and the injection roots. Each
//! worker owns a thread-local [`Solver`] whose statistics are merged at the
//! end, and per-worker [`SchedStats`] count local hits, steals, batch-stolen
//! paths and overflow pushes.
//!
//! Reports stay deterministic no matter how paths migrate between workers —
//! every emitted path carries its fork lineage (the breadth-first position of
//! the pending path that emitted it plus the emission index within that
//! step), and the final report is sorted into exactly the order the
//! single-threaded engine produces, so the JSON output is byte-identical for
//! any thread count (the one exception is a run truncated by the
//! [`ExecConfig::max_paths`] cap, whose exact count is honoured but whose
//! surviving paths are scheduling-dependent).
//!
//! Forking is O(1) end-to-end: the path condition is a persistent cons-list
//! ([`symnet_solver::PathCond`]), the loop-detection history an `Arc`-shared
//! `History` list, and the header/metadata maps and the trace inside
//! [`ExecState`] are persistent too ([`crate::pmap::PMap`],
//! [`crate::state::Trace`]) — children share their parent's structure instead
//! of deep-copying it, and the solver reuses the analysis cached on the
//! shared path-condition prefix ([`Solver::check_path`]).

use crate::error::{DropReason, EngineError, ExecError};
use crate::network::{ElementId, Network};
use crate::state::{ExecState, TraceEntry};
use crate::symbols::VarAllocator;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::cmp::Ordering;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};
use symnet_sefl::field::FieldRef;
use symnet_sefl::fields;
use symnet_sefl::instr::Instruction;
use symnet_solver::{IntervalSet, Solver, SolverConfig, SolverStats};

/// Configuration of a symbolic execution run.
#[derive(Clone, Debug)]
pub struct ExecConfig {
    /// Maximum number of input ports a single path may visit.
    pub max_hops: usize,
    /// Whether to run the Figure 5 loop-detection check at every input port.
    pub detect_loops: bool,
    /// Header fields compared by the loop detector. The paper notes that
    /// comparing only the source and destination IP addresses catches
    /// forwarding loops that a full-state comparison would miss (the TTL
    /// always differs), so that is the default.
    pub loop_fields: Vec<FieldRef>,
    /// Include paths pruned as infeasible `If` branches in the report.
    pub include_pruned: bool,
    /// Hard cap on the total number of reported paths (runaway-model guard).
    /// Exact at any thread count: each reported path reserves a slot from a
    /// shared atomic budget at emission time, so a truncated run reports
    /// precisely this many paths (which paths survive truncation is
    /// scheduling-dependent under multiple workers).
    pub max_paths: usize,
    /// Number of worker threads exploring paths. `1` runs the exact
    /// single-threaded legacy loop (no queue locking, no thread spawn); the
    /// default is the machine's available parallelism. As long as the run
    /// stays under [`ExecConfig::max_paths`], the report is byte-identical
    /// for every thread count; a run that hits the cap reports exactly
    /// `max_paths` paths, but which ones is scheduling-dependent (see
    /// `max_paths`).
    pub threads: usize,
    /// Constraint-solver limits.
    pub solver: SolverConfig,
    /// Optional directory for the persistent (disk-backed) solver cache.
    /// The cache itself is process-global, so this is activated *once* per
    /// process — by [`ExecConfig::activate_cache`] from whoever owns the
    /// entry point (the `paper` binary, [`crate::SymNetServer::start`]) —
    /// not per run. `None` (the default) leaves the disk layer off; the
    /// in-process memos are unaffected either way.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl ExecConfig {
    /// The default worker count: every hardware thread.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Returns this configuration with a different worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns this configuration with a persistent solver-cache directory.
    pub fn with_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Points the process-global persistent solver cache at
    /// [`ExecConfig::cache_dir`], warm-loading any records a previous process
    /// left there. Returns `Ok(true)` when the cache is active, `Ok(false)`
    /// when no directory is configured *or* another live process holds the
    /// store lock (the run proceeds with a cold cache — degraded, never
    /// wrong).
    pub fn activate_cache(&self) -> std::io::Result<bool> {
        match &self.cache_dir {
            Some(dir) => symnet_solver::cache::configure(dir),
            None => Ok(false),
        }
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            max_hops: 64,
            detect_loops: true,
            loop_fields: vec![fields::ip_src().field(), fields::ip_dst().field()],
            include_pruned: false,
            max_paths: 100_000,
            threads: ExecConfig::default_threads(),
            solver: SolverConfig::default(),
            cache_dir: None,
        }
    }
}

/// Where and why a path ended.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathStatus {
    /// The packet reached an output port with no outgoing link — the path's
    /// natural end, where reachability queries inspect the state.
    Delivered {
        /// Element where the packet ended.
        element: ElementId,
        /// Output port index where the packet ended.
        port: usize,
    },
    /// The path terminated early.
    Dropped {
        /// Element where the path ended.
        element: ElementId,
        /// Why the path ended.
        reason: DropReason,
    },
}

impl PathStatus {
    /// True if the packet was delivered to an unlinked output port.
    pub fn is_delivered(&self) -> bool {
        matches!(self, PathStatus::Delivered { .. })
    }
}

/// One explored execution path.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PathReport {
    /// Sequential path identifier.
    pub id: usize,
    /// Where and why the path ended.
    pub status: PathStatus,
    /// The final execution state (headers, metadata, tags, path condition,
    /// trace).
    pub state: ExecState,
}

impl PathReport {
    /// True if this path delivered the packet.
    pub fn is_delivered(&self) -> bool {
        self.status.is_delivered()
    }

    /// Ports visited by this path, in order.
    pub fn ports_visited(&self) -> Vec<&str> {
        self.state.ports_visited()
    }
}

/// Work-stealing scheduler counters for one run, merged across workers.
///
/// Excluded from serialized reports (`#[serde(skip)]` on
/// [`ExecutionReport::sched`], absent from the JSON rendering) for the same
/// reason as the solver's `memo_*` counters: which worker pops which path is
/// scheduling-dependent, and reports must stay byte-identical across thread
/// counts. The sec85 table and the bench harness print them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Paths a worker popped from its own deque (the contention-free case).
    pub local_hits: u64,
    /// Steal operations: each takes a batch from the FIFO end of a victim's
    /// deque and immediately runs the batch's first path.
    pub steals: u64,
    /// Extra paths carried along by batch steals (beyond the one executed
    /// immediately); they are re-queued on the thief's own deque, so one steal
    /// keeps a previously starved worker busy for several steps.
    pub batch_stolen: u64,
    /// Forked children that did not fit the bounded local deque and spilled
    /// to the shared overflow injector.
    pub overflow_pushes: u64,
}

impl SchedStats {
    /// Merges another worker's counters into this record.
    pub fn merge(&mut self, other: &SchedStats) {
        self.local_hits += other.local_hits;
        self.steals += other.steals;
        self.batch_stolen += other.batch_stolen;
        self.overflow_pushes += other.overflow_pushes;
    }
}

/// The result of one [`SymNet::inject`] call.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Every explored path.
    pub paths: Vec<PathReport>,
    /// The symbolic packet as it was right after construction, before entering
    /// the first input port. Verification queries compare final states against
    /// this (field invariance, header visibility).
    pub injected: ExecState,
    /// Constraint-solver statistics for this run (the paper reports that >90%
    /// of runtime is solver time).
    pub solver_stats: SolverStats,
    /// Work-stealing scheduler counters (scheduling-dependent, hence skipped
    /// from serialization — see [`SchedStats`]).
    #[serde(skip)]
    pub sched: SchedStats,
    /// Wall-clock duration of the run.
    #[serde(skip)]
    pub wall_time: Duration,
}

impl ExecutionReport {
    /// Paths that delivered the packet to an unlinked output port.
    pub fn delivered(&self) -> impl Iterator<Item = &PathReport> {
        self.paths.iter().filter(|p| p.is_delivered())
    }

    /// Paths delivered at a specific element and output port.
    pub fn delivered_at(
        &self,
        element: ElementId,
        port: usize,
    ) -> impl Iterator<Item = &PathReport> + '_ {
        self.paths
            .iter()
            .filter(move |p| p.status == PathStatus::Delivered { element, port })
    }

    /// Paths that were dropped, with their reasons.
    pub fn dropped(&self) -> impl Iterator<Item = &PathReport> {
        self.paths.iter().filter(|p| !p.is_delivered())
    }

    /// Paths that ended because a loop was detected.
    pub fn loops(&self) -> impl Iterator<Item = &PathReport> {
        self.paths.iter().filter(|p| {
            matches!(
                &p.status,
                PathStatus::Dropped {
                    reason: DropReason::Loop,
                    ..
                }
            )
        })
    }

    /// Total number of explored paths.
    pub fn path_count(&self) -> usize {
        self.paths.len()
    }
}

/// Status of a packet flow while executing one element's code.
#[derive(Clone, Debug, PartialEq, Eq)]
enum FlowStatus {
    /// Still executing.
    Running,
    /// Forwarded to an output port of the current element.
    SentTo(usize),
    /// Terminated.
    Dropped(DropReason),
}

/// A packet flow inside one element.
#[derive(Clone, Debug)]
struct Flow {
    state: ExecState,
    status: FlowStatus,
}

impl Flow {
    fn running(state: ExecState) -> Self {
        Flow {
            state,
            status: FlowStatus::Running,
        }
    }

    fn dropped(state: ExecState, reason: DropReason) -> Self {
        Flow {
            state,
            status: FlowStatus::Dropped(reason),
        }
    }
}

/// One loop-detection snapshot: the port that was visited plus the projected
/// feasible set of every configured loop field at that visit.
#[derive(Debug)]
struct HistoryEntry {
    element: ElementId,
    input_port: usize,
    snapshot: Vec<Option<IntervalSet>>,
    parent: History,
}

/// The per-path history of loop-detection snapshots, as an `Arc`-based
/// persistent list: forking a path shares the parent's history (one pointer
/// clone) instead of copying a vector of interval sets per child.
#[derive(Clone, Debug, Default)]
struct History(Option<Arc<HistoryEntry>>);

impl History {
    /// Returns this history extended by one snapshot (O(1), the receiver
    /// becomes the shared tail).
    #[must_use]
    fn push(
        &self,
        element: ElementId,
        input_port: usize,
        snapshot: Vec<Option<IntervalSet>>,
    ) -> History {
        History(Some(Arc::new(HistoryEntry {
            element,
            input_port,
            snapshot,
            parent: self.clone(),
        })))
    }

    /// Iterates over the entries, newest first.
    fn iter(&self) -> impl Iterator<Item = &HistoryEntry> {
        std::iter::successors(self.0.as_deref(), |e| e.parent.0.as_deref())
    }
}

/// A path waiting to be processed at an element input port.
///
/// Because every component is persistent (`ExecState`, `History`, the
/// allocator is a small value), cloning a `PendingPath` is O(1) — which is
/// what lets the resident service ([`crate::service`]) snapshot every
/// element-entry event as a *checkpoint* and later re-explore only the
/// subtrees invalidated by a rule delta.
#[derive(Clone, Debug)]
pub(crate) struct PendingPath {
    state: ExecState,
    element: ElementId,
    input_port: usize,
    hops: usize,
    /// Per-path history of loop-detection snapshots (persistent list, shared
    /// with the siblings this path forked from).
    history: History,
    /// Fresh-variable allocator for this path. Each path carries its own
    /// allocator (seeded from the post-construction state) so that variable
    /// ids depend only on the path's own history, never on the order in which
    /// worker threads interleave — a prerequisite for deterministic reports.
    symbols: VarAllocator,
    /// Breadth-first position of this pending path: the emission index at
    /// every fork since injection. Comparing `(lineage.len(), lineage)`
    /// lexicographically reproduces the FIFO processing order of the
    /// single-threaded engine.
    lineage: Vec<u32>,
}

impl PendingPath {
    /// The element this path is about to enter (the invalidation key of the
    /// resident service: a rule delta to this element makes the whole subtree
    /// explored from here stale).
    pub(crate) fn element(&self) -> ElementId {
        self.element
    }

    /// The fork lineage of this pending path. `a` is an ancestor of `b` iff
    /// `a.lineage` is a strict prefix of `b.lineage`.
    pub(crate) fn lineage(&self) -> &[u32] {
        &self.lineage
    }

    /// The execution state at this element entry.
    pub(crate) fn state(&self) -> &ExecState {
        &self.state
    }
}

/// Mutable context used by the interpreter while processing one pending path.
/// Workers own one context each — the engine's scoped workers for the length
/// of a run, the serving subsystem's pool workers ([`crate::server`]) for the
/// life of the pool — so the solver's memo tables stay warm across steps (and,
/// in the server, across queries).
pub(crate) struct Ctx {
    solver: Solver,
    symbols: VarAllocator,
}

impl Ctx {
    /// A fresh per-worker context. The allocator is a placeholder: every
    /// processed path installs its own allocator for the duration of its step.
    pub(crate) fn new(config: SolverConfig) -> Ctx {
        Ctx {
            solver: Solver::with_config(config),
            symbols: VarAllocator::new(),
        }
    }
}

/// Deterministic sort key of one emitted path: the lineage of the pending
/// path whose processing emitted it, plus the emission index within that
/// processing step. Ordering by `(parent depth, parent lineage, index)` is
/// exactly the emission order of the sequential engine (pending paths are
/// processed in breadth-first lineage order, and a step's emissions are
/// ordered by index).
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct EmitKey {
    parent: Vec<u32>,
    event: u32,
}

impl EmitKey {
    /// Lineage of the pending path whose processing emitted this path.
    pub(crate) fn parent(&self) -> &[u32] {
        &self.parent
    }
}

impl Ord for EmitKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.parent
            .len()
            .cmp(&other.parent.len())
            .then_with(|| self.parent.cmp(&other.parent))
            .then_with(|| self.event.cmp(&other.event))
    }
}

impl PartialOrd for EmitKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One terminated path, before ids are assigned.
#[derive(Clone, Debug)]
pub(crate) struct RawResult {
    pub(crate) key: EmitKey,
    pub(crate) status: PathStatus,
    pub(crate) state: ExecState,
}

/// The shared path budget enforcing [`ExecConfig::max_paths`] exactly: every
/// reported path reserves one slot atomically *before* it is recorded, so no
/// interleaving of workers can over-produce.
pub(crate) struct PathBudget {
    reserved: AtomicUsize,
    cap: usize,
}

impl PathBudget {
    pub(crate) fn new(cap: usize) -> Self {
        PathBudget {
            reserved: AtomicUsize::new(0),
            cap,
        }
    }

    /// Reserves one report slot; `false` means the cap is reached and the
    /// path must be discarded.
    fn try_reserve(&self) -> bool {
        self.reserved
            .fetch_update(AtomicOrdering::Relaxed, AtomicOrdering::Relaxed, |n| {
                (n < self.cap).then_some(n + 1)
            })
            .is_ok()
    }

    /// True once every slot is taken (exploration can stop).
    pub(crate) fn exhausted(&self) -> bool {
        self.reserved.load(AtomicOrdering::Relaxed) >= self.cap
    }
}

/// Collects the emissions (terminated paths and forked pending paths) of one
/// processing step, assigning lineage/keys from a per-step event counter.
struct StepSink<'a> {
    parent: &'a [u32],
    next_event: u32,
    budget: &'a PathBudget,
    results: &'a mut Vec<RawResult>,
    children: &'a mut Vec<PendingPath>,
}

impl<'a> StepSink<'a> {
    fn new(
        parent: &'a [u32],
        budget: &'a PathBudget,
        results: &'a mut Vec<RawResult>,
        children: &'a mut Vec<PendingPath>,
    ) -> Self {
        StepSink {
            parent,
            next_event: 0,
            budget,
            results,
            children,
        }
    }

    /// Emits a terminated path. The path is recorded only if it fits the
    /// [`ExecConfig::max_paths`] budget (the event index is consumed either
    /// way, keeping sibling ordering stable).
    fn emit(&mut self, status: PathStatus, state: ExecState) {
        let key = EmitKey {
            parent: self.parent.to_vec(),
            event: self.next_event,
        };
        self.next_event += 1;
        if !self.budget.try_reserve() {
            return;
        }
        self.results.push(RawResult { key, status, state });
    }

    /// Spawns a pending path to be processed later.
    fn spawn(
        &mut self,
        state: ExecState,
        element: ElementId,
        input_port: usize,
        hops: usize,
        history: History,
        symbols: VarAllocator,
    ) {
        let mut lineage = self.parent.to_vec();
        lineage.push(self.next_event);
        self.next_event += 1;
        self.children.push(PendingPath {
            state,
            element,
            input_port,
            hops,
            history,
            symbols,
            lineage,
        });
    }
}

/// Capacity of each worker's local deque. Children beyond this spill to the
/// shared overflow injector, which doubles as natural load shedding: a worker
/// producing paths faster than it can drain them hands the surplus to idle
/// peers without waiting to be robbed.
const LOCAL_DEQUE_CAP: usize = 256;

/// The work-stealing scheduler of the parallel driver — generic over the work
/// item so the serving subsystem ([`crate::server`]) can run the same protocol
/// over query-tagged paths in a long-lived pool.
///
/// Topology: one bounded deque per worker plus one shared overflow injector.
/// The owner pushes and pops at the *back* of its deque (LIFO — depth-first
/// locally, which keeps the working set small and the persistent-state
/// sharing warm), thieves and the injector path take from the *front* (FIFO —
/// the oldest, shallowest path, whose subtree is the largest unit of work a
/// thief can take in one grab). See DESIGN.md for the protocol diagram.
///
/// Termination: `outstanding` counts queued plus in-flight paths. It is
/// incremented for a step's children *before* they are published and
/// decremented for the finished step *after*, so it can only read zero once
/// no path exists anywhere and none is being processed — at which point every
/// worker exits. `queued` (incremented before a push, decremented after a
/// pop) lets an idle worker decide, under the sleep lock, whether anything is
/// worth re-scanning; producers bump it before taking the same lock to
/// notify, so a sleeper can never miss a wakeup.
///
/// A **persistent** scheduler (the server pool) never terminates on
/// `outstanding == 0`: an empty pool just means no query is in flight, so
/// idle workers sleep until [`StealScheduler::inject`] publishes the roots of
/// a newly admitted query or [`StealScheduler::stop`] shuts the pool down.
pub(crate) struct StealScheduler<T> {
    /// One bounded deque per worker.
    locals: Vec<Mutex<VecDeque<T>>>,
    /// Shared overflow injector: the injection roots plus local overflow.
    injector: Mutex<VecDeque<T>>,
    /// Queued + in-flight paths; 0 means no work can ever appear again.
    outstanding: AtomicUsize,
    /// Paths currently sitting in some queue (conservative: incremented
    /// before a push becomes visible, decremented after a pop).
    queued: AtomicUsize,
    /// Set when the path budget stops the run (or a worker panics).
    stopped: AtomicBool,
    /// The first caught worker panic, rendered as text. Recorded *before*
    /// `stop()` so the driver can distinguish "stopped by budget" from
    /// "stopped by panic".
    panic: Mutex<Option<String>>,
    /// Sleep coordination for idle workers.
    idle: Mutex<()>,
    ready: Condvar,
    /// Long-lived pool mode: an empty scheduler parks its workers instead of
    /// terminating them (see the type docs).
    persistent: bool,
}

/// Locks a mutex, tolerating poison: the engine catches worker panics and
/// shuts the run down itself, so a poisoned lock only means "some worker
/// unwound mid-step" — the protected data (queues of pending paths, the panic
/// slot) is still structurally valid and the remaining workers must keep
/// draining instead of cascading `expect("poisoned")` panics through the
/// whole pool.
pub(crate) fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a caught panic payload as text (panics carry `&str` or `String`
/// payloads in practice; anything else gets a placeholder).
pub(crate) fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic>".to_string()
    }
}

impl<T> StealScheduler<T> {
    fn new(workers: usize, roots: Vec<T>) -> Self {
        let count = roots.len();
        StealScheduler {
            locals: (0..workers)
                .map(|_| Mutex::new(VecDeque::with_capacity(LOCAL_DEQUE_CAP)))
                .collect(),
            injector: Mutex::new(VecDeque::from(roots)),
            outstanding: AtomicUsize::new(count),
            queued: AtomicUsize::new(count),
            stopped: AtomicBool::new(false),
            panic: Mutex::new(None),
            idle: Mutex::new(()),
            ready: Condvar::new(),
            persistent: false,
        }
    }

    /// An empty long-lived pool: workers park when no work exists instead of
    /// terminating, and only [`StealScheduler::stop`] ends them. Work arrives
    /// later through [`StealScheduler::inject`].
    pub(crate) fn persistent(workers: usize) -> Self {
        StealScheduler {
            persistent: true,
            ..StealScheduler::new(workers, Vec::new())
        }
    }

    /// Publishes externally produced work (the root paths of a newly admitted
    /// query) onto the shared injector and wakes the pool.
    pub(crate) fn inject(&self, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        self.outstanding
            .fetch_add(items.len(), AtomicOrdering::SeqCst);
        self.queued.fetch_add(items.len(), AtomicOrdering::SeqCst);
        relock(&self.injector).extend(items);
        self.wake_all();
    }

    /// Blocks until a pending path is available for worker `me`; `None` means
    /// the run is over (every queue drained with nothing in flight, or
    /// stopped by the path budget / pool shutdown).
    pub(crate) fn pop(&self, me: usize, stats: &mut SchedStats) -> Option<T> {
        loop {
            if self.stopped.load(AtomicOrdering::SeqCst) {
                return None;
            }
            // 1. Own deque, newest first (contention-free in the common case).
            if let Some(p) = relock(&self.locals[me]).pop_back() {
                self.queued.fetch_sub(1, AtomicOrdering::SeqCst);
                stats.local_hits += 1;
                return Some(p);
            }
            // 2. Shared overflow injector (roots + spilled children), oldest
            // first.
            if let Some(p) = relock(&self.injector).pop_front() {
                self.queued.fetch_sub(1, AtomicOrdering::SeqCst);
                return Some(p);
            }
            // 3. Steal from a victim, scanning peers round-robin from our
            // right neighbour so thieves spread instead of mobbing worker 0.
            // Steal-half batching: take up to half the victim's deque from the
            // FIFO end (the oldest, shallowest paths — the largest subtrees) in
            // one lock acquisition, run the first stolen path now and park the
            // rest on our own (empty — we only steal when dry) deque. One
            // steal thus feeds a starved worker for several steps instead of
            // sending it back to the victim's lock after every path.
            let n = self.locals.len();
            for offset in 1..n {
                let victim = (me + offset) % n;
                let batch: Vec<T> = {
                    let mut deque = relock(&self.locals[victim]);
                    let take = deque.len().div_ceil(2).min(LOCAL_DEQUE_CAP);
                    deque.drain(..take).collect()
                };
                if batch.is_empty() {
                    continue;
                }
                stats.steals += 1;
                stats.batch_stolen += (batch.len() - 1) as u64;
                // Only the path we execute leaves the queues; the rest stay
                // queued (now on our deque), so `queued` drops by exactly one.
                self.queued.fetch_sub(1, AtomicOrdering::SeqCst);
                let mut batch = batch.into_iter();
                let first = batch.next();
                let rest: Vec<T> = batch.collect();
                if !rest.is_empty() {
                    relock(&self.locals[me]).extend(rest);
                    // The parked paths became stealable again from a new
                    // location; let sleepers re-scan.
                    self.wake_all();
                }
                return first;
            }
            // 4. Nothing anywhere: the run is over iff nothing is in flight
            // (in-flight steps may still publish children). Otherwise sleep
            // until a producer notifies; the double-check of `queued` under
            // the sleep lock closes the race with a producer that published
            // between our scan and the lock (producers bump `queued` before
            // taking the lock to notify). The timeout is a belt-and-braces
            // backstop, not load-bearing. A persistent pool never terminates
            // on emptiness — an idle pool parks here until the next query's
            // roots are injected or the pool is stopped.
            if !self.persistent && self.outstanding.load(AtomicOrdering::SeqCst) == 0 {
                self.wake_all();
                return None;
            }
            let guard = relock(&self.idle);
            if self.queued.load(AtomicOrdering::SeqCst) == 0
                && !self.stopped.load(AtomicOrdering::SeqCst)
                && (self.persistent || self.outstanding.load(AtomicOrdering::SeqCst) != 0)
            {
                let _ = self
                    .ready
                    .wait_timeout(guard, Duration::from_millis(1))
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Publishes the children of a finished processing step onto worker
    /// `me`'s deque (overflow spilling to the injector) and retires the step.
    pub(crate) fn complete(&self, me: usize, children: Vec<T>, stats: &mut SchedStats) {
        if !children.is_empty() {
            // Count the children as outstanding *before* they become visible
            // so `outstanding` can never dip to zero while work exists.
            self.outstanding
                .fetch_add(children.len(), AtomicOrdering::SeqCst);
            self.queued
                .fetch_add(children.len(), AtomicOrdering::SeqCst);
            let mut spill: Vec<T> = Vec::new();
            {
                let mut local = relock(&self.locals[me]);
                for child in children {
                    if local.len() < LOCAL_DEQUE_CAP {
                        local.push_back(child);
                    } else {
                        spill.push(child);
                    }
                }
            }
            if !spill.is_empty() {
                stats.overflow_pushes += spill.len() as u64;
                relock(&self.injector).extend(spill);
            }
            self.retire();
            self.wake_all();
        } else {
            self.retire();
        }
    }

    /// Retires one in-flight step; wakes every sleeper if that was the last
    /// outstanding path (so they observe termination).
    fn retire(&self) {
        if self.outstanding.fetch_sub(1, AtomicOrdering::SeqCst) == 1 {
            self.wake_all();
        }
    }

    /// Stops the run (path budget exhausted, a worker unwound, or — for a
    /// persistent pool — shutdown).
    pub(crate) fn stop(&self) {
        self.stopped.store(true, AtomicOrdering::SeqCst);
        self.wake_all();
    }

    /// Records a caught worker panic (the first one wins — later panics are
    /// usually knock-on effects of the first) and stops the run so every peer
    /// drains cleanly instead of waiting forever for the dead step to retire.
    fn poison(&self, message: String) {
        {
            let mut slot = relock(&self.panic);
            if slot.is_none() {
                *slot = Some(message);
            }
        }
        self.stop();
    }

    /// Takes the recorded panic message, if any worker panicked.
    fn take_panic(&self) -> Option<String> {
        relock(&self.panic).take()
    }

    /// Notifies every sleeping worker. Taking the sleep lock orders the
    /// notification after any in-progress sleeper's queue re-check.
    fn wake_all(&self) {
        let _guard = relock(&self.idle);
        self.ready.notify_all();
    }
}

/// The output of the packet-construction phase of an injection: the root
/// pending paths, any paths that terminated during construction, the
/// post-construction injected state and the construction solver's counters.
pub(crate) struct Construction {
    pub(crate) results: Vec<RawResult>,
    pub(crate) roots: Vec<PendingPath>,
    pub(crate) injected: ExecState,
    pub(crate) solver_stats: SolverStats,
}

/// The output of an exploration phase: terminated paths, the element-entry
/// checkpoints collected for the resident service (empty unless requested)
/// and the merged per-worker statistics.
pub(crate) struct Exploration {
    pub(crate) results: Vec<RawResult>,
    pub(crate) checkpoints: Vec<PendingPath>,
    pub(crate) solver_stats: SolverStats,
    pub(crate) sched: SchedStats,
}

/// What one worker thread hands back when the run drains.
struct WorkerOutput {
    results: Vec<RawResult>,
    checkpoints: Vec<PendingPath>,
    solver_stats: SolverStats,
    sched: SchedStats,
}

/// The SymNet symbolic execution engine.
///
/// The network is held behind an [`Arc`] so that the resident service
/// ([`crate::service`]) can hand out engine snapshots sharing one topology:
/// applying a delta clones the `Arc`'d network (copy-on-write), while
/// in-flight queries keep reading the snapshot they started with.
#[derive(Clone, Debug)]
pub struct SymNet {
    network: Arc<Network>,
    config: ExecConfig,
}

impl SymNet {
    /// Creates an engine over a network with the default configuration.
    pub fn new(network: Network) -> Self {
        SymNet {
            network: Arc::new(network),
            config: ExecConfig::default(),
        }
    }

    /// Creates an engine with an explicit configuration.
    pub fn with_config(network: Network, config: ExecConfig) -> Self {
        SymNet {
            network: Arc::new(network),
            config,
        }
    }

    /// Creates an engine over an already-shared network snapshot (O(1): no
    /// topology copy — the resident service's entry point).
    pub fn shared(network: Arc<Network>, config: ExecConfig) -> Self {
        SymNet { network, config }
    }

    /// The underlying network.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The execution configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// Injects a packet built by `packet` (a construction instruction block,
    /// see [`symnet_sefl::packet`]) at `element`'s input port `input_port` and
    /// explores every execution path.
    ///
    /// # Panics
    ///
    /// Panics — once, cleanly, on the caller's thread — if a worker panicked
    /// while processing a path (a defect in a model or the engine). Use
    /// [`SymNet::try_inject`] to handle that case as an error instead.
    pub fn inject(
        &self,
        element: ElementId,
        input_port: usize,
        packet: &Instruction,
    ) -> ExecutionReport {
        match self.try_inject(element, input_port, packet) {
            Ok(report) => report,
            Err(e) => panic!("{e}"),
        }
    }

    /// Like [`SymNet::inject`], but a worker panic is caught, the scheduler
    /// is drained cleanly and the failure is returned as
    /// [`EngineError::WorkerPanicked`] instead of aborting the caller.
    pub fn try_inject(
        &self,
        element: ElementId,
        input_port: usize,
        packet: &Instruction,
    ) -> Result<ExecutionReport, EngineError> {
        let start = Instant::now();
        let budget = PathBudget::new(self.config.max_paths);
        let construction = self.construct_roots(element, input_port, packet, &budget)?;
        let exploration = self.explore(construction.roots, &budget, false)?;
        let mut results = construction.results;
        results.extend(exploration.results);
        let mut solver_stats = exploration.solver_stats;
        solver_stats.merge(&construction.solver_stats);
        Ok(finalize_report(
            results,
            construction.injected,
            solver_stats,
            exploration.sched,
            start,
        ))
    }

    /// Builds the symbolic packet in the context of the injection element and
    /// turns the surviving construction flows into root pending paths.
    ///
    /// This runs on the caller's thread; every root path then starts from a
    /// clone of the post-construction allocator, so fresh variables allocated
    /// later are a function of the path alone.
    pub(crate) fn construct_roots(
        &self,
        element: ElementId,
        input_port: usize,
        packet: &Instruction,
        budget: &PathBudget,
    ) -> Result<Construction, EngineError> {
        let mut ctx = Ctx {
            solver: Solver::with_config(self.config.solver),
            symbols: VarAllocator::new(),
        };
        let mut results: Vec<RawResult> = Vec::new();
        let mut roots: Vec<PendingPath> = Vec::new();
        let prefix = local_prefix(&self.network, element);
        let flows = catch_unwind(AssertUnwindSafe(|| {
            exec_instr(
                &mut ctx,
                &prefix,
                element,
                &self.network,
                packet,
                ExecState::new(),
            )
        }))
        .map_err(|payload| EngineError::WorkerPanicked {
            message: panic_message(payload.as_ref()),
        })?;
        let mut injected = ExecState::new();
        let mut first = true;
        {
            let mut sink = StepSink::new(&[], budget, &mut results, &mut roots);
            for flow in flows {
                match flow.status {
                    FlowStatus::Running => {
                        if first {
                            injected = flow.state.clone();
                            first = false;
                        }
                        sink.spawn(
                            flow.state,
                            element,
                            input_port,
                            0,
                            History::default(),
                            ctx.symbols.clone(),
                        );
                    }
                    FlowStatus::SentTo(_) => sink.emit(
                        PathStatus::Dropped {
                            element,
                            reason: DropReason::Memory(
                                "packet construction code must not forward".into(),
                            ),
                        },
                        flow.state,
                    ),
                    FlowStatus::Dropped(reason) => {
                        sink.emit(PathStatus::Dropped { element, reason }, flow.state)
                    }
                }
            }
        }
        Ok(Construction {
            results,
            roots,
            injected,
            solver_stats: ctx.solver.into_stats(),
        })
    }

    /// Explores every path reachable from `roots`: single-threaded drains a
    /// plain FIFO (the legacy loop), multi-threaded runs the work-stealing
    /// scheduler with per-worker solver contexts. Both produce the same set
    /// of raw results (and, when `collect_checkpoints` is set, one O(1)
    /// [`PendingPath`] checkpoint per processed element entry — the resident
    /// service's re-verification roots).
    pub(crate) fn explore(
        &self,
        roots: Vec<PendingPath>,
        budget: &PathBudget,
        collect_checkpoints: bool,
    ) -> Result<Exploration, EngineError> {
        let workers = self.config.threads.max(1);
        if workers == 1 {
            let mut ctx = Ctx {
                solver: Solver::with_config(self.config.solver),
                symbols: VarAllocator::new(),
            };
            let mut results = Vec::new();
            let mut checkpoints = Vec::new();
            let mut sched = SchedStats::default();
            self.drive_sequential(
                &mut ctx,
                budget,
                roots,
                collect_checkpoints,
                &mut results,
                &mut checkpoints,
                &mut sched,
            )?;
            Ok(Exploration {
                results,
                checkpoints,
                solver_stats: ctx.solver.into_stats(),
                sched,
            })
        } else {
            self.drive_parallel(workers, budget, roots, collect_checkpoints)
        }
    }

    /// The single-threaded driver: the legacy FIFO loop (every pop counts as
    /// a local hit — there is nobody to steal from).
    #[allow(clippy::too_many_arguments)]
    fn drive_sequential(
        &self,
        ctx: &mut Ctx,
        budget: &PathBudget,
        roots: Vec<PendingPath>,
        collect_checkpoints: bool,
        results: &mut Vec<RawResult>,
        checkpoints: &mut Vec<PendingPath>,
        sched: &mut SchedStats,
    ) -> Result<(), EngineError> {
        let mut worklist: VecDeque<PendingPath> = VecDeque::from(roots);
        let mut children: Vec<PendingPath> = Vec::new();
        while let Some(pending) = worklist.pop_front() {
            if budget.exhausted() {
                break;
            }
            sched.local_hits += 1;
            if collect_checkpoints {
                checkpoints.push(pending.clone());
            }
            catch_unwind(AssertUnwindSafe(|| {
                self.process_pending(ctx, budget, pending, results, &mut children)
            }))
            .map_err(|payload| EngineError::WorkerPanicked {
                message: panic_message(payload.as_ref()),
            })?;
            worklist.extend(children.drain(..));
        }
        Ok(())
    }

    /// The multi-threaded driver: `workers` scoped threads run the
    /// work-stealing scheduler; each owns a solver whose statistics — and
    /// scheduler counters — are merged into the returned exploration.
    ///
    /// A panic inside a processing step is caught by the worker itself, which
    /// records it in the scheduler and stops the run; every peer then drains
    /// and joins normally, and the first panic comes back as
    /// [`EngineError::WorkerPanicked`]. A panic *outside* the catch (an
    /// engine bug in the scheduler protocol itself) still unwinds the worker
    /// thread; the `PanicGuard` stops the run so peers exit, and the join
    /// error is mapped to the same `EngineError` instead of cascading.
    fn drive_parallel(
        &self,
        workers: usize,
        budget: &PathBudget,
        roots: Vec<PendingPath>,
        collect_checkpoints: bool,
    ) -> Result<Exploration, EngineError> {
        let sched = StealScheduler::new(workers, roots);
        let joined: Vec<Result<WorkerOutput, String>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|me| {
                    let sched = &sched;
                    scope.spawn(move || self.worker(sched, me, budget, collect_checkpoints))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().map_err(|payload| panic_message(payload.as_ref())))
                .collect()
        });
        let mut escaped_panic: Option<String> = None;
        let mut outputs: Vec<WorkerOutput> = Vec::new();
        for worker in joined {
            match worker {
                Ok(output) => outputs.push(output),
                Err(message) => escaped_panic = escaped_panic.or(Some(message)),
            }
        }
        if let Some(message) = sched.take_panic().or(escaped_panic) {
            return Err(EngineError::WorkerPanicked { message });
        }
        let mut exploration = Exploration {
            results: Vec::new(),
            checkpoints: Vec::new(),
            solver_stats: SolverStats::default(),
            sched: SchedStats::default(),
        };
        for output in outputs {
            exploration.results.extend(output.results);
            exploration.checkpoints.extend(output.checkpoints);
            exploration.solver_stats.merge(&output.solver_stats);
            exploration.sched.merge(&output.sched);
        }
        Ok(exploration)
    }

    /// One worker: pop pending paths (own deque first, then the injector,
    /// then stealing), process them with a thread-local context, publish
    /// forked children onto the own deque. A panicking step is caught here,
    /// recorded in the scheduler and ends this worker's loop.
    fn worker(
        &self,
        sched: &StealScheduler<PendingPath>,
        me: usize,
        budget: &PathBudget,
        collect_checkpoints: bool,
    ) -> WorkerOutput {
        // Backstop for panics that escape the per-step catch below (a bug in
        // the scheduler protocol itself): without it, the unwound worker's
        // in-flight slot would never be retired and every peer would wait
        // forever for `outstanding` to drain. The guard stops the scheduler
        // on unwind so peers exit; the join error is then surfaced by
        // `drive_parallel`.
        struct PanicGuard<'a> {
            sched: &'a StealScheduler<PendingPath>,
            armed: bool,
        }
        impl Drop for PanicGuard<'_> {
            fn drop(&mut self) {
                if self.armed {
                    self.sched.stop();
                }
            }
        }
        let mut guard = PanicGuard { sched, armed: true };

        let mut ctx = Ctx {
            solver: Solver::with_config(self.config.solver),
            symbols: VarAllocator::new(),
        };
        let mut results: Vec<RawResult> = Vec::new();
        let mut checkpoints: Vec<PendingPath> = Vec::new();
        let mut children: Vec<PendingPath> = Vec::new();
        let mut stats = SchedStats::default();
        while let Some(pending) = sched.pop(me, &mut stats) {
            if budget.exhausted() {
                sched.stop();
                sched.retire();
                break;
            }
            if collect_checkpoints {
                checkpoints.push(pending.clone());
            }
            let step = catch_unwind(AssertUnwindSafe(|| {
                self.process_pending(&mut ctx, budget, pending, &mut results, &mut children)
            }));
            match step {
                Ok(()) => sched.complete(me, std::mem::take(&mut children), &mut stats),
                Err(payload) => {
                    // First panic wins; `poison` stops the run so the peers
                    // drain. The dead step is never retired, which is fine:
                    // `stopped` short-circuits every `pop`.
                    sched.poison(panic_message(payload.as_ref()));
                    break;
                }
            }
        }
        guard.armed = false;
        WorkerOutput {
            results,
            checkpoints,
            solver_stats: ctx.solver.into_stats(),
            sched: stats,
        }
    }

    /// Processes one path arrival at an element input port, emitting
    /// terminated paths and forked children into the caller's buffers. This
    /// is the unit of work of both the per-run drivers above and the serving
    /// subsystem's long-lived pool ([`crate::server`]).
    pub(crate) fn process_pending(
        &self,
        ctx: &mut Ctx,
        budget: &PathBudget,
        pending: PendingPath,
        results: &mut Vec<RawResult>,
        children: &mut Vec<PendingPath>,
    ) {
        let PendingPath {
            mut state,
            element,
            input_port,
            hops,
            mut history,
            symbols,
            lineage,
        } = pending;
        // The path's allocator becomes the interpreter context's allocator for
        // the duration of this step; children snapshot it at spawn time.
        ctx.symbols = symbols;
        let mut sink = StepSink::new(&lineage, budget, results, children);
        let program = self.network.element(element);
        let prefix = local_prefix(&self.network, element);
        state.push_trace(TraceEntry::Port(
            self.network.port_label(element, true, input_port),
        ));

        // Loop detection (Figure 5): compare the projected state against every
        // previous visit of the same port on this path.
        if self.config.detect_loops {
            let snapshot = loop_snapshot(&self.config, ctx, &state);
            let revisit = history
                .iter()
                .filter(|e| e.element == element && e.input_port == input_port)
                .any(|e| snapshot_included(&e.snapshot, &snapshot));
            if revisit {
                sink.emit(
                    PathStatus::Dropped {
                        element,
                        reason: DropReason::Loop,
                    },
                    state,
                );
                return;
            }
            history = history.push(element, input_port, snapshot);
        }

        let input_code = program.code_for_input(input_port);
        let flows = exec_instr(ctx, &prefix, element, &self.network, &input_code, state);
        for flow in flows {
            match flow.status {
                FlowStatus::Running => sink.emit(
                    PathStatus::Dropped {
                        element,
                        reason: DropReason::NotForwarded,
                    },
                    flow.state,
                ),
                FlowStatus::Dropped(reason) => {
                    self.emit_drop(&mut sink, element, reason, flow.state)
                }
                FlowStatus::SentTo(out_port) => {
                    self.process_output(
                        ctx, element, out_port, hops, &history, flow.state, &mut sink,
                    );
                }
            }
        }
    }

    /// Runs output-port code and either follows the link or ends the path.
    #[allow(clippy::too_many_arguments)]
    fn process_output(
        &self,
        ctx: &mut Ctx,
        element: ElementId,
        out_port: usize,
        hops: usize,
        history: &History,
        mut state: ExecState,
        sink: &mut StepSink<'_>,
    ) {
        let program = self.network.element(element);
        let prefix = local_prefix(&self.network, element);
        if out_port >= program.output_count {
            self.emit_drop(
                sink,
                element,
                DropReason::Memory(format!("forward to missing output port {out_port}")),
                state,
            );
            return;
        }
        state.push_trace(TraceEntry::Port(
            self.network.port_label(element, false, out_port),
        ));
        let output_code = program.code_for_output(out_port);
        let flows = exec_instr(ctx, &prefix, element, &self.network, &output_code, state);
        for flow in flows {
            match flow.status {
                FlowStatus::Dropped(reason) => self.emit_drop(sink, element, reason, flow.state),
                FlowStatus::SentTo(_) => self.emit_drop(
                    sink,
                    element,
                    DropReason::Memory("output-port code must not forward".into()),
                    flow.state,
                ),
                FlowStatus::Running => match self.network.link_from(element, out_port) {
                    None => sink.emit(
                        PathStatus::Delivered {
                            element,
                            port: out_port,
                        },
                        flow.state,
                    ),
                    Some((next_element, next_port)) => {
                        if hops + 1 > self.config.max_hops {
                            self.emit_drop(sink, element, DropReason::HopLimit, flow.state);
                        } else {
                            sink.spawn(
                                flow.state,
                                next_element,
                                next_port,
                                hops + 1,
                                history.clone(),
                                ctx.symbols.clone(),
                            );
                        }
                    }
                },
            }
        }
    }

    fn emit_drop(
        &self,
        sink: &mut StepSink<'_>,
        element: ElementId,
        reason: DropReason,
        state: ExecState,
    ) {
        if reason == DropReason::InfeasibleBranch && !self.config.include_pruned {
            return;
        }
        sink.emit(PathStatus::Dropped { element, reason }, state);
    }
}

/// Projects the state onto the configured loop fields: for every field, the
/// set of values it can currently take (None if the field is not allocated on
/// this path or the projection is unknown).
fn loop_snapshot(
    config: &ExecConfig,
    ctx: &mut Ctx,
    state: &ExecState,
) -> Vec<Option<IntervalSet>> {
    let path = state.path_cond();
    config
        .loop_fields
        .iter()
        .map(|field| match state.read_field(field, "") {
            Err(_) => None,
            Ok(slot) => match slot.value {
                Value::Concrete(v) => Some(IntervalSet::point(v as i128)),
                Value::Sym { var, offset } => ctx
                    .solver
                    .feasible_values_path(path, var)
                    .map(|set| set.shift(offset as i128)),
            },
        })
        .collect()
}

/// "New state contains all possible values in the old state" (Figure 5.d):
/// every projected field of the old snapshot must be a subset of the new one.
fn snapshot_included(old: &[Option<IntervalSet>], new: &[Option<IntervalSet>]) -> bool {
    if old.len() != new.len() {
        return false;
    }
    let mut comparable = false;
    for (o, n) in old.iter().zip(new.iter()) {
        match (o, n) {
            (Some(o), Some(n)) => {
                if !o.is_subset_of(n) {
                    return false;
                }
                comparable = true;
            }
            (None, None) => {}
            _ => return false,
        }
    }
    comparable
}

/// Sorts raw results into the deterministic report order (fork lineage — the
/// emission order of the sequential engine), assigns sequential ids and wraps
/// everything into an [`ExecutionReport`]. Shared by [`SymNet::try_inject`]
/// and the resident service, which merges kept pre-delta results with freshly
/// re-explored ones before finalizing.
pub(crate) fn finalize_report(
    mut results: Vec<RawResult>,
    injected: ExecState,
    solver_stats: SolverStats,
    sched: SchedStats,
    start: Instant,
) -> ExecutionReport {
    results.sort_by(|a, b| a.key.cmp(&b.key));
    let paths = results
        .into_iter()
        .enumerate()
        .map(|(id, raw)| PathReport {
            id,
            status: raw.status,
            state: raw.state,
        })
        .collect();
    ExecutionReport {
        paths,
        injected,
        solver_stats,
        sched,
        wall_time: start.elapsed(),
    }
}

/// The metadata namespace prefix for local allocations of an element instance.
/// Public so that reference executors (the differential fuzzer's concrete
/// replay) resolve local metadata exactly like the symbolic engine does.
pub fn local_prefix(network: &Network, element: ElementId) -> String {
    format!("local:{}#{}:", network.element(element).name, element.0)
}

/// Interprets one instruction over one state, producing the resulting flows.
/// `element` and `network` are threaded through for instructions that need
/// the surrounding topology context (none of the current instruction set
/// does outside of recursion, hence the lint allowance).
#[allow(clippy::only_used_in_recursion)]
fn exec_instr(
    ctx: &mut Ctx,
    local_prefix: &str,
    element: ElementId,
    network: &Network,
    instr: &Instruction,
    mut state: ExecState,
) -> Vec<Flow> {
    match instr {
        Instruction::NoOp => vec![Flow::running(state)],
        Instruction::Block(instrs) => {
            let mut flows = vec![Flow::running(state)];
            for i in instrs {
                let mut next = Vec::with_capacity(flows.len());
                for flow in flows {
                    match flow.status {
                        FlowStatus::Running => next.extend(exec_instr(
                            ctx,
                            local_prefix,
                            element,
                            network,
                            i,
                            flow.state,
                        )),
                        _ => next.push(flow),
                    }
                }
                flows = next;
            }
            flows
        }
        Instruction::Allocate {
            field,
            width,
            visibility,
        } => simple(state, |s| {
            s.allocate_field(field, *width, *visibility, local_prefix)
        }),
        Instruction::Deallocate { field, width } => {
            simple(state, |s| s.deallocate_field(field, *width, local_prefix))
        }
        Instruction::Assign { field, expr } => {
            let width_hint = state
                .read_field(field, local_prefix)
                .map(|s| s.width)
                .unwrap_or(crate::state::DEFAULT_META_WIDTH);
            let value = match state.eval_expr(expr, &mut ctx.symbols, width_hint, local_prefix) {
                Ok(v) => v,
                Err(e) => return vec![Flow::dropped(state, DropReason::Memory(e.to_string()))],
            };
            state.push_trace(TraceEntry::Instruction(format!("Assign({field},{expr})")));
            simple(state, |s| s.write_field(field, value, local_prefix))
        }
        Instruction::CreateTag { name, value } => {
            let addr = match state.resolve_addr(value) {
                Ok(a) => a,
                Err(e) => return vec![Flow::dropped(state, DropReason::Memory(e.to_string()))],
            };
            state.create_tag(name.clone(), addr);
            vec![Flow::running(state)]
        }
        Instruction::DestroyTag { name } => simple(state, |s| s.destroy_tag(name)),
        Instruction::Constrain(cond) => {
            let lowered = match state.lower_condition(cond, &mut ctx.symbols, local_prefix) {
                Ok(f) => f,
                Err(e) => return vec![Flow::dropped(state, DropReason::Memory(e.to_string()))],
            };
            state.push_trace(TraceEntry::Instruction(format!("Constrain({cond})")));
            state.add_constraint(lowered);
            if ctx.solver.is_unsat_path(state.path_cond()) {
                let detail = cond.to_string();
                vec![Flow::dropped(state, DropReason::Unsatisfiable(detail))]
            } else {
                vec![Flow::running(state)]
            }
        }
        Instruction::Fail(msg) => {
            state.push_trace(TraceEntry::Message(msg.clone()));
            vec![Flow::dropped(state, DropReason::Failed(msg.clone()))]
        }
        // The deliberate poison pill: a deterministic panic in both debug and
        // release builds, simulating a defective model or engine. The panic
        // is caught by the worker loop and surfaced as
        // [`EngineError::WorkerPanicked`].
        Instruction::Abort(msg) => panic!("SEFL Abort: {msg}"),
        Instruction::If { .. } => {
            // If-chains (an `If` whose else branch is another `If`) are walked
            // iteratively: the basic switch/router models of §8.1 nest one `If`
            // per table entry, and recursing per entry would overflow the
            // stack on large tables.
            let mut flows = Vec::new();
            let mut current = instr;
            let mut current_state = state;
            loop {
                let Instruction::If {
                    cond,
                    then_branch,
                    else_branch,
                } = current
                else {
                    flows.extend(exec_instr(
                        ctx,
                        local_prefix,
                        element,
                        network,
                        current,
                        current_state,
                    ));
                    break;
                };
                let lowered =
                    match current_state.lower_condition(cond, &mut ctx.symbols, local_prefix) {
                        Ok(f) => f,
                        Err(e) => {
                            flows.push(Flow::dropped(
                                current_state,
                                DropReason::Memory(e.to_string()),
                            ));
                            break;
                        }
                    };
                // Then branch.
                let mut then_state = current_state.clone();
                then_state.push_trace(TraceEntry::Instruction(format!("If({cond}) [then]")));
                then_state.add_constraint(lowered.clone());
                if ctx.solver.is_unsat_path(then_state.path_cond()) {
                    flows.push(Flow::dropped(then_state, DropReason::InfeasibleBranch));
                } else {
                    flows.extend(exec_instr(
                        ctx,
                        local_prefix,
                        element,
                        network,
                        then_branch,
                        then_state,
                    ));
                }
                // Else branch: continue the walk without recursing.
                current_state.push_trace(TraceEntry::Instruction(format!("If({cond}) [else]")));
                current_state.add_constraint(symnet_solver::Formula::not(lowered));
                if ctx.solver.is_unsat_path(current_state.path_cond()) {
                    flows.push(Flow::dropped(current_state, DropReason::InfeasibleBranch));
                    break;
                }
                current = else_branch;
            }
            flows
        }
        Instruction::For { var, pattern, body } => {
            // Snapshot the matching keys before the first iteration (the loop
            // body may create or destroy entries).
            let mut keys: Vec<String> = state
                .metadata()
                .map(|(k, _)| k.to_string())
                .filter_map(|k| {
                    let visible = k.strip_prefix(local_prefix).unwrap_or(&k);
                    if visible.starts_with("local:") {
                        None
                    } else if crate::state::glob_match(pattern, visible) {
                        Some(visible.to_string())
                    } else {
                        None
                    }
                })
                .collect();
            keys.sort();
            keys.dedup();
            let mut flows = vec![Flow::running(state)];
            for key in keys {
                let bound = substitute_meta(body, var, &key);
                let mut next = Vec::with_capacity(flows.len());
                for flow in flows {
                    match flow.status {
                        FlowStatus::Running => next.extend(exec_instr(
                            ctx,
                            local_prefix,
                            element,
                            network,
                            &bound,
                            flow.state,
                        )),
                        _ => next.push(flow),
                    }
                }
                flows = next;
            }
            flows
        }
        Instruction::Forward(port) => {
            state.push_trace(TraceEntry::Instruction(format!(
                "Forward(OutputPort({port}))"
            )));
            vec![Flow {
                state,
                status: FlowStatus::SentTo(*port),
            }]
        }
        Instruction::Fork(ports) => {
            if ports.is_empty() {
                return vec![Flow::dropped(state, DropReason::NotForwarded)];
            }
            state.push_trace(TraceEntry::Instruction(format!("Fork({ports:?})")));
            ports
                .iter()
                .map(|p| Flow {
                    state: state.clone(),
                    status: FlowStatus::SentTo(*p),
                })
                .collect()
        }
    }
}

/// Runs a state mutation that may raise a memory-safety error, converting the
/// error into a dropped flow.
fn simple(
    mut state: ExecState,
    op: impl FnOnce(&mut ExecState) -> Result<(), ExecError>,
) -> Vec<Flow> {
    match op(&mut state) {
        Ok(()) => vec![Flow::running(state)],
        Err(e) => vec![Flow::dropped(state, DropReason::Memory(e.to_string()))],
    }
}

/// Rewrites metadata references named `from` to `to` inside an instruction
/// tree — how `For` binds its loop variable. Public so concrete replay
/// interpreters unfold `For` loops with the exact binding semantics of the
/// symbolic engine.
pub fn substitute_meta(instr: &Instruction, from: &str, to: &str) -> Instruction {
    use symnet_sefl::cond::Condition;
    use symnet_sefl::expr::Expr;

    fn sub_field(f: &FieldRef, from: &str, to: &str) -> FieldRef {
        match f {
            FieldRef::Meta(k) if k == from => FieldRef::Meta(to.to_string()),
            other => other.clone(),
        }
    }
    fn sub_expr(e: &Expr, from: &str, to: &str) -> Expr {
        match e {
            Expr::Ref(f) => Expr::Ref(sub_field(f, from, to)),
            Expr::Add(a, b) => Expr::Add(
                Box::new(sub_expr(a, from, to)),
                Box::new(sub_expr(b, from, to)),
            ),
            Expr::Sub(a, b) => Expr::Sub(
                Box::new(sub_expr(a, from, to)),
                Box::new(sub_expr(b, from, to)),
            ),
            Expr::Neg(a) => Expr::Neg(Box::new(sub_expr(a, from, to))),
            other => other.clone(),
        }
    }
    fn sub_cond(c: &Condition, from: &str, to: &str) -> Condition {
        match c {
            Condition::Cmp { op, lhs, rhs } => Condition::Cmp {
                op: *op,
                lhs: sub_expr(lhs, from, to),
                rhs: sub_expr(rhs, from, to),
            },
            Condition::Match {
                field,
                value,
                prefix_len,
                width,
            } => Condition::Match {
                field: sub_field(field, from, to),
                value: *value,
                prefix_len: *prefix_len,
                width: *width,
            },
            Condition::And(parts) => {
                Condition::And(parts.iter().map(|p| sub_cond(p, from, to)).collect())
            }
            Condition::Or(parts) => {
                Condition::Or(parts.iter().map(|p| sub_cond(p, from, to)).collect())
            }
            Condition::Not(inner) => Condition::Not(Box::new(sub_cond(inner, from, to))),
            other => other.clone(),
        }
    }

    match instr {
        Instruction::Allocate {
            field,
            width,
            visibility,
        } => Instruction::Allocate {
            field: sub_field(field, from, to),
            width: *width,
            visibility: *visibility,
        },
        Instruction::Deallocate { field, width } => Instruction::Deallocate {
            field: sub_field(field, from, to),
            width: *width,
        },
        Instruction::Assign { field, expr } => Instruction::Assign {
            field: sub_field(field, from, to),
            expr: sub_expr(expr, from, to),
        },
        Instruction::Constrain(cond) => Instruction::Constrain(sub_cond(cond, from, to)),
        Instruction::If {
            cond,
            then_branch,
            else_branch,
        } => Instruction::If {
            cond: sub_cond(cond, from, to),
            then_branch: Box::new(substitute_meta(then_branch, from, to)),
            else_branch: Box::new(substitute_meta(else_branch, from, to)),
        },
        Instruction::For { var, pattern, body } if var != from => Instruction::For {
            var: var.clone(),
            pattern: pattern.clone(),
            body: Box::new(substitute_meta(body, from, to)),
        },
        Instruction::Block(instrs) => Instruction::Block(
            instrs
                .iter()
                .map(|i| substitute_meta(i, from, to))
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify;
    use symnet_sefl::cond::Condition;
    use symnet_sefl::expr::Expr;
    use symnet_sefl::fields::{ip_dst, ip_ttl, tcp_dst};
    use symnet_sefl::packet::symbolic_tcp_packet;
    use symnet_sefl::ElementProgram;

    /// The port-forwarding element of Figure 4 of the paper.
    fn figure4_element() -> ElementProgram {
        ElementProgram::new("A", 1, 3).with_any_input_code(Instruction::block(vec![
            Instruction::constrain(Condition::eq(ip_dst().field(), 0x8d552501u64)), // 141.85.37.1
            Instruction::if_else(
                Condition::eq(tcp_dst().field(), 123u64),
                Instruction::block(vec![
                    Instruction::assign(ip_dst().field(), Expr::constant(0xc0a80164)), // 192.168.1.100
                    Instruction::assign(tcp_dst().field(), Expr::constant(22)),
                    Instruction::forward(1),
                ]),
                Instruction::forward(2),
            ),
        ]))
    }

    #[test]
    fn figure4_port_forwarding_produces_two_paths() {
        let mut net = Network::new();
        let a = net.add_element(figure4_element());
        let engine = SymNet::new(net);
        let report = engine.inject(a, 0, &symbolic_tcp_packet());
        // One path per reachable output port (1 and 2), none on port 0.
        assert_eq!(report.delivered().count(), 2);
        assert_eq!(report.delivered_at(a, 1).count(), 1);
        assert_eq!(report.delivered_at(a, 2).count(), 1);
        assert_eq!(report.delivered_at(a, 0).count(), 0);
        // On the rewritten path the destination address is concrete.
        let rewritten = report.delivered_at(a, 1).next().unwrap();
        let dst = rewritten.state.read_field(&ip_dst().field(), "").unwrap();
        assert_eq!(dst.value, Value::Concrete(0xc0a80164));
        let port = rewritten.state.read_field(&tcp_dst().field(), "").unwrap();
        assert_eq!(port.value, Value::Concrete(22));
        // On the other path both fields keep their symbolic values (invariant).
        let other = report.delivered_at(a, 2).next().unwrap();
        assert_eq!(
            verify::field_invariant(&report.injected, other, &tcp_dst().field()),
            Ok(verify::Tristate::Always)
        );
    }

    #[test]
    fn constrain_filters_without_branching() {
        // §4: dropping non-HTTP packets adds a constraint, it does not branch.
        let mut net = Network::new();
        let fw = net.add_element(ElementProgram::new("fw", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
                Instruction::forward(0),
            ]),
        ));
        let engine = SymNet::new(net);
        let report = engine.inject(fw, 0, &symbolic_tcp_packet());
        assert_eq!(report.path_count(), 1);
        assert_eq!(report.delivered().count(), 1);
        // A packet already constrained to port 22 is dropped entirely.
        let ssh_packet = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::constrain(Condition::eq(tcp_dst().field(), 22u64)),
        ]);
        let report = engine.inject(fw, 0, &ssh_packet);
        assert_eq!(report.delivered().count(), 0);
        assert_eq!(report.path_count(), 1);
        assert!(matches!(
            report.paths[0].status,
            PathStatus::Dropped {
                reason: DropReason::Unsatisfiable(_),
                ..
            }
        ));
    }

    #[test]
    fn packets_cross_links_between_elements() {
        let mut net = Network::new();
        let a = net.add_element(ElementProgram::new("A", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::assign(ip_ttl().field(), Expr::reference(ip_ttl().field()).minus(1)),
                Instruction::forward(0),
            ]),
        ));
        let b = net.add_element(ElementProgram::new("B", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
                Instruction::forward(0),
            ]),
        ));
        net.add_link(a, 0, b, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(a, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        assert_eq!(
            path.status,
            PathStatus::Delivered {
                element: b,
                port: 0
            }
        );
        // The path visited A then B.
        let ports = path.ports_visited();
        assert!(ports[0].starts_with("A:InputPort"));
        assert!(ports.iter().any(|p| p.starts_with("B:InputPort")));
    }

    #[test]
    fn memory_safety_stops_bad_access() {
        // Reading a TCP field from an IP-only packet fails the path.
        let mut net = Network::new();
        let e = net.add_element(ElementProgram::new("box", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
                Instruction::forward(0),
            ]),
        ));
        let engine = SymNet::new(net);
        let report = engine.inject(e, 0, &symnet_sefl::packet::symbolic_ip_packet());
        assert_eq!(report.delivered().count(), 0);
        assert!(matches!(
            &report.paths[0].status,
            PathStatus::Dropped {
                reason: DropReason::Memory(_),
                ..
            }
        ));
    }

    #[test]
    fn fork_duplicates_to_every_port() {
        let mut net = Network::new();
        let sw = net.add_element(
            ElementProgram::new("sw", 1, 3).with_any_input_code(Instruction::fork(vec![0, 1, 2])),
        );
        let engine = SymNet::new(net);
        let report = engine.inject(sw, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 3);
    }

    #[test]
    fn loop_detection_stops_forwarding_loops() {
        // A → B → A with no header modification loops forever without the
        // Figure 5 check.
        let mut net = Network::new();
        let a = net.add_element(
            ElementProgram::new("A", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        let b = net.add_element(
            ElementProgram::new("B", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        net.add_link(a, 0, b, 0);
        net.add_link(b, 0, a, 0);
        let engine = SymNet::new(net);
        let report = engine.inject(a, 0, &symbolic_tcp_packet());
        assert_eq!(report.loops().count(), 1);
        assert_eq!(report.delivered().count(), 0);
    }

    #[test]
    fn hop_limit_bounds_exploration_when_loop_detection_is_off() {
        let mut net = Network::new();
        let a = net.add_element(
            ElementProgram::new("A", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        let b = net.add_element(
            ElementProgram::new("B", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        net.add_link(a, 0, b, 0);
        net.add_link(b, 0, a, 0);
        let config = ExecConfig {
            detect_loops: false,
            max_hops: 10,
            ..Default::default()
        };
        let engine = SymNet::with_config(net, config);
        let report = engine.inject(a, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 0);
        assert!(report.paths.iter().any(|p| matches!(
            p.status,
            PathStatus::Dropped {
                reason: DropReason::HopLimit,
                ..
            }
        )));
    }

    #[test]
    fn for_loop_iterates_metadata_snapshot() {
        // Set OPT2 and OPT4, then zero every OPT* entry with a For loop.
        let mut net = Network::new();
        let e = net.add_element(ElementProgram::new("opts", 1, 1).with_any_input_code(
            Instruction::block(vec![
                Instruction::for_each(
                    "o",
                    "OPT*",
                    Instruction::assign(FieldRef::meta("o"), Expr::constant(0)),
                ),
                Instruction::forward(0),
            ]),
        ));
        let packet = Instruction::block(vec![
            symbolic_tcp_packet(),
            Instruction::allocate_meta("OPT2", 8),
            Instruction::assign(FieldRef::meta("OPT2"), Expr::constant(1)),
            Instruction::allocate_meta("OPT4", 8),
            Instruction::assign(FieldRef::meta("OPT4"), Expr::constant(1)),
            Instruction::allocate_meta("SIZE2", 8),
            Instruction::assign(FieldRef::meta("SIZE2"), Expr::constant(4)),
        ]);
        let engine = SymNet::new(net);
        let report = engine.inject(e, 0, &packet);
        assert_eq!(report.delivered().count(), 1);
        let path = report.delivered().next().unwrap();
        assert_eq!(
            path.state.read_meta("OPT2").unwrap().value,
            Value::Concrete(0)
        );
        assert_eq!(
            path.state.read_meta("OPT4").unwrap().value,
            Value::Concrete(0)
        );
        // Non-matching keys are untouched.
        assert_eq!(
            path.state.read_meta("SIZE2").unwrap().value,
            Value::Concrete(4)
        );
    }

    #[test]
    fn thread_counts_do_not_change_the_report() {
        // Switch-like element forking to several ports, chained twice, with a
        // constraint so that solver work happens on every path.
        let mut net = Network::new();
        let a = net.add_element(ElementProgram::new("A", 1, 4).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::ge(ip_ttl().field(), 1u64)),
                Instruction::fork(vec![0, 1, 2, 3]),
            ]),
        ));
        let b = net.add_element(
            ElementProgram::new("B", 1, 3).with_any_input_code(Instruction::fork(vec![0, 1, 2])),
        );
        net.add_link(a, 0, b, 0);
        net.add_link(a, 1, b, 0);
        let reports: Vec<ExecutionReport> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let engine =
                    SymNet::with_config(net.clone(), ExecConfig::default().with_threads(threads));
                engine.inject(a, 0, &symbolic_tcp_packet())
            })
            .collect();
        for report in &reports[1..] {
            assert_eq!(report.path_count(), reports[0].path_count());
            for (a, b) in reports[0].paths.iter().zip(report.paths.iter()) {
                assert_eq!(a.id, b.id);
                assert_eq!(a.status, b.status);
                assert_eq!(a.state, b.state);
            }
            assert_eq!(report.injected, reports[0].injected);
            // Deterministic solver counters (time differs, sums do not).
            assert_eq!(report.solver_stats.calls, reports[0].solver_stats.calls);
            assert_eq!(report.solver_stats.sat, reports[0].solver_stats.sat);
            assert_eq!(report.solver_stats.unsat, reports[0].solver_stats.unsat);
            assert_eq!(
                report.solver_stats.cubes_examined,
                reports[0].solver_stats.cubes_examined
            );
        }
        // 4 forks at A, two of which land on B and fork in 3: 2 + 2*3 = 8.
        assert_eq!(reports[0].delivered().count(), 8);
    }

    #[test]
    fn scheduler_counters_track_local_work_steals_and_overflow() {
        // One element forking to 300 linked ports spawns 300 children in a
        // single processing step — more than LOCAL_DEQUE_CAP, so the
        // publishing worker must spill exactly 300 - LOCAL_DEQUE_CAP paths to
        // the overflow injector, no matter how workers interleave.
        let fan_out = LOCAL_DEQUE_CAP + 44;
        let mut net = Network::new();
        let a = net.add_element(
            ElementProgram::new("a", 1, fan_out)
                .with_any_input_code(Instruction::fork((0..fan_out).collect())),
        );
        let b = net.add_element(
            ElementProgram::new("b", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        for port in 0..fan_out {
            net.add_link(a, port, b, 0);
        }

        // Sequential: every pop is a local hit, nothing is stolen or spilled.
        let engine = SymNet::with_config(net.clone(), ExecConfig::default().with_threads(1));
        let sequential = engine.inject(a, 0, &symbolic_tcp_packet());
        assert_eq!(sequential.sched.local_hits as usize, 1 + fan_out);
        assert_eq!(sequential.sched.steals, 0);
        assert_eq!(sequential.sched.overflow_pushes, 0);

        // Parallel: the root arrives via the injector (uncounted), the
        // children via local pops or steals; the fan-out step overflows the
        // bounded deque by exactly `fan_out - LOCAL_DEQUE_CAP`.
        for threads in [2usize, 8] {
            let engine =
                SymNet::with_config(net.clone(), ExecConfig::default().with_threads(threads));
            let report = engine.inject(a, 0, &symbolic_tcp_packet());
            assert_eq!(
                report.sched.overflow_pushes as usize,
                fan_out - LOCAL_DEQUE_CAP,
                "overflow at {threads} threads"
            );
            // The children that stayed on the bounded deque leave it either
            // by a local pop or by a steal; the spilled ones (and the root)
            // come back through the injector, which neither counter tracks.
            assert_eq!(
                (report.sched.local_hits + report.sched.steals) as usize,
                LOCAL_DEQUE_CAP,
                "deque-resident children at {threads} threads"
            );
            // Scheduling never changes the report itself.
            assert_eq!(report.path_count(), sequential.path_count());
            for (x, y) in sequential.paths.iter().zip(report.paths.iter()) {
                assert_eq!(x.status, y.status);
                assert_eq!(x.state, y.state);
            }
        }
    }

    #[test]
    fn max_paths_caps_runs() {
        // a forks 8 ways into b, b forks 8 ways: 64 delivered paths across 8
        // processing steps when uncapped.
        let build = || {
            let mut net = Network::new();
            let a = net.add_element(
                ElementProgram::new("a", 1, 8)
                    .with_any_input_code(Instruction::fork((0..8).collect())),
            );
            let b = net.add_element(
                ElementProgram::new("b", 1, 8)
                    .with_any_input_code(Instruction::fork((0..8).collect())),
            );
            for port in 0..8 {
                net.add_link(a, port, b, 0);
            }
            (net, a)
        };
        // The budget is reserved atomically at emission time, so the cap is
        // exact at every thread count (which paths survive truncation is
        // scheduling-dependent, the count is not).
        for threads in [1usize, 4, 8] {
            let (net, a) = build();
            let config = ExecConfig {
                max_paths: 10,
                ..ExecConfig::default().with_threads(threads)
            };
            let report = SymNet::with_config(net, config).inject(a, 0, &symbolic_tcp_packet());
            assert_eq!(
                report.path_count(),
                10,
                "cap must be exact at {threads} threads"
            );
        }
        // A cap above the true path count never truncates.
        let (net, a) = build();
        let config = ExecConfig {
            max_paths: 1000,
            ..ExecConfig::default().with_threads(4)
        };
        let report = SymNet::with_config(net, config).inject(a, 0, &symbolic_tcp_packet());
        assert_eq!(report.path_count(), 64);
    }

    #[test]
    fn infeasible_branches_are_hidden_by_default() {
        let mut net = Network::new();
        let e = net.add_element(ElementProgram::new("box", 1, 2).with_any_input_code(
            Instruction::block(vec![
                Instruction::constrain(Condition::eq(tcp_dst().field(), 80u64)),
                Instruction::if_else(
                    Condition::eq(tcp_dst().field(), 22u64),
                    Instruction::forward(0),
                    Instruction::forward(1),
                ),
            ]),
        ));
        let engine = SymNet::new(net.clone());
        let report = engine.inject(e, 0, &symbolic_tcp_packet());
        // Only the feasible (else) branch shows up.
        assert_eq!(report.path_count(), 1);
        assert_eq!(report.delivered_at(e, 1).count(), 1);
        // With include_pruned the infeasible then-branch is visible too.
        let engine = SymNet::with_config(
            net,
            ExecConfig {
                include_pruned: true,
                ..Default::default()
            },
        );
        let report = engine.inject(e, 0, &symbolic_tcp_packet());
        assert_eq!(report.path_count(), 2);
    }

    #[test]
    fn worker_panics_surface_as_engine_errors() {
        // A deliberately-panicking element program (the Abort poison pill).
        // The first panic must come back as a single EngineError at every
        // thread count — no poisoned-mutex cascade, no deadlock, no abort.
        let mut net = Network::new();
        let a = net.add_element(
            ElementProgram::new("a", 1, 4).with_any_input_code(Instruction::fork(vec![0, 1, 2, 3])),
        );
        let bomb = net.add_element(
            ElementProgram::new("bomb", 1, 1)
                .with_any_input_code(Instruction::abort("defective model")),
        );
        for port in 0..4 {
            net.add_link(a, port, bomb, 0);
        }
        for threads in [1usize, 2, 8] {
            let engine =
                SymNet::with_config(net.clone(), ExecConfig::default().with_threads(threads));
            let err = engine
                .try_inject(a, 0, &symbolic_tcp_packet())
                .expect_err("the bomb element must fail the run");
            let EngineError::WorkerPanicked { message } = err;
            assert!(
                message.contains("SEFL Abort: defective model"),
                "panic message at {threads} threads: {message}"
            );
        }
    }

    #[test]
    fn engine_survives_a_panicked_run() {
        // After a panicked run the engine keeps working: no shared state was
        // left poisoned, a fresh scheduler starts clean.
        let mut net = Network::new();
        let bomb = net.add_element(
            ElementProgram::new("bomb", 1, 1).with_any_input_code(Instruction::abort("boom")),
        );
        let ok = net.add_element(
            ElementProgram::new("ok", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        let engine = SymNet::with_config(net, ExecConfig::default().with_threads(4));
        assert!(engine.try_inject(bomb, 0, &symbolic_tcp_packet()).is_err());
        let report = engine.inject(ok, 0, &symbolic_tcp_packet());
        assert_eq!(report.delivered().count(), 1);
    }

    #[test]
    fn inject_panics_once_on_worker_panic() {
        // The panicking API panics exactly once, on the caller's thread, with
        // the EngineError rendering — not with a poisoned-mutex cascade.
        let mut net = Network::new();
        let bomb = net.add_element(
            ElementProgram::new("bomb", 1, 1).with_any_input_code(Instruction::abort("boom")),
        );
        let engine = SymNet::with_config(net, ExecConfig::default().with_threads(2));
        let caught = catch_unwind(AssertUnwindSafe(|| {
            engine.inject(bomb, 0, &symbolic_tcp_packet())
        }));
        let message = panic_message(caught.expect_err("inject must panic").as_ref());
        assert!(message.contains("engine worker panicked"), "{message}");
        assert!(message.contains("SEFL Abort: boom"), "{message}");
    }

    #[test]
    fn panic_during_construction_is_caught() {
        let mut net = Network::new();
        let e = net.add_element(
            ElementProgram::new("e", 1, 1).with_any_input_code(Instruction::forward(0)),
        );
        let engine = SymNet::new(net);
        let packet = Instruction::block(vec![symbolic_tcp_packet(), Instruction::abort("ctor")]);
        let err = engine.try_inject(e, 0, &packet).expect_err("must fail");
        let EngineError::WorkerPanicked { message } = err;
        assert!(message.contains("SEFL Abort: ctor"), "{message}");
    }
}
